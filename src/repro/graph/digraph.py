"""Mutable unweighted directed graph with integer vertex ids.

The graph stores out- and in-adjacency lists so that forward searches on
``G`` and backward searches on the reverse graph ``Gr`` (Section II of the
paper) are both a single list lookup.  Vertex ids are dense integers in
``[0, num_vertices)``; parallel edges and self loops are rejected because
the paper's simple-path semantics never uses them.

Adjacency lists are kept **sorted ascending** at all times, matching the
order :class:`~repro.graph.csr.CSRGraph` packs its flat arrays in, so every
enumeration algorithm visits neighbours — and therefore produces paths — in
the same order regardless of which adjacency view it reads and of the order
edges were inserted in.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.graph.snapshots import SnapshotStore
from repro.utils.validation import require, require_non_negative, require_vertex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.csr import CSRGraph

Edge = Tuple[int, int]


class DiGraph:
    """An unweighted directed graph ``G = (V, E)``.

    Vertices are integers ``0..n-1``.  The class supports incremental
    construction (:meth:`add_edge`) and bulk construction
    (:meth:`from_edges`).  ``out_neighbors``/``in_neighbors`` return the
    adjacency lists used by forward/backward searches.
    """

    def __init__(self, num_vertices: int = 0) -> None:
        require_non_negative(num_vertices, "num_vertices")
        self._out: List[List[int]] = [[] for _ in range(num_vertices)]
        self._in: List[List[int]] = [[] for _ in range(num_vertices)]
        self._edge_set: set[Edge] = set()
        self._version = 0
        self._snapshots = SnapshotStore(self)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], num_vertices: int | None = None
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(u, v)`` edges.

        If ``num_vertices`` is omitted it is inferred as ``max id + 1``.
        Duplicate edges are silently ignored; self loops raise.
        """
        edge_list = list(edges)
        if num_vertices is None:
            num_vertices = 0
            for u, v in edge_list:
                num_vertices = max(num_vertices, u + 1, v + 1)
        graph = cls(num_vertices)
        # Bulk path: append everything, then sort each list once.  Going
        # through add_edge's insort would cost O(degree) per edge —
        # quadratic on high-degree hubs.
        out, inn, edge_set = graph._out, graph._in, graph._edge_set
        for u, v in edge_list:
            if (u, v) in edge_set:
                continue
            require_vertex(u, num_vertices, "u")
            require_vertex(v, num_vertices, "v")
            require(u != v, f"self loops are not allowed (got edge ({u}, {v}))")
            out[u].append(v)
            inn[v].append(u)
            edge_set.add((u, v))
        for neighbors in out:
            neighbors.sort()
        for neighbors in inn:
            neighbors.sort()
        with graph._snapshots.lock:
            graph._version += 1
            graph._snapshots.note_barrier()
        return graph

    def add_vertex(self) -> int:
        """Append a new isolated vertex and return its id.

        A vertex-count change is a snapshot **barrier**: sealed snapshots of
        earlier versions stay readable for their pinned consumers, but no
        edge delta spans it (indexes must be rebuilt, not repaired).
        """
        with self._snapshots.lock:
            self._out.append([])
            self._in.append([])
            self._version += 1
            self._snapshots.note_barrier()
            return len(self._out) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``(u, v)``.

        Raises ``ValueError`` on self loops, duplicate edges or out-of-range
        endpoints.  The adjacency lists stay sorted ascending.  Sealed
        snapshots are unaffected (copy-on-write); the mutation is recorded
        in the snapshot store's delta log.
        """
        require_vertex(u, self.num_vertices, "u")
        require_vertex(v, self.num_vertices, "v")
        require(u != v, f"self loops are not allowed (got edge ({u}, {v}))")
        require((u, v) not in self._edge_set, f"duplicate edge ({u}, {v})")
        with self._snapshots.lock:
            insort(self._out[u], v)
            insort(self._in[v], u)
            self._edge_set.add((u, v))
            self._version += 1
            self._snapshots.note_edge("+", u, v)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the directed edge ``(u, v)``.

        Raises ``ValueError`` if the edge does not exist.  Like
        :meth:`add_edge`, this never disturbs sealed snapshots — in-flight
        consumers keep seeing the edge until they move to a newer version.
        """
        require((u, v) in self._edge_set, f"no such edge ({u}, {v})")
        with self._snapshots.lock:
            self._out[u].remove(v)
            self._in[v].remove(u)
            self._edge_set.discard((u, v))
            self._version += 1
            self._snapshots.note_edge("-", u, v)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Incremented by every structural change (``add_edge``,
        ``remove_edge``, ``add_vertex``, bulk construction).  Long-running
        consumers — the streaming engine and the ingestion service — pin
        the version they were admitted under via :attr:`snapshots` and keep
        serving the sealed CSR of *that* version while newer batches plan
        against the head; mutation never invalidates an in-flight stream.
        """
        return self._version

    @property
    def snapshots(self) -> SnapshotStore:
        """The graph's multi-version snapshot store (see
        :mod:`repro.graph.snapshots`)."""
        return self._snapshots

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def vertices(self) -> range:
        return range(self.num_vertices)

    def edges(self) -> Iterator[Edge]:
        """Iterate edges sorted by source vertex, then by target."""
        for u, neighbors in enumerate(self._out):
            for v in neighbors:
                yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edge_set

    def out_neighbors(self, v: int) -> Sequence[int]:
        """``G.nbr+(v)`` — successors of ``v``."""
        return self._out[v]

    def in_neighbors(self, v: int) -> Sequence[int]:
        """``G.nbr-(v)`` — predecessors of ``v``."""
        return self._in[v]

    def out_degree(self, v: int) -> int:
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Total degree (in + out), used for the dmax column of Table I."""
        return len(self._out[v]) + len(self._in[v])

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def reverse(self) -> "DiGraph":
        """Return ``Gr``: the graph with every edge direction flipped.

        Bulk O(V + E): the in/out adjacency lists of the reverse graph are
        exactly this graph's out/in lists (already sorted), so they are
        copied wholesale.  Routing each edge through ``add_edge``'s insort
        would cost O(degree) per edge — quadratic on high-degree hubs.
        """
        reversed_graph = DiGraph(self.num_vertices)
        reversed_graph._out = [list(neighbors) for neighbors in self._in]
        reversed_graph._in = [list(neighbors) for neighbors in self._out]
        reversed_graph._edge_set = {(v, u) for (u, v) in self._edge_set}
        with reversed_graph._snapshots.lock:
            reversed_graph._version += 1
            reversed_graph._snapshots.note_barrier()
        return reversed_graph

    def copy(self) -> "DiGraph":
        return DiGraph.from_edges(self.edges(), num_vertices=self.num_vertices)

    def adjacency(self) -> List[List[int]]:
        """Return a deep copy of the out-adjacency lists."""
        return [list(neighbors) for neighbors in self._out]

    def csr_snapshot(self) -> "CSRGraph":
        """Return the sealed :class:`~repro.graph.csr.CSRGraph` of the
        current (head) version.

        Copy-on-write: repeated calls between mutations return the *same*
        immutable object, and a mutation never touches an already-sealed
        snapshot — the next call simply seals a fresh one while pinned
        consumers keep reading theirs.  This is what lets a whole batch —
        and every worker processing shards of it — read adjacency from one
        flat, immutable structure while the live graph keeps moving.
        """
        return self._snapshots.seal()

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self._edge_set == other._edge_set
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def __getstate__(self) -> Dict[str, object]:
        # The snapshot store holds derived data plus a lock — neither is
        # picklable nor meaningful across process boundaries; each process
        # gets a fresh, empty store.
        state = self.__dict__.copy()
        del state["_snapshots"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._snapshots = SnapshotStore(self)

    def __repr__(self) -> str:
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def to_dict(self) -> Dict[int, List[int]]:
        """Return ``{vertex: out-neighbor list}`` (useful for debugging)."""
        return {v: list(self._out[v]) for v in self.vertices()}
