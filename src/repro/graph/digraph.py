"""Mutable unweighted directed graph with integer vertex ids.

The graph stores out- and in-adjacency lists so that forward searches on
``G`` and backward searches on the reverse graph ``Gr`` (Section II of the
paper) are both a single list lookup.  Vertex ids are dense integers in
``[0, num_vertices)``; parallel edges and self loops are rejected because
the paper's simple-path semantics never uses them.

Adjacency lists are kept **sorted ascending** at all times, matching the
order :class:`~repro.graph.csr.CSRGraph` packs its flat arrays in, so every
enumeration algorithm visits neighbours — and therefore produces paths — in
the same order regardless of which adjacency view it reads and of the order
edges were inserted in.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.utils.validation import require, require_non_negative, require_vertex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.csr import CSRGraph

Edge = Tuple[int, int]


class DiGraph:
    """An unweighted directed graph ``G = (V, E)``.

    Vertices are integers ``0..n-1``.  The class supports incremental
    construction (:meth:`add_edge`) and bulk construction
    (:meth:`from_edges`).  ``out_neighbors``/``in_neighbors`` return the
    adjacency lists used by forward/backward searches.
    """

    def __init__(self, num_vertices: int = 0) -> None:
        require_non_negative(num_vertices, "num_vertices")
        self._out: List[List[int]] = [[] for _ in range(num_vertices)]
        self._in: List[List[int]] = [[] for _ in range(num_vertices)]
        self._edge_set: set[Edge] = set()
        self._version = 0
        self._csr: "CSRGraph | None" = None
        self._csr_version = -1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], num_vertices: int | None = None
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(u, v)`` edges.

        If ``num_vertices`` is omitted it is inferred as ``max id + 1``.
        Duplicate edges are silently ignored; self loops raise.
        """
        edge_list = list(edges)
        if num_vertices is None:
            num_vertices = 0
            for u, v in edge_list:
                num_vertices = max(num_vertices, u + 1, v + 1)
        graph = cls(num_vertices)
        # Bulk path: append everything, then sort each list once.  Going
        # through add_edge's insort would cost O(degree) per edge —
        # quadratic on high-degree hubs.
        out, inn, edge_set = graph._out, graph._in, graph._edge_set
        for u, v in edge_list:
            if (u, v) in edge_set:
                continue
            require_vertex(u, num_vertices, "u")
            require_vertex(v, num_vertices, "v")
            require(u != v, f"self loops are not allowed (got edge ({u}, {v}))")
            out[u].append(v)
            inn[v].append(u)
            edge_set.add((u, v))
        for neighbors in out:
            neighbors.sort()
        for neighbors in inn:
            neighbors.sort()
        graph._version += 1
        return graph

    def add_vertex(self) -> int:
        """Append a new isolated vertex and return its id."""
        self._out.append([])
        self._in.append([])
        self._version += 1
        return len(self._out) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``(u, v)``.

        Raises ``ValueError`` on self loops, duplicate edges or out-of-range
        endpoints.  The adjacency lists stay sorted ascending.
        """
        require_vertex(u, self.num_vertices, "u")
        require_vertex(v, self.num_vertices, "v")
        require(u != v, f"self loops are not allowed (got edge ({u}, {v}))")
        require((u, v) not in self._edge_set, f"duplicate edge ({u}, {v})")
        insort(self._out[u], v)
        insort(self._in[v], u)
        self._edge_set.add((u, v))
        self._version += 1

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Incremented by every structural change (``add_edge``,
        ``add_vertex``, bulk construction).  Long-running consumers — the
        streaming engine and the ingestion service — pin this value when
        they take a CSR snapshot and refuse to keep serving results if the
        graph moves underneath them.
        """
        return self._version

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return len(self._edge_set)

    def vertices(self) -> range:
        return range(self.num_vertices)

    def edges(self) -> Iterator[Edge]:
        """Iterate edges sorted by source vertex, then by target."""
        for u, neighbors in enumerate(self._out):
            for v in neighbors:
                yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edge_set

    def out_neighbors(self, v: int) -> Sequence[int]:
        """``G.nbr+(v)`` — successors of ``v``."""
        return self._out[v]

    def in_neighbors(self, v: int) -> Sequence[int]:
        """``G.nbr-(v)`` — predecessors of ``v``."""
        return self._in[v]

    def out_degree(self, v: int) -> int:
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Total degree (in + out), used for the dmax column of Table I."""
        return len(self._out[v]) + len(self._in[v])

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def reverse(self) -> "DiGraph":
        """Return ``Gr``: the graph with every edge direction flipped."""
        reversed_graph = DiGraph(self.num_vertices)
        for u, v in self.edges():
            reversed_graph.add_edge(v, u)
        return reversed_graph

    def copy(self) -> "DiGraph":
        return DiGraph.from_edges(self.edges(), num_vertices=self.num_vertices)

    def adjacency(self) -> List[List[int]]:
        """Return a deep copy of the out-adjacency lists."""
        return [list(neighbors) for neighbors in self._out]

    def csr_snapshot(self) -> "CSRGraph":
        """Return a :class:`~repro.graph.csr.CSRGraph` view of this graph.

        The snapshot is cached and shared by every enumeration run until the
        graph mutates (``add_edge``/``add_vertex``), at which point the next
        call packs a fresh one.  This is what lets a whole batch — and every
        worker processing shards of it — read adjacency from one flat,
        immutable structure instead of re-walking the mutable lists.
        """
        from repro.graph.csr import CSRGraph

        if self._csr is None or self._csr_version != self._version:
            self._csr = CSRGraph(self)
            self._csr_version = self._version
        return self._csr

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self._edge_set == other._edge_set
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)

    def __getstate__(self) -> Dict[str, object]:
        # The CSR snapshot is derived data; dropping it keeps worker-process
        # payloads small and each process re-packs (and caches) its own.
        state = self.__dict__.copy()
        state["_csr"] = None
        state["_csr_version"] = -1
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def to_dict(self) -> Dict[int, List[int]]:
        """Return ``{vertex: out-neighbor list}`` (useful for debugging)."""
        return {v: list(self._out[v]) for v in self.vertices()}
