"""Graph sampling used by the scalability experiment (Exp-5 / Fig. 11).

The paper samples 20 %–100 % of the vertices (and, in a variant not shown,
edges) of the two largest datasets and measures how processing time grows.
``sample_vertices`` keeps a uniform random vertex subset and relabels the
induced subgraph densely; ``sample_edges`` keeps a uniform random edge
subset over the full vertex set.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.graph.digraph import DiGraph
from repro.utils.validation import require


def sample_vertices(graph: DiGraph, fraction: float, seed: int = 0) -> DiGraph:
    """Return the subgraph induced by a uniform random ``fraction`` of the
    vertices, relabelled to dense ids.
    """
    require(0.0 < fraction <= 1.0, "fraction must be in (0, 1]")
    if fraction == 1.0:
        return graph.copy()
    rng = random.Random(seed)
    keep_count = max(1, int(round(graph.num_vertices * fraction)))
    kept = sorted(rng.sample(range(graph.num_vertices), keep_count))
    return vertex_induced_subgraph(graph, kept)


def vertex_induced_subgraph(graph: DiGraph, vertices: Sequence[int]) -> DiGraph:
    """Subgraph induced by ``vertices``, relabelled to ``0..len(vertices)-1``
    in the given order."""
    mapping = {v: i for i, v in enumerate(vertices)}
    edges: List[tuple[int, int]] = []
    for u in vertices:
        for v in graph.out_neighbors(u):
            if v in mapping:
                edges.append((mapping[u], mapping[v]))
    return DiGraph.from_edges(edges, num_vertices=len(vertices))


def sample_edges(graph: DiGraph, fraction: float, seed: int = 0) -> DiGraph:
    """Return a graph over the same vertex set with a uniform random
    ``fraction`` of the edges."""
    require(0.0 < fraction <= 1.0, "fraction must be in (0, 1]")
    if fraction == 1.0:
        return graph.copy()
    rng = random.Random(seed)
    all_edges = list(graph.edges())
    keep_count = max(1, int(round(len(all_edges) * fraction)))
    kept = rng.sample(all_edges, keep_count)
    return DiGraph.from_edges(kept, num_vertices=graph.num_vertices)
