"""Directed graph substrate.

The algorithms in this library operate on unweighted directed graphs with
integer vertex ids in ``[0, n)``.  :class:`~repro.graph.digraph.DiGraph` is
the primary container; :class:`~repro.graph.csr.CSRGraph` is an immutable
compressed snapshot used by the hot enumeration loops.  The graph is live:
its :class:`~repro.graph.snapshots.SnapshotStore` (``graph.snapshots``)
seals copy-on-write, refcounted CSR snapshots per version so mutation
never disturbs in-flight consumers.
"""

from repro.graph.digraph import DiGraph
from repro.graph.csr import CSRGraph
from repro.graph.snapshots import PinnedSnapshot, SnapshotStore
from repro.graph.stats import GraphStats, compute_stats
from repro.graph.generators import (
    paper_example_graph,
    random_directed_gnm,
    powerlaw_directed,
    layered_dag,
    small_world_directed,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.sampling import sample_vertices, sample_edges, vertex_induced_subgraph

__all__ = [
    "DiGraph",
    "CSRGraph",
    "SnapshotStore",
    "PinnedSnapshot",
    "GraphStats",
    "compute_stats",
    "paper_example_graph",
    "random_directed_gnm",
    "powerlaw_directed",
    "layered_dag",
    "small_world_directed",
    "read_edge_list",
    "write_edge_list",
    "sample_vertices",
    "sample_edges",
    "vertex_induced_subgraph",
]
