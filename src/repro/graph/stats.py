"""Graph statistics for the Table I columns (|V|, |E|, davg, dmax)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a directed graph.

    ``davg`` is the average total degree ``2|E| / |V|`` and ``dmax`` the
    maximum total degree, matching how Table I of the paper reports them.
    """

    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int

    def as_row(self, name: str = "") -> str:
        """Render a Table-I style row."""
        return (
            f"{name:<12s} |V|={self.num_vertices:>8d} |E|={self.num_edges:>9d} "
            f"davg={self.average_degree:6.1f} dmax={self.max_degree:>6d}"
        )


def compute_stats(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    if graph.num_vertices == 0:
        return GraphStats(0, 0, 0.0, 0)
    max_degree = max(graph.degree(v) for v in graph.vertices())
    average_degree = 2.0 * graph.num_edges / graph.num_vertices
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=average_degree,
        max_degree=max_degree,
    )
