"""Edge-list graph IO.

The real datasets used by the paper (SNAP / LAW / NetworkRepository) are
distributed as whitespace-separated edge lists, possibly with ``#`` comment
headers.  ``read_edge_list`` accepts that format; ``write_edge_list`` writes
the same format so synthetic datasets can be exported and re-imported.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike,
    comment_prefix: str = "#",
    relabel: bool = True,
) -> DiGraph:
    """Read a whitespace separated edge list into a :class:`DiGraph`.

    Parameters
    ----------
    path:
        File with one ``u v`` pair per line.
    comment_prefix:
        Lines starting with this prefix are skipped (SNAP headers).
    relabel:
        If True (default), vertex ids are compacted to ``0..n-1`` in first
        appearance order — raw SNAP ids are sparse and would otherwise
        allocate huge adjacency arrays.
    """
    edges: List[Tuple[int, int]] = []
    mapping: Dict[int, int] = {}

    def resolve(raw: int) -> int:
        if not relabel:
            return raw
        if raw not in mapping:
            mapping[raw] = len(mapping)
        return mapping[raw]

    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment_prefix):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue  # real datasets occasionally contain self loops
            edges.append((resolve(u), resolve(v)))
    return DiGraph.from_edges(edges)


def write_edge_list(graph: DiGraph, path: PathLike, header: str | None = None) -> None:
    """Write ``graph`` as a whitespace separated edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_query_file(path: PathLike) -> List[Tuple[int, int, int]]:
    """Read a query batch file with one ``s t k`` triple per line."""
    queries: List[Tuple[int, int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 's t k', got {stripped!r}"
                )
            queries.append((int(parts[0]), int(parts[1]), int(parts[2])))
    return queries


def write_query_file(queries: Iterable[Tuple[int, int, int]], path: PathLike) -> None:
    """Write a query batch file with one ``s t k`` triple per line."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# s t k\n")
        for s, t, k in queries:
            handle.write(f"{s} {t} {k}\n")
