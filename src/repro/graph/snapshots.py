"""Multi-version copy-on-write CSR snapshots for a live :class:`DiGraph`.

The batch algorithms assume a frozen graph, but continuous serving runs
against a mutating one: edges arrive (and are retracted) while micro-batches
are still streaming.  Before this module existed the engine pinned
``graph.version`` at plan time and raised ``RuntimeError`` at the first
flush after a mutation — correct, but it turned every legitimate
``add_edge`` into a service-visible failure.

:class:`SnapshotStore` replaces the pin-and-raise discipline with
multi-version concurrency control:

* ``seal()`` packs the graph's **head** revision into an immutable
  :class:`~repro.graph.csr.CSRGraph` exactly once per version
  (copy-on-write: a mutation does not invalidate the sealed CSR, it simply
  means the *next* ``seal()`` packs a fresh one).  Every sealed CSR carries
  the ``version`` it was packed at.
* ``pin()`` seals the head and returns a refcounted
  :class:`PinnedSnapshot` handle.  An in-flight micro-batch pins the
  version it was admitted under and keeps reading that CSR for its whole
  plan → execute pipeline, while newer batches pin (and plan against) newer
  heads.  ``release()`` drops the refcount; a sealed version is forgotten
  when its last pinned consumer finishes (the head survives unpinned — it
  is the ``csr_snapshot()`` cache).
* A bounded **mutation log** records every ``add_edge``/``remove_edge``
  between versions.  ``delta(a, b)`` nets the log into
  ``(edges_added, edges_removed)`` so a consumer holding an artefact built
  at version ``a`` (e.g. a :class:`~repro.bfs.distance_index.CSRDistanceIndex`)
  can repair it incrementally via ``apply_delta`` instead of rebuilding.
  Vertex-count changes and bulk rebuilds act as barriers: ``delta`` across
  one returns ``None`` ("rebuild, no cheap path").

Thread-safety: the store's reentrant ``lock`` is shared with the owning
``DiGraph`` — mutators hold it across the structural change *and* the
version bump, and ``seal``/``pin`` take it while packing, so a pin is
atomic with respect to concurrent mutation (no torn CSR packings, no
check-then-act races on the version counter).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph
    from repro.graph.digraph import DiGraph
    from repro.graph.shm import SharedCSR

Edge = Tuple[int, int]

#: Log entries: ``(version_after_mutation, op, u, v)`` with op "+" / "-".
_LogEntry = Tuple[int, str, int, int]

#: Default bound on the mutation log.  A long-running service mutates
#: indefinitely; the log only needs to span the gap between two consecutive
#: index builds of one planner, so a few thousand single-edge ops is ample.
DEFAULT_MAX_LOG = 4096


class PinnedSnapshot:
    """Refcounted handle on one sealed ``(version, CSRGraph)`` pair.

    Obtained from :meth:`SnapshotStore.pin`; usable as a context manager.
    ``release()`` is idempotent — the handle counts at most once against
    the sealed version's refcount.
    """

    __slots__ = ("csr", "_store", "_released")

    def __init__(self, store: "SnapshotStore", csr: "CSRGraph") -> None:
        self.csr = csr
        self._store = store
        self._released = False

    @property
    def version(self) -> int:
        """The graph version this snapshot was sealed at."""
        return self.csr.version

    def release(self) -> None:
        """Drop this consumer's refcount (idempotent)."""
        if not self._released:
            self._released = True
            self._store.release(self.csr.version)

    def __enter__(self) -> "PinnedSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self._released else "pinned"
        return f"PinnedSnapshot(version={self.version}, {state})"


class SnapshotStore:
    """Copy-on-write store of sealed CSR snapshots for one ``DiGraph``.

    Owned by the graph (``graph.snapshots``); see the module docstring for
    the serving model.  All public methods are safe to call from any
    thread.
    """

    def __init__(self, graph: "DiGraph", max_log: int = DEFAULT_MAX_LOG) -> None:
        require(max_log >= 0, f"max_log must be >= 0, got {max_log}")
        self._graph = graph
        # Reentrant: mutators hold it across bump+note, seal() re-enters.
        self._lock = threading.RLock()
        self._sealed: Dict[int, "CSRGraph"] = {}
        self._pins: Dict[int, int] = {}
        self._log: Deque[_LogEntry] = deque()
        # Deltas are computable only for from-versions >= this floor (log
        # entries before it were trimmed or wiped by a barrier).
        self._log_floor = graph.version
        self._max_log = max_log
        # Telemetry is off until instrument() is called; the flag keeps
        # the uninstrumented mutation path free of even no-op gauge calls.
        self._instrumented = False
        self._gauge_live = None
        self._gauge_pins = None
        self._gauge_log = None
        self._gauge_shm = None
        # version -> [SharedCSR, refcount].  A shared-memory export of a
        # sealed version, refcounted independently of pins: worker pools
        # that ship the snapshot zero-copy acquire/release it around their
        # lifetime, and retiring the sealed version unlinks the segment as
        # soon as the last pool lets go.
        self._shm_exports: Dict[int, List] = {}

    def instrument(self, metrics) -> None:
        """Attach gauges from a :class:`~repro.obs.metrics.MetricsRegistry`.

        Idempotent; passing ``None`` detaches.  The gauges track live
        sealed versions, the summed pin refcount and the mutation-log
        length, refreshed on every store transition.
        """
        with self._lock:
            if metrics is None:
                self._instrumented = False
                self._gauge_live = self._gauge_pins = self._gauge_log = None
                return
            self._gauge_live = metrics.gauge("repro_snapshot_live_versions")
            self._gauge_pins = metrics.gauge("repro_snapshot_pinned_refcount_total")
            self._gauge_log = metrics.gauge("repro_snapshot_mutation_log_entries")
            self._gauge_shm = metrics.gauge("repro_snapshot_shm_segments")
            self._instrumented = True
            self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        """Push current store state into the gauges (caller holds lock)."""
        self._gauge_live.set(len(self._sealed))
        self._gauge_pins.set(sum(self._pins.values()))
        self._gauge_log.set(len(self._log))
        self._gauge_shm.set(len(self._shm_exports))

    # ------------------------------------------------------------------ #
    # Sealing and pinning
    # ------------------------------------------------------------------ #
    @property
    def lock(self) -> threading.RLock:
        """The store's reentrant lock (shared with the graph's mutators)."""
        return self._lock

    def seal(self) -> "CSRGraph":
        """Seal (or reuse) the immutable CSR of the graph's head version."""
        from repro.graph.csr import CSRGraph

        with self._lock:
            head = self._graph.version
            csr = self._sealed.get(head)
            if csr is None:
                csr = CSRGraph(self._graph)
                self._sealed[head] = csr
                if self._instrumented:
                    self._refresh_gauges()
            return csr

    def pin(self) -> PinnedSnapshot:
        """Seal the head version and return a refcounted handle on it.

        The returned snapshot stays resolvable through :meth:`resolve`
        until its last pin is released, no matter how often the graph
        mutates in the meantime.
        """
        with self._lock:
            csr = self.seal()
            self._pins[csr.version] = self._pins.get(csr.version, 0) + 1
            if self._instrumented:
                self._refresh_gauges()
            return PinnedSnapshot(self, csr)

    def release(self, version: int) -> None:
        """Drop one pin of ``version``; free the CSR at refcount zero.

        The head version's CSR is kept even unpinned — it doubles as the
        ``csr_snapshot()`` cache.  Releasing an unpinned version is a
        no-op (:meth:`PinnedSnapshot.release` is already idempotent; this
        keeps direct misuse harmless too).
        """
        with self._lock:
            count = self._pins.get(version)
            if count is None:
                return
            if count > 1:
                self._pins[version] = count - 1
            else:
                del self._pins[version]
                if version != self._graph.version:
                    self._sealed.pop(version, None)
                    self._retire_shm(version)
            if self._instrumented:
                self._refresh_gauges()

    def resolve(self, version: int) -> "CSRGraph":
        """The sealed CSR of ``version``; raises ``KeyError`` if it is not
        live (never sealed, or already released by its last consumer)."""
        with self._lock:
            csr = self._sealed.get(version)
            if csr is None:
                raise KeyError(
                    f"version {version} is not live (sealed: "
                    f"{self.live_versions()}); only pinned versions and the "
                    "head survive mutation"
                )
            return csr

    def live_versions(self) -> List[int]:
        """Sorted versions with a sealed CSR currently in the store."""
        with self._lock:
            return sorted(self._sealed)

    def pin_count(self, version: int) -> int:
        """Number of outstanding pins on ``version``."""
        with self._lock:
            return self._pins.get(version, 0)

    # ------------------------------------------------------------------ #
    # Mutation notifications (called by DiGraph, under ``lock``)
    # ------------------------------------------------------------------ #
    def note_edge(self, op: str, u: int, v: int) -> None:
        """Record a single-edge mutation (``op`` "+" or "-") that produced
        the graph's current version."""
        require(op in ("+", "-"), f"unknown mutation op {op!r}")
        with self._lock:
            self._forget_unpinned()
            self._log.append((self._graph.version, op, u, v))
            while len(self._log) > self._max_log:
                trimmed_version, _, _, _ = self._log.popleft()
                # Deltas starting before the trimmed entry are incomplete.
                self._log_floor = max(self._log_floor, trimmed_version)
            if self._instrumented:
                self._refresh_gauges()

    def note_barrier(self) -> None:
        """Record a structural change deltas cannot express (vertex count
        change, bulk rebuild): wipe the log and advance the floor."""
        with self._lock:
            self._forget_unpinned()
            self._log.clear()
            self._log_floor = self._graph.version
            if self._instrumented:
                self._refresh_gauges()

    def _forget_unpinned(self) -> None:
        """Drop sealed CSRs that are neither pinned nor the head.

        Called with the version counter already bumped, so every entry in
        ``_sealed`` is now stale; only pinned consumers keep theirs alive.
        """
        head = self._graph.version
        stale = [
            version
            for version in self._sealed
            if version != head and not self._pins.get(version)
        ]
        for version in stale:
            del self._sealed[version]
            self._retire_shm(version)

    # ------------------------------------------------------------------ #
    # Shared-memory exports
    # ------------------------------------------------------------------ #
    def export_shm(self, csr: "CSRGraph") -> Optional["SharedCSR"]:
        """Get-or-create the shared-memory export of a store-sealed ``csr``.

        Returns ``None`` when ``csr`` is not the CSR this store currently
        holds sealed for its version (a foreign or already-retired
        snapshot) — the caller then owns its own segment lifecycle.  Each
        successful call acquires one reference; pair it with
        :meth:`release_shm`.
        """
        from repro.graph.shm import SharedCSR

        with self._lock:
            if self._sealed.get(csr.version) is not csr:
                return None
            entry = self._shm_exports.get(csr.version)
            if entry is None:
                entry = [SharedCSR.create(csr), 0]
                self._shm_exports[csr.version] = entry
            entry[1] += 1
            if self._instrumented:
                self._refresh_gauges()
            return entry[0]

    def release_shm(self, version: int) -> None:
        """Drop one reference on ``version``'s shm export.

        The segment is unlinked the moment the refcount reaches zero —
        concurrently-open pools share one export via the refcount, but no
        segment outlives its last consumer (``/dev/shm`` hygiene beats
        cross-pool reuse).  Unknown versions are a no-op, mirroring
        :meth:`release`.
        """
        with self._lock:
            entry = self._shm_exports.get(version)
            if entry is None:
                return
            entry[1] = max(0, entry[1] - 1)
            if entry[1] <= 0:
                del self._shm_exports[version]
                entry[0].unlink()
            if self._instrumented:
                self._refresh_gauges()

    def _retire_shm(self, version: int) -> None:
        """Unlink ``version``'s shm export unless a pool still holds it
        (caller holds lock; the last ``release_shm`` then unlinks)."""
        entry = self._shm_exports.get(version)
        if entry is not None and entry[1] <= 0:
            del self._shm_exports[version]
            entry[0].unlink()

    def shm_export_count(self) -> int:
        """Number of live shared-memory exports (for tests/telemetry)."""
        with self._lock:
            return len(self._shm_exports)

    # ------------------------------------------------------------------ #
    # Deltas
    # ------------------------------------------------------------------ #
    def delta(
        self, from_version: int, to_version: int
    ) -> Optional[Tuple[List[Edge], List[Edge]]]:
        """Net edge changes taking version ``from_version`` to ``to_version``.

        Returns ``(edges_added, edges_removed)`` — both sorted, already
        netted (an edge added then removed inside the window cancels out,
        and vice versa) — or ``None`` when the window is not coverable:
        the versions run backwards, the log was trimmed past
        ``from_version``, or a barrier (vertex add, bulk rebuild) sits
        inside the window.
        """
        with self._lock:
            if from_version == to_version:
                return [], []
            if from_version > to_version or from_version < self._log_floor:
                return None
            added: set = set()
            removed: set = set()
            covered = from_version
            for version, op, u, v in self._log:
                if version <= from_version or version > to_version:
                    continue
                # Every single-edge mutation bumps the version by exactly
                # one; a gap means a barrier landed inside the window.
                if version != covered + 1:
                    return None
                covered = version
                edge = (u, v)
                if op == "+":
                    if edge in removed:
                        removed.discard(edge)
                    else:
                        added.add(edge)
                else:
                    if edge in added:
                        added.discard(edge)
                    else:
                        removed.add(edge)
            if covered != to_version:
                return None
            return sorted(added), sorted(removed)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SnapshotStore(head={self._graph.version}, "
                f"sealed={self.live_versions()}, "
                f"pins={dict(sorted(self._pins.items()))}, "
                f"log={len(self._log)})"
            )
