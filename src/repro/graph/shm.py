"""Zero-copy shared-memory transport for CSR snapshots and index payloads.

The parallel executor used to *pickle* the sealed :class:`CSRGraph` into
every worker (pool initializer) and the serialized
:class:`~repro.bfs.distance_index.CSRDistanceIndex` into every batch's task
payload.  This module moves both into POSIX shared memory
(:mod:`multiprocessing.shared_memory`) so a worker *maps* the bytes the
parent already laid out instead of copying them through a pipe:

``SharedCSR``
    Creator-side wrapper packing the four flat CSR arrays (forward/backward
    offsets + targets) into one segment.  Its picklable :class:`SharedCSRHandle`
    travels through the pool initializer / task args; ``handle.attach()``
    reconstructs a read-only :class:`CSRGraph` whose arrays are
    ``memoryview`` slices of the mapping — zero copies, identical read
    surface (the enumeration stack only indexes, slices and iterates).

``SharedIndexPayload``
    Same idea for the per-batch index blob: the parent copies
    ``index.to_bytes()`` into a segment once; each worker deserializes (or
    zero-copy views) straight out of the mapping instead of receiving the
    blob through the task pickle.

Lifecycle discipline (the part that keeps ``/dev/shm`` clean):

* every segment name carries the :data:`SEGMENT_PREFIX` so tests can assert
  zero leaked ``repro-shm-*`` entries after any pool/service lifecycle;
* the *creator* owns unlinking — ``WorkerPool.shutdown`` / the
  ``SnapshotStore`` export refcount / ``stream_parallel``'s finally block
  call :meth:`unlink` exactly once (idempotent), after which the kernel
  frees the pages as the last mapping closes;
* *attachers* (workers) deliberately suppress the
  ``multiprocessing.resource_tracker`` registration: on Python < 3.13 every
  attach is (wrongly) registered as an owned resource, so a recycled
  worker's tracker would otherwise unlink segments the parent and sibling
  workers still map — and spray "leaked shared_memory" warnings for
  segments the creator cleans up itself.  The suppression (see
  :func:`_attach_segment`) is the documented workaround, not an accident;
  the creator's own registration stays in place as the crash-safety net
  until ``unlink()`` retires it.
"""

from __future__ import annotations

import os
import secrets
from array import array
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.graph.csr import CSRGraph, TYPECODE
from repro.utils.validation import require

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Every segment this module creates is named ``repro-shm-<pid>-<token>`` —
#: recognisable both in ``/dev/shm`` listings and in the hygiene fixtures.
SEGMENT_PREFIX = "repro-shm"

_ITEMSIZE = array(TYPECODE).itemsize


def shm_available() -> bool:
    """Whether POSIX shared memory is usable on this platform."""
    return _shared_memory is not None


def _new_segment(nbytes: int) -> "_shared_memory.SharedMemory":
    require(shm_available(), "multiprocessing.shared_memory is not available")
    while True:
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        try:
            return _shared_memory.SharedMemory(
                name=name, create=True, size=max(1, nbytes)
            )
        except FileExistsError:  # pragma: no cover - 8-byte token collision
            continue


def _attach_segment(name: str) -> "_shared_memory.SharedMemory":
    """Attach to an existing segment *without* adopting its lifetime.

    See the module docstring: the attach-side ``resource_tracker``
    registration (unconditional before Python 3.13) is suppressed on
    purpose — under ``spawn`` a recycled worker's own tracker would
    otherwise unlink segments the creator still serves, and under ``fork``
    an attach-then-unregister would strip the *creator's* registration
    from the shared tracker (the tracker then spews a ``KeyError`` when
    the creator's ``unlink()`` unregisters again).  Skipping registration
    entirely is the one behaviour that is correct for both start methods;
    ownership rests solely with the creator.
    """
    require(shm_available(), "multiprocessing.shared_memory is not available")
    try:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _register_skipping_shm(resource_name, rtype):
            if rtype != "shared_memory":
                original_register(resource_name, rtype)

        resource_tracker.register = _register_skipping_shm
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    except ImportError:  # pragma: no cover - tracker internals shifted
        return _shared_memory.SharedMemory(name=name)


def _release_views(views: List[memoryview]) -> None:
    for view in views:
        try:
            view.release()
        except Exception:  # pragma: no cover - already released
            pass
    views.clear()


def _close_segment(segment, views: List[memoryview]) -> None:
    """Release derived views, then unmap; tolerate straggler exports.

    ``SharedMemory.close`` raises ``BufferError`` while any derived
    ``memoryview`` is alive; callers drop their references first, but a
    borrowed row that outlives its index (e.g. mid-crash teardown) must not
    turn cleanup into a new failure — the mapping then simply lives until
    process exit, which the kernel handles.
    """
    _release_views(views)
    try:
        segment.close()
    except BufferError:  # pragma: no cover - straggler view holds the buffer
        pass


class SharedCSR:
    """Creator-side shared-memory export of one sealed :class:`CSRGraph`.

    Layout: the four flat arrays back to back, in :data:`TYPECODE` items —
    ``fwd_offsets | fwd_targets | bwd_offsets | bwd_targets``.  The handle
    carries the item counts, so attachment needs no header parsing.
    """

    def __init__(self, segment, handle: "SharedCSRHandle") -> None:
        self._segment = segment
        self._views: List[memoryview] = []
        self._unlinked = False
        self.handle = handle

    @classmethod
    def create(cls, csr: CSRGraph) -> "SharedCSR":
        arrays = [*csr.flat(forward=True), *csr.flat(forward=False)]
        counts = tuple(len(a) for a in arrays)
        segment = _new_segment(sum(counts) * _ITEMSIZE)
        view = segment.buf[: sum(counts) * _ITEMSIZE].cast(TYPECODE)
        cursor = 0
        for source in arrays:
            view[cursor : cursor + len(source)] = source
            cursor += len(source)
        view.release()
        handle = SharedCSRHandle(
            name=segment.name,
            num_vertices=csr.num_vertices,
            num_edges=csr.num_edges,
            version=csr.version,
            itemsize=_ITEMSIZE,
            counts=counts,
        )
        return cls(segment, handle)

    @property
    def nbytes(self) -> int:
        return sum(self.handle.counts) * self.handle.itemsize

    def unlink(self) -> None:
        """Retire the segment (idempotent): unmap and remove the name.

        Workers that still map it keep reading safely — POSIX keeps the
        pages until the last mapping closes; the name is gone immediately,
        which is what the ``/dev/shm`` hygiene fixtures assert on.
        """
        if self._unlinked:
            return
        self._unlinked = True
        _close_segment(self._segment, self._views)
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def __repr__(self) -> str:
        return (
            f"SharedCSR({self.handle.name}, |V|={self.handle.num_vertices}, "
            f"|E|={self.handle.num_edges}, version={self.handle.version})"
        )


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable address of a :class:`SharedCSR` segment.

    This tiny frozen dataclass is what actually crosses the process
    boundary (pool initializer / task args) in place of the pickled graph;
    RA003 checks it stays module-level and therefore picklable.
    """

    name: str
    num_vertices: int
    num_edges: int
    version: int
    itemsize: int
    counts: Tuple[int, int, int, int]

    def attach(self) -> "AttachedCSR":
        """Map the segment and wrap it as a read-only :class:`CSRGraph`."""
        require(
            self.itemsize == _ITEMSIZE,
            f"shared CSR itemsize {self.itemsize} does not match "
            f"this interpreter's array('{TYPECODE}') itemsize {_ITEMSIZE}",
        )
        segment = _attach_segment(self.name)
        total = sum(self.counts)
        base = segment.buf[: total * self.itemsize].cast(TYPECODE)
        slices = []
        cursor = 0
        for count in self.counts:
            slices.append(base[cursor : cursor + count])
            cursor += count
        return AttachedCSR._from_segment(segment, self, base, slices)


class AttachedCSR(CSRGraph):
    """A :class:`CSRGraph` whose flat arrays live in a shared mapping.

    Behaviour-identical to the pickled snapshot for the whole read surface
    (``memoryview`` slices support indexing, slicing, ``len`` and
    iteration), but never re-picklable: processes exchange the
    :class:`SharedCSRHandle`, not the mapping.
    """

    __slots__ = ("_segment", "_views", "_closed")

    def __init__(self) -> None:  # pragma: no cover - use the handle
        raise TypeError("AttachedCSR is built via SharedCSRHandle.attach()")

    @classmethod
    def _from_segment(cls, segment, handle, base, slices) -> "AttachedCSR":
        csr = cls.__new__(cls)
        csr.num_vertices = handle.num_vertices
        csr.num_edges = handle.num_edges
        csr.version = handle.version
        (
            csr._fwd_offsets,
            csr._fwd_targets,
            csr._bwd_offsets,
            csr._bwd_targets,
        ) = slices
        csr._fwd_lists = None
        csr._bwd_lists = None
        csr._segment = segment
        csr._views = [base, *slices]
        csr._closed = False
        return csr

    def close(self) -> None:
        """Unmap (idempotent); registered via ``atexit`` in pool workers."""
        if self._closed:
            return
        self._closed = True
        self._fwd_lists = None
        self._bwd_lists = None
        views = self._views
        self._fwd_offsets = self._fwd_targets = None
        self._bwd_offsets = self._bwd_targets = None
        _close_segment(self._segment, views)

    def __reduce__(self):
        raise TypeError(
            "AttachedCSR maps process-local shared memory and cannot be "
            "pickled; ship its SharedCSRHandle instead"
        )


class SharedIndexPayload:
    """Creator-side shared-memory export of one serialized index blob."""

    def __init__(self, segment, handle: "SharedIndexHandle") -> None:
        self._segment = segment
        self._views: List[memoryview] = []
        self._unlinked = False
        self.handle = handle

    @classmethod
    def create(cls, blob: bytes) -> "SharedIndexPayload":
        segment = _new_segment(len(blob))
        segment.buf[: len(blob)] = blob
        return cls(segment, SharedIndexHandle(name=segment.name, nbytes=len(blob)))

    def unlink(self) -> None:
        """Retire the segment (idempotent); see :meth:`SharedCSR.unlink`."""
        if self._unlinked:
            return
        self._unlinked = True
        _close_segment(self._segment, self._views)
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass


@dataclass(frozen=True)
class SharedIndexHandle:
    """Picklable address of a :class:`SharedIndexPayload` segment."""

    name: str
    nbytes: int

    def attach(self) -> "AttachedBlob":
        segment = _attach_segment(self.name)
        return AttachedBlob(segment, self.nbytes)


class AttachedBlob:
    """Worker-side view over a shared index blob."""

    def __init__(self, segment, nbytes: int) -> None:
        self._segment = segment
        self._view: Optional[memoryview] = segment.buf[:nbytes]

    @property
    def view(self) -> memoryview:
        require(self._view is not None, "shared index blob already closed")
        return self._view

    def close(self) -> None:
        """Unmap (idempotent).  Callers drop index references first; a
        straggler row view keeps the mapping alive until process exit
        rather than failing the eviction (see :func:`_close_segment`)."""
        if self._view is None:
            return
        views = [self._view]
        self._view = None
        _close_segment(self._segment, views)
