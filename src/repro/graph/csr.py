"""Immutable compressed sparse row (CSR) snapshot of a :class:`DiGraph`.

The enumeration hot loops only need fast, read-only access to out-neighbour
lists of ``G`` and ``Gr``.  ``CSRGraph`` packs both directions into flat
arrays (``array('i')``) which are considerably cheaper to scan in CPython
than nested Python lists, and guarantees that the graph cannot change while
an index built from it is alive.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence

from repro.graph.digraph import DiGraph


class CSRGraph:
    """Read-only CSR view with both forward and reverse adjacency.

    ``neighbors(v, forward=True)`` returns the out-neighbours of ``v`` in
    ``G``; with ``forward=False`` it returns the out-neighbours of ``v`` in
    ``Gr`` (i.e. the in-neighbours in ``G``).  This mirrors the paper's
    convention of running a *forward search* on ``G`` and a *backward
    search* on ``Gr`` with the same code.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "_fwd_offsets",
        "_fwd_targets",
        "_bwd_offsets",
        "_bwd_targets",
    )

    def __init__(self, graph: DiGraph) -> None:
        self.num_vertices = graph.num_vertices
        self.num_edges = graph.num_edges
        self._fwd_offsets, self._fwd_targets = self._pack(
            [graph.out_neighbors(v) for v in graph.vertices()]
        )
        self._bwd_offsets, self._bwd_targets = self._pack(
            [graph.in_neighbors(v) for v in graph.vertices()]
        )

    @staticmethod
    def _pack(adjacency: List[Sequence[int]]) -> tuple[array, array]:
        offsets = array("l", [0] * (len(adjacency) + 1))
        targets = array("l")
        cursor = 0
        for v, neighbors in enumerate(adjacency):
            sorted_neighbors = sorted(neighbors)
            targets.extend(sorted_neighbors)
            cursor += len(sorted_neighbors)
            offsets[v + 1] = cursor
        return offsets, targets

    def neighbors(self, v: int, forward: bool = True) -> Sequence[int]:
        """Out-neighbours of ``v`` in ``G`` (forward) or ``Gr`` (backward)."""
        if forward:
            offsets, targets = self._fwd_offsets, self._fwd_targets
        else:
            offsets, targets = self._bwd_offsets, self._bwd_targets
        return targets[offsets[v]:offsets[v + 1]]

    def out_neighbors(self, v: int) -> Sequence[int]:
        return self.neighbors(v, forward=True)

    def in_neighbors(self, v: int) -> Sequence[int]:
        return self.neighbors(v, forward=False)

    def out_degree(self, v: int) -> int:
        return self._fwd_offsets[v + 1] - self._fwd_offsets[v]

    def in_degree(self, v: int) -> int:
        return self._bwd_offsets[v + 1] - self._bwd_offsets[v]

    def adjacency_lists(self, forward: bool = True) -> List[List[int]]:
        """Materialise plain Python adjacency lists for one direction.

        The recursive enumeration code indexes adjacency by vertex id in a
        tight loop; plain lists of lists are the fastest structure for that
        in CPython, so callers typically grab these once per run.
        """
        return [list(self.neighbors(v, forward)) for v in range(self.num_vertices)]

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
