"""Immutable compressed sparse row (CSR) snapshot of a :class:`DiGraph`.

The enumeration hot loops only need fast, read-only access to out-neighbour
lists of ``G`` and ``Gr``.  ``CSRGraph`` packs both directions into flat
arrays (``array('l')`` — the signed-long typecode, wide enough for any
realistic vertex id; see :data:`TYPECODE`) which are considerably cheaper
to scan in CPython than nested Python lists, and guarantees that the graph
cannot change while an index built from it is alive.

Neighbour runs are stored **sorted ascending**, the same deterministic
order :class:`DiGraph` maintains, so iterative searches over either view
enumerate paths in identical order.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, List, Sequence

from repro.graph.digraph import DiGraph
from repro.utils.validation import require

#: Array typecode used for both the offset and target arrays.  ``'l'`` is a
#: C signed long (at least 32 bits, 64 on common platforms), chosen over
#: ``'i'`` so that very large vertex-id spaces cannot silently overflow.
TYPECODE = "l"

#: Largest value representable by :data:`TYPECODE` on this platform.
_TYPECODE_MAX = 2 ** (8 * array(TYPECODE).itemsize - 1) - 1


class CSRGraph:
    """Read-only CSR view with both forward and reverse adjacency.

    ``neighbors(v, forward=True)`` returns the out-neighbours of ``v`` in
    ``G``; with ``forward=False`` it returns the out-neighbours of ``v`` in
    ``Gr`` (i.e. the in-neighbours in ``G``).  This mirrors the paper's
    convention of running a *forward search* on ``G`` and a *backward
    search* on ``Gr`` with the same code.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "version",
        "_fwd_offsets",
        "_fwd_targets",
        "_bwd_offsets",
        "_bwd_targets",
        "_fwd_lists",
        "_bwd_lists",
    )

    def __init__(self, graph: DiGraph) -> None:
        self.num_vertices = graph.num_vertices
        self.num_edges = graph.num_edges
        # The DiGraph revision this snapshot was packed at; consumers use
        # it to resolve deltas and to match artefacts to snapshots.
        self.version = graph.version
        self._fwd_offsets, self._fwd_targets = self._pack(
            [graph.out_neighbors(v) for v in graph.vertices()]
        )
        self._bwd_offsets, self._bwd_targets = self._pack(
            [graph.in_neighbors(v) for v in graph.vertices()]
        )
        # Materialised list-of-lists adjacency, built lazily per direction.
        self._fwd_lists: List[List[int]] | None = None
        self._bwd_lists: List[List[int]] | None = None

    @staticmethod
    def _pack(adjacency: List[Sequence[int]]) -> tuple[array, array]:
        num_edges = sum(len(neighbors) for neighbors in adjacency)
        require(
            len(adjacency) - 1 <= _TYPECODE_MAX and num_edges <= _TYPECODE_MAX,
            f"graph too large for array typecode {TYPECODE!r} "
            f"(max representable value {_TYPECODE_MAX})",
        )
        offsets = array(TYPECODE, [0] * (len(adjacency) + 1))
        targets = array(TYPECODE)
        cursor = 0
        for v, neighbors in enumerate(adjacency):
            # DiGraph maintains adjacency sorted ascending at all times, so
            # re-sorting here is pure waste — and snapshots are taken far
            # more often under copy-on-write serving.  Keep the invariant
            # checked in debug builds only.
            assert all(
                neighbors[i] < neighbors[i + 1] for i in range(len(neighbors) - 1)
            ), f"adjacency of vertex {v} is not strictly sorted"
            targets.extend(neighbors)
            cursor += len(neighbors)
            offsets[v + 1] = cursor
        return offsets, targets

    def neighbors(self, v: int, forward: bool = True) -> Sequence[int]:
        """Out-neighbours of ``v`` in ``G`` (forward) or ``Gr`` (backward)."""
        if forward:
            offsets, targets = self._fwd_offsets, self._fwd_targets
        else:
            offsets, targets = self._bwd_offsets, self._bwd_targets
        return targets[offsets[v]:offsets[v + 1]]

    def out_neighbors(self, v: int) -> Sequence[int]:
        return self.neighbors(v, forward=True)

    def in_neighbors(self, v: int) -> Sequence[int]:
        return self.neighbors(v, forward=False)

    def out_degree(self, v: int) -> int:
        return self._fwd_offsets[v + 1] - self._fwd_offsets[v]

    def in_degree(self, v: int) -> int:
        return self._bwd_offsets[v + 1] - self._bwd_offsets[v]

    def flat(self, forward: bool = True) -> tuple[array, array]:
        """The raw ``(offsets, targets)`` arrays of one direction."""
        if forward:
            return self._fwd_offsets, self._fwd_targets
        return self._bwd_offsets, self._bwd_targets

    def adjacency_lists(self, forward: bool = True) -> List[List[int]]:
        """Materialise plain Python adjacency lists for one direction.

        The iterative enumeration code indexes adjacency by vertex id in a
        tight loop; plain lists of lists are the fastest structure for that
        in CPython.  The lists are built once per direction and cached, so
        every search over the same snapshot shares them — callers must not
        mutate the returned structure.
        """
        if forward:
            if self._fwd_lists is None:
                offsets, targets = self._fwd_offsets, self._fwd_targets
                self._fwd_lists = [
                    list(targets[offsets[v]:offsets[v + 1]])
                    for v in range(self.num_vertices)
                ]
            # Shared read-only hot-path cache; copying ~|V| lists per
            # search would dominate small-graph enumeration time.
            return self._fwd_lists  # repro: ignore[RA004] -- shared read-only cache
        if self._bwd_lists is None:
            offsets, targets = self._bwd_offsets, self._bwd_targets
            self._bwd_lists = [
                list(targets[offsets[v]:offsets[v + 1]])
                for v in range(self.num_vertices)
            ]
        return self._bwd_lists  # repro: ignore[RA004] -- shared read-only cache

    # ------------------------------------------------------------------ #
    # DiGraph read-surface compatibility
    #
    # The enumeration stack (PathEnum/BasicEnum/BatchEnum, multi_source_bfs,
    # detection) only ever *reads* the graph it is handed: neighbour lists,
    # vertex/edge counts, ``vertices()``, ``has_edge`` and ``csr_snapshot``.
    # Implementing that surface here lets a sealed snapshot stand in for the
    # live ``DiGraph`` everywhere downstream — which is exactly how
    # multi-version serving keeps in-flight batches on their pinned version.
    # ------------------------------------------------------------------ #
    def vertices(self) -> range:
        return range(self.num_vertices)

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbors(u, forward=True)
        position = bisect_left(row, v)
        return position < len(row) and row[position] == v

    def csr_snapshot(self) -> "CSRGraph":
        """A CSR view of this graph — already one; returns ``self``."""
        return self

    def __getstate__(self) -> Dict[str, object]:
        # The lazy list-of-lists caches are derived data; shipping them to
        # worker processes would double the payload for no benefit.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_fwd_lists", "_bwd_lists")
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._fwd_lists = None
        self._bwd_lists = None

    def __repr__(self) -> str:
        return (
            f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"version={self.version})"
        )
