"""repro — batch hop-constrained s-t simple path query processing.

A faithful, pure-Python reproduction of "Batch Hop-Constrained s-t Simple
Path Query Processing in Large Graphs" (ICDE 2024): the BatchEnum /
BatchEnum+ algorithms, the BasicEnum and PathEnum baselines, the adapted
k-shortest-path competitors, and the complete experiment harness used to
regenerate the paper's tables and figures on synthetic stand-ins for its
datasets.

Quickstart
----------
>>> from repro import DiGraph, HCSTQuery, BatchQueryEngine
>>> graph = DiGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
>>> engine = BatchQueryEngine(graph, algorithm="batch+")
>>> result = engine.run([HCSTQuery(s=0, t=3, k=3)])
>>> sorted(result.paths_at(0))
[(0, 1, 2, 3), (0, 2, 3)]

Large batches can be sharded across worker processes; results are merged
by batch position and are identical to the single-process run::

    engine = BatchQueryEngine(graph, algorithm="batch+", num_workers=4)
    result = engine.run(queries)          # or batch_enumerate(..., num_workers=4)

Results can also be *streamed*: ``engine.stream(queries)`` (or the
module-level :func:`stream_enumerate`) yields ``(batch_position, paths)``
tuples as soon as the owning shard/cluster completes — with
``ordered=False`` the first finished cluster is delivered immediately
instead of waiting on the slowest one::

    for position, paths in engine.stream(queries, ordered=False):
        handle(position, paths)

For continuous traffic, :func:`serve` stands up an
:class:`IngestionService` that accepts queries *while batches are in
flight*, grouping arrivals into micro-batches and resolving per-query
:class:`QueryTicket` handles as results stream out::

    with serve(graph, algorithm="batch+") as service:
        ticket = service.submit(HCSTQuery(0, 3, 3))
        paths = ticket.result(timeout=30.0)

The enumeration hot paths are iterative (explicit-stack) searches over a
shared :class:`CSRGraph` snapshot, so arbitrarily deep hop constraints
never hit Python's recursion limit.
"""

from repro.graph.digraph import DiGraph
from repro.graph.csr import CSRGraph
from repro.queries.query import HCSTQuery, HCsPathQuery, Direction
from repro.queries.workload import QueryWorkload
from repro.enumeration.path_enum import PathEnum, enumerate_paths
from repro.enumeration.brute_force import enumerate_paths_brute_force
from repro.batch.engine import (
    BatchQueryEngine,
    batch_enumerate,
    stream_enumerate,
    ALGORITHMS,
)
from repro.batch.basic_enum import BasicEnum, run_pathenum_baseline
from repro.batch.batch_enum import BatchEnum
from repro.batch.results import BatchResult, SharingStats
from repro.batch.service import (
    AdmissionPolicy,
    IngestionService,
    QueryTicket,
    ServiceStats,
    serve,
)

__version__ = "1.1.0"

__all__ = [
    "DiGraph",
    "CSRGraph",
    "HCSTQuery",
    "HCsPathQuery",
    "Direction",
    "QueryWorkload",
    "PathEnum",
    "enumerate_paths",
    "enumerate_paths_brute_force",
    "BatchQueryEngine",
    "batch_enumerate",
    "stream_enumerate",
    "ALGORITHMS",
    "BasicEnum",
    "run_pathenum_baseline",
    "BatchEnum",
    "BatchResult",
    "SharingStats",
    "AdmissionPolicy",
    "IngestionService",
    "QueryTicket",
    "ServiceStats",
    "serve",
    "__version__",
]
