"""The synthetic stand-ins for the paper's twelve datasets (Table I).

The paper evaluates on real graphs between 75 K and 65 M vertices (up to
1.8 B edges).  Those graphs are not redistributable here and far exceed
what pure-Python enumeration can process, so each dataset is replaced by a
deterministic synthetic graph that keeps

* the *relative ordering* of vertex counts and edge counts,
* the *degree character* (heavy-tailed for the social networks, dense and
  more regular for the web/recommendation graphs), and
* the dataset *names*, so every experiment prints rows labelled exactly
  like the paper's.

The ``scale`` knob multiplies every vertex count; 1.0 is the default used
by the benchmark suite and finishes in seconds per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    powerlaw_directed,
    random_directed_gnm,
    small_world_directed,
)
from repro.graph.stats import GraphStats, compute_stats
from repro.utils.validation import require


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset.

    ``paper_vertices`` / ``paper_edges`` / ``paper_davg`` record the real
    dataset's statistics from Table I for side-by-side reporting.
    """

    name: str
    full_name: str
    generator: str            # "powerlaw" | "gnm" | "smallworld"
    vertices: int
    degree: int
    seed: int
    paper_vertices: str
    paper_edges: str
    paper_davg: float


#: The twelve datasets of Table I in the paper's order.
DATASETS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("EP", "Epinions", "powerlaw", 1500, 7, 101, "75K", "508K", 13.4),
    DatasetSpec("SL", "Slashdot", "powerlaw", 1600, 11, 102, "82K", "948K", 21.2),
    DatasetSpec("BK", "Baidu-baike", "powerlaw", 4000, 3, 103, "416K", "3M", 5.0),
    DatasetSpec("WT", "WikiTalk", "powerlaw", 6000, 3, 104, "2M", "5M", 5.0),
    DatasetSpec("BS", "BerkStan", "smallworld", 3000, 11, 105, "685K", "7M", 22.2),
    DatasetSpec("SK", "Skitter", "powerlaw", 5000, 7, 106, "1.6M", "11M", 13.1),
    DatasetSpec("UK", "Web-uk-2005", "smallworld", 1200, 45, 107, "130K", "11.7M", 181.2),
    DatasetSpec("DA", "Rec-dating", "gnm", 1500, 50, 108, "169K", "17M", 205.7),
    DatasetSpec("PO", "Pokec", "powerlaw", 5000, 19, 109, "1.6M", "31M", 37.5),
    DatasetSpec("LJ", "LiveJournal", "powerlaw", 8000, 9, 110, "4M", "69M", 17.9),
    DatasetSpec("TW", "Twitter-2010", "powerlaw", 12000, 18, 111, "42M", "1.46B", 70.5),
    DatasetSpec("FS", "Friendster", "powerlaw", 15000, 7, 112, "65M", "1.81B", 27.5),
)

_BY_NAME: Dict[str, DatasetSpec] = {spec.name: spec for spec in DATASETS}

#: Subset used by the quick benchmark configuration (one per size class).
QUICK_DATASETS: Tuple[str, ...] = ("EP", "BK", "UK", "LJ")


def dataset_names(quick: bool = False) -> List[str]:
    """Names of the datasets, in Table I order."""
    if quick:
        return list(QUICK_DATASETS)
    return [spec.name for spec in DATASETS]


def get_spec(name: str) -> DatasetSpec:
    require(name in _BY_NAME, f"unknown dataset {name!r}; known: {sorted(_BY_NAME)}")
    return _BY_NAME[name]


@lru_cache(maxsize=None)
def load_dataset(name: str, scale: float = 1.0) -> DiGraph:
    """Generate (and cache) the synthetic graph for ``name``.

    ``scale`` multiplies the vertex count (edges scale accordingly); the
    scalability experiment uses it to shrink the two largest datasets.
    """
    spec = get_spec(name)
    require(scale > 0.0, "scale must be positive")
    vertices = max(50, int(round(spec.vertices * scale)))
    if spec.generator == "powerlaw":
        return powerlaw_directed(
            vertices, spec.degree, seed=spec.seed, reciprocal_probability=0.3
        )
    if spec.generator == "gnm":
        return random_directed_gnm(vertices, vertices * spec.degree, seed=spec.seed)
    if spec.generator == "smallworld":
        return small_world_directed(
            vertices, spec.degree, rewire_probability=0.15, seed=spec.seed
        )
    raise ValueError(f"unknown generator {spec.generator!r}")


def dataset_table(scale: float = 1.0, quick: bool = False) -> List[Dict[str, object]]:
    """Rows of Table I: per dataset, the synthetic graph's statistics next
    to the real dataset's published statistics."""
    rows: List[Dict[str, object]] = []
    for name in dataset_names(quick=quick):
        spec = get_spec(name)
        graph = load_dataset(name, scale=scale)
        stats: GraphStats = compute_stats(graph)
        rows.append(
            {
                "name": spec.name,
                "full_name": spec.full_name,
                "|V|": stats.num_vertices,
                "|E|": stats.num_edges,
                "davg": round(stats.average_degree, 1),
                "dmax": stats.max_degree,
                "paper |V|": spec.paper_vertices,
                "paper |E|": spec.paper_edges,
                "paper davg": spec.paper_davg,
            }
        )
    return rows


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.reporting import format_table

    rows = dataset_table()
    print(format_table(rows, title="Table I — dataset statistics (synthetic stand-ins)"))


if __name__ == "__main__":  # pragma: no cover
    main()
