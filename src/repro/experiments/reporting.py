"""Plain-text rendering of experiment rows and series.

The paper reports everything as figures; this reproduction prints the same
data as aligned text tables so the output diffs cleanly and can be pasted
into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of homogeneous dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    columns = {header: [str(row.get(header, "")) for row in rows] for header in headers}
    widths = {
        header: max(len(header), *(len(value) for value in columns[header]))
        for header in headers
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[header]) for header in headers))
    lines.append("  ".join("-" * widths[header] for header in headers))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(header, "")).ljust(widths[header]) for header in headers)
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[object, float]],
    x_label: str = "x",
    value_format: str = "{:.4f}",
    title: str = "",
) -> str:
    """Render ``{series name: {x: y}}`` as a table with one column per series.

    Used for the figure-style experiments (time vs. similarity, vs. |Q|,
    vs. γ, ...) where every algorithm contributes one curve.
    """
    if not series:
        return f"{title}\n(no series)" if title else "(no series)"
    x_values: List[object] = []
    for curve in series.values():
        for x in curve:
            if x not in x_values:
                x_values.append(x)
    rows = []
    for x in x_values:
        row: Dict[str, object] = {x_label: x}
        for name, curve in series.items():
            value = curve.get(x)
            row[name] = value_format.format(value) if value is not None else ""
        rows.append(row)
    return format_table(rows, title=title)
