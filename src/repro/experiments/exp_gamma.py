"""Exp-4 (Fig. 10) — impact of the clustering threshold γ.

BatchEnum+ is run with γ from 0.1 to 1.0; the paper observes a U-shape:
small γ over-merges dissimilar queries into one group (overhead without
benefit), large γ prevents sharing altogether, and the optimum lies in
between.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.batch.batch_enum import BatchEnum
from repro.experiments.datasets import dataset_names, load_dataset
from repro.experiments.reporting import format_series
from repro.queries.generation import generate_similar_workload

DEFAULT_GAMMAS: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_gamma_experiment(
    dataset: str,
    gammas: Sequence[float] = DEFAULT_GAMMAS,
    num_queries: int = 30,
    similarity: float = 0.5,
    min_k: int = 3,
    max_k: int = 4,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, object]:
    """BatchEnum+ processing time for each γ on one dataset."""
    import time

    graph = load_dataset(dataset, scale=scale)
    queries, _ = generate_similar_workload(
        graph, num_queries, target_similarity=similarity,
        min_k=min_k, max_k=max_k, seed=seed, measure=False,
    )
    times: Dict[float, float] = {}
    clusters: Dict[float, int] = {}
    for gamma in gammas:
        algorithm = BatchEnum(graph, gamma=gamma, optimize_search_order=True)
        started = time.perf_counter()
        result = algorithm.run(queries)
        times[gamma] = time.perf_counter() - started
        clusters[gamma] = result.sharing.num_clusters
    return {"dataset": dataset, "times": times, "clusters": clusters}


def run_all(
    datasets: Sequence[str] | None = None, quick: bool = True, **kwargs
) -> List[Dict[str, object]]:
    names = list(datasets) if datasets else dataset_names(quick=quick)
    return [run_gamma_experiment(name, **kwargs) for name in names]


def main() -> None:  # pragma: no cover - CLI convenience
    outcomes = run_all(quick=False)
    series = {outcome["dataset"]: outcome["times"] for outcome in outcomes}
    print(format_series(series, x_label="gamma",
                        title="Fig. 10 — BatchEnum+ time (s) vs. γ"))


if __name__ == "__main__":  # pragma: no cover
    main()
