"""Exp-1 (Fig. 7) — processing time and speedup when varying query similarity.

The paper varies the average pairwise similarity µ_Q of a 100-query batch
from 0 % to 90 % and reports, per dataset, the processing time of PathEnum,
BasicEnum(+) and BatchEnum(+) plus the speedup of the batch algorithms and
the theoretical speedup limit ``1 / (1 - µ_Q)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.datasets import dataset_names, load_dataset
from repro.experiments.harness import DEFAULT_ALGORITHMS, compare_algorithms
from repro.experiments.reporting import format_series
from repro.queries.generation import generate_similar_workload

#: Similarity levels reported by Fig. 7.
DEFAULT_SIMILARITIES: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9)


def run_similarity_experiment(
    dataset: str,
    similarities: Sequence[float] = DEFAULT_SIMILARITIES,
    num_queries: int = 30,
    min_k: int = 3,
    max_k: int = 4,
    gamma: float = 0.5,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, object]:
    """Return times, speedups and the speedup limit for one dataset.

    Result layout::

        {
          "dataset": "EP",
          "achieved_similarity": {0.0: .., 0.2: .., ...},
          "times":    {"BatchEnum+": {0.0: seconds, ...}, ...},
          "speedups": {"BatchEnum+": {0.0: x, ...}, "BatchEnum": {...},
                       "Speedup Limit": {...}},
        }

    Speedups are measured against the matching non-sharing baseline
    (BatchEnum vs. BasicEnum, BatchEnum+ vs. BasicEnum+), mirroring how the
    paper isolates the benefit of computation sharing.
    """
    graph = load_dataset(dataset, scale=scale)
    times: Dict[str, Dict[float, float]] = {}
    speedups: Dict[str, Dict[float, float]] = {}
    achieved: Dict[float, float] = {}

    for similarity in similarities:
        queries, spec = generate_similar_workload(
            graph,
            num_queries,
            target_similarity=similarity,
            min_k=min_k,
            max_k=max_k,
            seed=seed,
        )
        achieved[similarity] = spec.achieved_similarity or 0.0
        runs = compare_algorithms(graph, queries, algorithms, gamma=gamma)
        for run in runs.values():
            times.setdefault(run.display_name, {})[similarity] = run.seconds
        if "batch" in runs and "basic" in runs:
            speedups.setdefault("BatchEnum", {})[similarity] = (
                runs["basic"].seconds / max(runs["batch"].seconds, 1e-9)
            )
        if "batch+" in runs and "basic+" in runs:
            speedups.setdefault("BatchEnum+", {})[similarity] = (
                runs["basic+"].seconds / max(runs["batch+"].seconds, 1e-9)
            )
        mu = achieved[similarity]
        speedups.setdefault("Speedup Limit", {})[similarity] = (
            1.0 / (1.0 - mu) if mu < 1.0 else float("inf")
        )

    return {
        "dataset": dataset,
        "achieved_similarity": achieved,
        "times": times,
        "speedups": speedups,
    }


def run_all(
    datasets: Sequence[str] | None = None, quick: bool = True, **kwargs
) -> List[Dict[str, object]]:
    """Run the experiment for several datasets (Fig. 7 has one panel each)."""
    names = list(datasets) if datasets else dataset_names(quick=quick)
    return [run_similarity_experiment(name, **kwargs) for name in names]


def main() -> None:  # pragma: no cover - CLI convenience
    for outcome in run_all(quick=True):
        print(format_series(
            outcome["times"], x_label="similarity",
            title=f"Fig. 7 ({outcome['dataset']}) — time (s) vs. query similarity",
        ))
        print(format_series(
            outcome["speedups"], x_label="similarity", value_format="{:.2f}",
            title=f"Fig. 7 ({outcome['dataset']}) — speedup vs. query similarity",
        ))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
