"""Exp-2 (Fig. 8) — efficiency when varying the query set size |Q|.

The paper grows random query sets from 100 to 500 queries and reports the
processing time of the five algorithms on every dataset.  The reproduction
uses the same protocol with a configurable size ladder (smaller by default
so the suite stays fast on the scaled-down datasets).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.datasets import dataset_names, load_dataset
from repro.experiments.harness import DEFAULT_ALGORITHMS, compare_algorithms
from repro.experiments.reporting import format_series
from repro.queries.generation import generate_random_queries

DEFAULT_SIZES: Sequence[int] = (20, 40, 60, 80, 100)


def run_query_set_size_experiment(
    dataset: str,
    sizes: Sequence[int] = DEFAULT_SIZES,
    min_k: int = 3,
    max_k: int = 4,
    gamma: float = 0.5,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, object]:
    """Times of every algorithm for each query set size on one dataset."""
    graph = load_dataset(dataset, scale=scale)
    times: Dict[str, Dict[int, float]] = {}
    for size in sizes:
        queries = generate_random_queries(
            graph, size, min_k=min_k, max_k=max_k, seed=seed
        )
        runs = compare_algorithms(graph, queries, algorithms, gamma=gamma)
        for run in runs.values():
            times.setdefault(run.display_name, {})[size] = run.seconds
    return {"dataset": dataset, "times": times}


def run_all(
    datasets: Sequence[str] | None = None, quick: bool = True, **kwargs
) -> List[Dict[str, object]]:
    names = list(datasets) if datasets else dataset_names(quick=quick)
    return [run_query_set_size_experiment(name, **kwargs) for name in names]


def main() -> None:  # pragma: no cover - CLI convenience
    for outcome in run_all(quick=True):
        print(format_series(
            outcome["times"], x_label="|Q|",
            title=f"Fig. 8 ({outcome['dataset']}) — time (s) vs. query set size",
        ))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
