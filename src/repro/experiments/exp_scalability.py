"""Exp-5 (Fig. 11) — scalability when varying the graph size.

The paper samples 20 %–100 % of the vertices of its two largest graphs
(Twitter-2010 and Friendster) and reports the processing time of the four
batch algorithms on the induced subgraphs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.datasets import load_dataset
from repro.experiments.harness import compare_algorithms
from repro.experiments.reporting import format_series
from repro.graph.sampling import sample_vertices
from repro.queries.generation import generate_random_queries

DEFAULT_FRACTIONS: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0)
DEFAULT_DATASETS: Sequence[str] = ("TW", "FS")
SCALABILITY_ALGORITHMS: Sequence[str] = ("basic", "basic+", "batch", "batch+")


def run_scalability_experiment(
    dataset: str = "TW",
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    num_queries: int = 30,
    min_k: int = 3,
    max_k: int = 4,
    gamma: float = 0.5,
    algorithms: Sequence[str] = SCALABILITY_ALGORITHMS,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, object]:
    """Times of the batch algorithms on vertex samples of one dataset."""
    full_graph = load_dataset(dataset, scale=scale)
    times: Dict[str, Dict[float, float]] = {}
    graph_sizes: Dict[float, int] = {}
    for fraction in fractions:
        graph = sample_vertices(full_graph, fraction, seed=seed)
        graph_sizes[fraction] = graph.num_edges
        try:
            queries = generate_random_queries(
                graph, num_queries, min_k=min_k, max_k=max_k, seed=seed
            )
        except ValueError:
            # Heavily sampled graphs can be too fragmented for the requested
            # batch size; skip the point rather than fail the sweep.
            continue
        runs = compare_algorithms(graph, queries, algorithms, gamma=gamma)
        for run in runs.values():
            times.setdefault(run.display_name, {})[fraction] = run.seconds
    return {"dataset": dataset, "times": times, "graph_edges": graph_sizes}


def run_all(
    datasets: Sequence[str] = DEFAULT_DATASETS, **kwargs
) -> List[Dict[str, object]]:
    return [run_scalability_experiment(name, **kwargs) for name in datasets]


def main() -> None:  # pragma: no cover - CLI convenience
    for outcome in run_all():
        print(format_series(
            outcome["times"], x_label="vertex fraction",
            title=f"Fig. 11 ({outcome['dataset']}) — time (s) vs. graph size",
        ))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
