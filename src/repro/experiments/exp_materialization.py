"""Fig. 3(c) — enumeration cost vs. retrieving materialised results.

The observation motivating the whole paper: if the HC-s-t paths of a query
were already materialised, retrieving and scanning them is orders of
magnitude cheaper than enumerating them, so sharing materialised HC-s path
results across queries is worth the bookkeeping.  The experiment times, per
dataset, (a) the average per-query enumeration time of the BasicEnum+
baseline and (b) the average time to scan the same result paths once they
are materialised.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.batch.basic_enum import BasicEnum
from repro.experiments.datasets import dataset_names, load_dataset
from repro.experiments.reporting import format_table
from repro.queries.generation import generate_random_queries


def run_materialization_experiment(
    dataset: str,
    num_queries: int = 20,
    min_k: int = 3,
    max_k: int = 4,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, object]:
    """Average per-query enumeration time vs. materialised-scan time."""
    graph = load_dataset(dataset, scale=scale)
    queries = generate_random_queries(
        graph, num_queries, min_k=min_k, max_k=max_k, seed=seed
    )

    algorithm = BasicEnum(graph, optimize_search_order=True)
    started = time.perf_counter()
    result = algorithm.run(queries)
    enumerate_seconds = time.perf_counter() - started

    # "Materialise" = keep the result paths; "retrieve" = scan every vertex
    # of every path once, which is what a downstream consumer would pay.
    materialized = [result.paths_at(position) for position in range(len(queries))]
    started = time.perf_counter()
    scanned_vertices = 0
    for paths in materialized:
        for path in paths:
            for _vertex in path:
                scanned_vertices += 1
    scan_seconds = time.perf_counter() - started

    per_query_enumerate = enumerate_seconds / len(queries)
    per_query_scan = scan_seconds / len(queries)
    return {
        "dataset": dataset,
        "enumerate (s/query)": per_query_enumerate,
        "materialized scan (s/query)": per_query_scan,
        "ratio": per_query_enumerate / max(per_query_scan, 1e-9),
        "paths": result.total_paths(),
        "scanned_vertices": scanned_vertices,
    }


def run_all(
    datasets: Sequence[str] | None = None, quick: bool = True, **kwargs
) -> List[Dict[str, object]]:
    names = list(datasets) if datasets else dataset_names(quick=quick)
    return [run_materialization_experiment(name, **kwargs) for name in names]


def main() -> None:  # pragma: no cover - CLI convenience
    rows = [
        {key: (f"{value:.6f}" if isinstance(value, float) else value)
         for key, value in row.items()}
        for row in run_all(quick=False)
    ]
    print(format_table(rows, title="Fig. 3(c) — enumeration vs. materialised retrieval"))


if __name__ == "__main__":  # pragma: no cover
    main()
