"""Shared experiment machinery: timed algorithm runs and comparisons."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.batch.engine import ALGORITHMS, BatchQueryEngine
from repro.batch.results import BatchResult
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery
from repro.utils.validation import require

#: The algorithms compared throughout the paper's figures 7, 8 and 11.
DEFAULT_ALGORITHMS: Sequence[str] = ("pathenum", "basic", "basic+", "batch", "batch+")

#: Display names used by the paper (keyed by engine algorithm name).
DISPLAY_NAMES: Dict[str, str] = {
    "pathenum": "PathEnum",
    "basic": "BasicEnum",
    "basic+": "BasicEnum+",
    "batch": "BatchEnum",
    "batch+": "BatchEnum+",
    "dksp": "DkSP",
    "onepass": "OnePass",
}


@dataclass
class AlgorithmRun:
    """One timed execution of one algorithm on one workload."""

    algorithm: str
    seconds: float
    total_paths: int
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    num_clusters: int = 0
    num_shared_nodes: int = 0
    timed_out: bool = False

    @property
    def display_name(self) -> str:
        return DISPLAY_NAMES.get(self.algorithm, self.algorithm)


def run_algorithm(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    algorithm: str,
    gamma: float = 0.5,
    timeout_seconds: Optional[float] = None,
) -> AlgorithmRun:
    """Run ``algorithm`` on the workload and record wall-clock time.

    ``timeout_seconds`` mirrors the paper's 10,000 s "OT" cut-off: it is a
    *reporting* threshold (the run is not interrupted, only flagged) so the
    result counts stay comparable across algorithms.
    """
    require(algorithm in ALGORITHMS, f"unknown algorithm {algorithm!r}")
    engine = BatchQueryEngine(graph, algorithm=algorithm, gamma=gamma)
    started = time.perf_counter()
    result: BatchResult = engine.run(queries)
    elapsed = time.perf_counter() - started
    return AlgorithmRun(
        algorithm=algorithm,
        seconds=elapsed,
        total_paths=result.total_paths(),
        stage_seconds=result.stage_timer.totals,
        num_clusters=result.sharing.num_clusters,
        num_shared_nodes=result.sharing.num_shared_nodes,
        timed_out=timeout_seconds is not None and elapsed > timeout_seconds,
    )


def compare_algorithms(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    gamma: float = 0.5,
    timeout_seconds: Optional[float] = None,
) -> Dict[str, AlgorithmRun]:
    """Run several algorithms on the same workload.

    All runs also cross-check that every algorithm returned the same number
    of result paths — a cheap consistency guard that has caught real bugs
    during development (full path-set equality is covered by the tests).
    """
    runs: Dict[str, AlgorithmRun] = {}
    for algorithm in algorithms:
        runs[algorithm] = run_algorithm(
            graph, queries, algorithm, gamma=gamma, timeout_seconds=timeout_seconds
        )
    path_counts = {run.total_paths for run in runs.values()}
    require(
        len(path_counts) == 1,
        f"algorithms disagree on the total number of result paths: "
        f"{ {name: run.total_paths for name, run in runs.items()} }",
    )
    return runs
