"""Regenerate every table and figure of the paper in one run.

``python -m repro.experiments.run_all`` prints, in order: Table I, Fig. 3(c)
and Figs. 7-13, using the synthetic dataset suite.  ``--quick`` restricts
the per-dataset experiments to the four-dataset quick subset, and
``--queries`` / ``--scale`` rescale the workloads.

The output of this script (with default arguments) is what EXPERIMENTS.md
records as the "measured" columns.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.experiments import (
    datasets,
    exp_decomposition,
    exp_gamma,
    exp_ksp,
    exp_materialization,
    exp_num_paths,
    exp_query_set_size,
    exp_scalability,
    exp_similarity,
)
from repro.experiments.reporting import format_series, format_table


def _float_rows(rows):
    return [
        {key: (f"{value:.4f}" if isinstance(value, float) else value)
         for key, value in row.items()}
        for row in rows
    ]


def run_everything(quick: bool = True, num_queries: int = 24, scale: float = 1.0) -> None:
    """Run all experiments and print their tables/series."""
    names: Sequence[str] = datasets.dataset_names(quick=quick)

    print("=" * 70)
    print(format_table(datasets.dataset_table(scale=scale),
                       title="Table I — dataset statistics (synthetic stand-ins)"))

    print("=" * 70)
    print(format_table(
        _float_rows(exp_materialization.run_all(datasets=names, num_queries=num_queries, scale=scale)),
        title="Fig. 3(c) — enumeration vs. materialised retrieval (s/query)",
    ))

    print("=" * 70)
    for outcome in exp_similarity.run_all(datasets=names, num_queries=num_queries, scale=scale):
        print(format_series(outcome["times"], x_label="similarity",
                            title=f"Fig. 7 ({outcome['dataset']}) — time (s) vs. query similarity"))
        print(format_series(outcome["speedups"], x_label="similarity", value_format="{:.2f}",
                            title=f"Fig. 7 ({outcome['dataset']}) — speedup"))

    print("=" * 70)
    for outcome in exp_query_set_size.run_all(datasets=names, scale=scale):
        print(format_series(outcome["times"], x_label="|Q|",
                            title=f"Fig. 8 ({outcome['dataset']}) — time (s) vs. query set size"))

    print("=" * 70)
    print(format_table(
        _float_rows(exp_decomposition.run_all(datasets=names, num_queries=num_queries, scale=scale)),
        title="Fig. 9 — BatchEnum+ processing time decomposition (s)",
    ))

    print("=" * 70)
    gamma_outcomes = exp_gamma.run_all(datasets=names, num_queries=num_queries, scale=scale)
    print(format_series({o["dataset"]: o["times"] for o in gamma_outcomes}, x_label="gamma",
                        title="Fig. 10 — BatchEnum+ time (s) vs. γ"))

    print("=" * 70)
    for outcome in exp_scalability.run_all(num_queries=num_queries, scale=scale):
        print(format_series(outcome["times"], x_label="fraction",
                            title=f"Fig. 11 ({outcome['dataset']}) — time (s) vs. graph size"))

    print("=" * 70)
    print(format_table(
        _float_rows(exp_ksp.run_all(datasets=names, num_queries=max(4, num_queries // 3), scale=scale)),
        title="Fig. 12 — adapted KSP algorithms vs. BatchEnum+ (s)",
    ))

    print("=" * 70)
    path_outcomes = exp_num_paths.run_all(datasets=names, num_queries=num_queries, scale=scale)
    print(format_series({o["dataset"]: o["average_paths"] for o in path_outcomes},
                        x_label="k", value_format="{:.1f}",
                        title="Fig. 13 — average number of HC-s-t paths vs. k"))


def main() -> None:  # pragma: no cover - CLI convenience
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run every experiment on all twelve datasets")
    parser.add_argument("--queries", type=int, default=24,
                        help="batch size used by the workload-based experiments")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (1.0 = default suite)")
    arguments = parser.parse_args()
    run_everything(quick=not arguments.full, num_queries=arguments.queries,
                   scale=arguments.scale)


if __name__ == "__main__":  # pragma: no cover
    main()
