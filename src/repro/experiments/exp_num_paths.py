"""Exp-7 (Fig. 13) — average number of HC-s-t paths when varying k.

For each dataset and each hop constraint k the experiment generates random
queries and reports the average number of result paths per query; the
paper observes exponential growth with k.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.batch.batch_enum import BatchEnum
from repro.experiments.datasets import dataset_names, load_dataset
from repro.experiments.reporting import format_series
from repro.queries.generation import generate_random_queries

DEFAULT_HOPS: Sequence[int] = (3, 4, 5)


def run_num_paths_experiment(
    dataset: str,
    hop_constraints: Sequence[int] = DEFAULT_HOPS,
    num_queries: int = 20,
    gamma: float = 0.5,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, object]:
    """Average number of HC-s-t paths per query for each hop constraint."""
    graph = load_dataset(dataset, scale=scale)
    averages: Dict[int, float] = {}
    for k in hop_constraints:
        queries = generate_random_queries(graph, num_queries, min_k=k, max_k=k, seed=seed)
        result = BatchEnum(graph, gamma=gamma, optimize_search_order=True).run(queries)
        averages[k] = result.total_paths() / len(queries)
    return {"dataset": dataset, "average_paths": averages}


def run_all(
    datasets: Sequence[str] | None = None, quick: bool = True, **kwargs
) -> List[Dict[str, object]]:
    names = list(datasets) if datasets else dataset_names(quick=quick)
    return [run_num_paths_experiment(name, **kwargs) for name in names]


def main() -> None:  # pragma: no cover - CLI convenience
    outcomes = run_all(quick=False)
    series = {outcome["dataset"]: outcome["average_paths"] for outcome in outcomes}
    print(format_series(series, x_label="k", value_format="{:.1f}",
                        title="Fig. 13 — average number of HC-s-t paths vs. k"))


if __name__ == "__main__":  # pragma: no cover
    main()
