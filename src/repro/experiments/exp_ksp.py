"""Exp-6 (Fig. 12) — comparison with adapted k-shortest-path algorithms.

DkSP and OnePass are adapted to HC-s-t path enumeration (similarity /
overlap constraints dropped, generation until the hop constraint) and
compared against BatchEnum+ on every dataset.  The paper reports a gap of
more than two orders of magnitude; the same ordering holds here, so the
workload is deliberately small to keep the KSP baselines from dominating
the suite's runtime.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.datasets import dataset_names, load_dataset
from repro.experiments.harness import compare_algorithms
from repro.experiments.reporting import format_table
from repro.queries.generation import generate_random_queries

KSP_ALGORITHMS: Sequence[str] = ("dksp", "onepass", "batch+")


def run_ksp_experiment(
    dataset: str,
    num_queries: int = 10,
    min_k: int = 3,
    max_k: int = 4,
    gamma: float = 0.5,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, object]:
    """Times of DkSP, OnePass and BatchEnum+ on one dataset."""
    graph = load_dataset(dataset, scale=scale)
    queries = generate_random_queries(
        graph, num_queries, min_k=min_k, max_k=max_k, seed=seed
    )
    runs = compare_algorithms(graph, queries, KSP_ALGORITHMS, gamma=gamma)
    row: Dict[str, object] = {"dataset": dataset}
    for run in runs.values():
        row[run.display_name] = run.seconds
    batch_seconds = runs["batch+"].seconds
    row["DkSP / BatchEnum+"] = runs["dksp"].seconds / max(batch_seconds, 1e-9)
    row["OnePass / BatchEnum+"] = runs["onepass"].seconds / max(batch_seconds, 1e-9)
    return row


def run_all(
    datasets: Sequence[str] | None = None, quick: bool = True, **kwargs
) -> List[Dict[str, object]]:
    names = list(datasets) if datasets else dataset_names(quick=quick)
    return [run_ksp_experiment(name, **kwargs) for name in names]


def main() -> None:  # pragma: no cover - CLI convenience
    rows = [
        {key: (f"{value:.4f}" if isinstance(value, float) else value)
         for key, value in row.items()}
        for row in run_all(quick=False)
    ]
    print(format_table(rows, title="Fig. 12 — adapted KSP algorithms vs. BatchEnum+ (s)"))


if __name__ == "__main__":  # pragma: no cover
    main()
