"""Experiment harness reproducing the paper's evaluation (Section V).

Every table and figure has a dedicated module; each module exposes a
``run_*`` function returning plain data (rows / series) plus a ``main``
entry point that prints the same rows the paper reports.  The benchmark
suite under ``benchmarks/`` calls the same functions with reduced scales.
"""

from repro.experiments.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    dataset_table,
)
from repro.experiments.harness import (
    AlgorithmRun,
    run_algorithm,
    compare_algorithms,
    DEFAULT_ALGORITHMS,
)
from repro.experiments.reporting import format_table, format_series

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "dataset_table",
    "AlgorithmRun",
    "run_algorithm",
    "compare_algorithms",
    "DEFAULT_ALGORITHMS",
    "format_table",
    "format_series",
]
