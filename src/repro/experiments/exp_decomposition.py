"""Exp-3 (Fig. 9) — processing time decomposition of BatchEnum+.

Reports, per dataset, the wall-clock seconds spent in the four stages
BuildIndex, ClusterQuery, IdentifySubquery and Enumeration of a BatchEnum+
run; the paper's finding is that Enumeration dominates on every graph.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.batch.batch_enum import BatchEnum
from repro.experiments.datasets import dataset_names, load_dataset
from repro.experiments.reporting import format_table
from repro.queries.generation import generate_similar_workload

STAGES: Sequence[str] = ("BuildIndex", "ClusterQuery", "IdentifySubquery", "Enumeration")


def run_decomposition_experiment(
    dataset: str,
    num_queries: int = 30,
    similarity: float = 0.5,
    min_k: int = 3,
    max_k: int = 4,
    gamma: float = 0.5,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, object]:
    """Stage decomposition of one BatchEnum+ run on one dataset."""
    graph = load_dataset(dataset, scale=scale)
    queries, _ = generate_similar_workload(
        graph, num_queries, target_similarity=similarity,
        min_k=min_k, max_k=max_k, seed=seed, measure=False,
    )
    result = BatchEnum(graph, gamma=gamma, optimize_search_order=True).run(queries)
    row: Dict[str, object] = {"dataset": dataset}
    for stage in STAGES:
        row[stage] = result.stage_seconds(stage)
    row["total"] = result.total_time
    return row


def run_all(
    datasets: Sequence[str] | None = None, quick: bool = True, **kwargs
) -> List[Dict[str, object]]:
    names = list(datasets) if datasets else dataset_names(quick=quick)
    return [run_decomposition_experiment(name, **kwargs) for name in names]


def main() -> None:  # pragma: no cover - CLI convenience
    rows = [
        {key: (f"{value:.4f}" if isinstance(value, float) else value)
         for key, value in row.items()}
        for row in run_all(quick=False)
    ]
    print(format_table(rows, title="Fig. 9 — BatchEnum+ processing time decomposition (s)"))


if __name__ == "__main__":  # pragma: no cover
    main()
