"""Algorithm 1 — ``BasicEnum`` / ``BasicEnum+`` and the PathEnum baseline.

``BasicEnum`` is the straightforward batch baseline: build the distance
index for all sources and targets at once with multi-source BFS, then run
the bidirectional PathEnum enumeration for each query independently on top
of the shared index.  ``BasicEnum+`` additionally enables PathEnum's
search-order optimisation (adaptive forward/backward budget split).

``run_pathenum_baseline`` processes each query completely independently —
including its own per-query index construction — which is how the paper
runs the original PathEnum as a competitor.

Both runners are implemented as *fragment generators* (``iter_run`` /
``iter_pathenum_baseline``) that yield one ``{position: paths}`` fragment
per completed query, which is what the engine's streaming front-end drains;
the blocking ``run`` entry points collect the same generator to completion.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.batch.results import (
    BatchResult,
    FragmentStream,
    SharingStats,
    drain,
    per_query_fragments,
)
from repro.enumeration.path_enum import PathEnum
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery
from repro.queries.workload import QueryWorkload
from repro.utils.timer import StageTimer


class BasicEnum:
    """Batch baseline: shared index, independent per-query enumeration.

    ``kernel`` is forwarded to the underlying :class:`PathEnum` — see
    :mod:`repro.enumeration.kernels` for the selection semantics.
    """

    def __init__(
        self,
        graph: DiGraph,
        optimize_search_order: bool = False,
        kernel: str = "python",
    ) -> None:
        self.graph = graph
        self.optimize_search_order = optimize_search_order
        self.kernel = kernel

    @property
    def name(self) -> str:
        return "BasicEnum+" if self.optimize_search_order else "BasicEnum"

    def run(self, queries: Sequence[HCSTQuery]) -> BatchResult:
        """Process the batch and return a :class:`BatchResult`."""
        return drain(self.iter_run(queries))

    def iter_run(
        self,
        queries: Sequence[HCSTQuery],
        workload: Optional[QueryWorkload] = None,
    ) -> FragmentStream:
        """Fragment generator: one ``{position: paths}`` yield per query.

        The shared artefacts (multi-source BFS index, CSR snapshot) are
        still built once for the whole batch before the first fragment is
        produced; only the per-query enumerations are interleaved with the
        consumer.  A caller that already owns a covering workload (the
        query planner, or a worker that received a shipped index) passes it
        via ``workload`` so the index is not rebuilt.
        """
        if workload is None:
            workload = QueryWorkload(self.graph, queries, stage_timer=StageTimer())
        stage_timer = workload.stage_timer
        result = BatchResult(
            queries=list(queries),
            stage_timer=stage_timer,
            sharing=SharingStats(num_clusters=len(queries)),
            algorithm=self.name,
        )
        index = workload.index  # "BuildIndex" stage (multi-source BFS)
        # Pack the shared CSR snapshot up front so the per-query loop below
        # (and every other algorithm run on this graph) reads adjacency from
        # the same flat arrays; attribute the packing to BuildIndex.
        with stage_timer.stage("BuildIndex"):
            self.graph.csr_snapshot()
        enumerator = PathEnum(
            self.graph,
            index=index,
            optimize_search_order=self.optimize_search_order,
            kernel=self.kernel,
        )
        with stage_timer.stage("Enumeration"):
            for position, query in enumerate(queries):
                result.record(position, enumerator.enumerate(query))
                yield {position: result.paths_by_position[position]}
        return result


def run_pathenum_baseline(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    optimize_search_order: bool = False,
    kernel: str = "python",
) -> BatchResult:
    """Process each query independently with its own per-query index."""
    return drain(
        iter_pathenum_baseline(graph, queries, optimize_search_order, kernel)
    )


def iter_pathenum_baseline(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    optimize_search_order: bool = False,
    kernel: str = "python",
) -> FragmentStream:
    """Fragment generator for the per-query PathEnum baseline."""

    def enumerate_one(query: HCSTQuery):
        enumerator = PathEnum(
            graph, optimize_search_order=optimize_search_order, kernel=kernel
        )
        return enumerator.enumerate(query)

    return per_query_fragments(queries, enumerate_one, "PathEnum")
