"""Result cache ``R`` for materialised HC-s path queries (Algorithm 4).

``BatchEnum`` materialises the results of each HC-s path query node once
and reuses them from this cache.  A node's results are only needed until
every consumer (out-neighbour in the query sharing graph Ψ) has been
processed, so the cache ref-counts consumers and evicts a node's paths as
soon as the last consumer is done — this is the eviction of Algorithm 4
lines 14-16 and keeps the memory footprint bounded by the "active frontier"
of Ψ rather than its full size.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.enumeration.paths import Path
from repro.utils.validation import require


class ResultCache:
    """Ref-counted cache of HC-s path query results.

    Readers receive an immutable ``tuple`` of paths: a spliced provider
    result is read by every later consumer, so handing out the internal
    list would let one consumer silently corrupt all the others.
    """

    def __init__(self) -> None:
        self._paths: Dict[Hashable, Tuple[Path, ...]] = {}
        self._remaining_consumers: Dict[Hashable, int] = {}
        self.peak_entries = 0
        self.reuse_count = 0
        self.evicted_count = 0

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #
    def put(self, node: Hashable, paths: Sequence[Path], consumers: int) -> None:
        """Store ``paths`` for ``node`` which will be read by ``consumers``
        later nodes.  A node with zero consumers is not stored at all."""
        require(node not in self._paths, f"node {node!r} is already cached")
        if consumers <= 0:
            return
        self._paths[node] = tuple(paths)
        self._remaining_consumers[node] = consumers
        self.peak_entries = max(self.peak_entries, len(self._paths))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __contains__(self, node: Hashable) -> bool:
        return node in self._paths

    def get(self, node: Hashable) -> Tuple[Path, ...]:
        """Return the cached paths of ``node`` as an immutable tuple
        (raises ``KeyError`` if the node was never cached or has already
        been evicted)."""
        if node not in self._paths:
            raise KeyError(f"node {node!r} is not in the result cache")
        self.reuse_count += 1
        return self._paths[node]

    def peek(self, node: Hashable) -> Optional[Tuple[Path, ...]]:
        """Like :meth:`get` but returns ``None`` instead of raising and does
        not count as a reuse."""
        return self._paths.get(node)

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #
    def release(self, node: Hashable) -> None:
        """Signal that one consumer of ``node`` has finished.

        When the last consumer releases the node its paths are dropped.
        Releasing a node that is not cached is a no-op (it may have had no
        consumers in the first place).
        """
        if node not in self._remaining_consumers:
            return
        self._remaining_consumers[node] -= 1
        if self._remaining_consumers[node] <= 0:
            del self._remaining_consumers[node]
            del self._paths[node]
            self.evicted_count += 1

    @property
    def live_entries(self) -> int:
        return len(self._paths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(live={self.live_entries}, peak={self.peak_entries}, "
            f"reused={self.reuse_count}, evicted={self.evicted_count})"
        )
