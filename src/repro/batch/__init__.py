"""Batch HC-s-t path query processing — the paper's core contribution.

* :mod:`repro.batch.basic_enum` — Algorithm 1 (``BasicEnum``/``BasicEnum+``):
  shared index, independent per-query enumeration.
* :mod:`repro.batch.clustering` — Algorithm 2 (``ClusterQuery``).
* :mod:`repro.batch.detection` — Algorithm 3 (``DetectCommonQuery``) and the
  query sharing graph Ψ.
* :mod:`repro.batch.batch_enum` — Algorithm 4 (``BatchEnum``/``BatchEnum+``):
  shared enumeration with materialised HC-s path queries.
* :mod:`repro.batch.engine` — the :class:`BatchQueryEngine` facade, with a
  blocking ``run``, a streaming ``stream``/:func:`stream_enumerate`
  front-end that flushes ``(batch_position, paths)`` tuples as shards,
  clusters or queries complete, and an ``explain()`` API returning the
  execution plan without running it.
* :mod:`repro.batch.planner` — the plan phase of the plan→execute split:
  :class:`QueryPlanner` emits an :class:`ExecutionPlan` (shard
  assignments, cost-model-resolved worker count, index ship-vs-rebuild
  decision) that both the sequential and the parallel paths consume.
* :mod:`repro.batch.executor` — plan-driven sharded parallel execution:
  shards are distributed across a process pool (the parent-built index
  optionally shipped once via the pool initializer, or per micro-batch
  through a persistent :class:`WorkerPool`), shard futures are drained as
  they complete, and result fragments are keyed by batch position (plus
  the shared reorder-buffer flushing core used by both the sequential and
  the parallel streaming paths).
* :mod:`repro.batch.service` — continuous ingestion: an
  :class:`IngestionService` (module-level :func:`serve`) admits queries
  into micro-batches under an :class:`AdmissionPolicy` while earlier
  batches are in flight, resolving per-query :class:`QueryTicket` handles
  as results stream out.
"""

from repro.batch.results import BatchResult, SharingStats, drain
from repro.batch.cache import ResultCache
from repro.batch.sharing_graph import QuerySharingGraph, QueryNode
from repro.batch.clustering import cluster_queries
from repro.batch.detection import detect_common_queries, DetectionOutcome
from repro.batch.basic_enum import BasicEnum, run_pathenum_baseline
from repro.batch.batch_enum import BatchEnum
from repro.batch.engine import (
    ALGORITHMS,
    BatchQueryEngine,
    stream_enumerate,
    validate_num_workers,
)
from repro.batch.planner import (
    CostModel,
    ExecutionPlan,
    QueryPlanner,
    ShardPlan,
)
from repro.batch.executor import (
    WorkerPool,
    flush_fragments,
    run_parallel,
    stream_parallel,
)
from repro.batch.service import (
    AdmissionPolicy,
    IngestionService,
    QueryTicket,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceStats,
    serve,
)

__all__ = [
    "run_parallel",
    "stream_parallel",
    "stream_enumerate",
    "flush_fragments",
    "WorkerPool",
    "AdmissionPolicy",
    "IngestionService",
    "QueryTicket",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ServiceStats",
    "serve",
    "validate_num_workers",
    "CostModel",
    "ExecutionPlan",
    "QueryPlanner",
    "ShardPlan",
    "drain",
    "BatchResult",
    "SharingStats",
    "ResultCache",
    "QuerySharingGraph",
    "QueryNode",
    "cluster_queries",
    "detect_common_queries",
    "DetectionOutcome",
    "BasicEnum",
    "run_pathenum_baseline",
    "BatchEnum",
    "BatchQueryEngine",
    "ALGORITHMS",
]
