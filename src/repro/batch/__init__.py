"""Batch HC-s-t path query processing — the paper's core contribution.

* :mod:`repro.batch.basic_enum` — Algorithm 1 (``BasicEnum``/``BasicEnum+``):
  shared index, independent per-query enumeration.
* :mod:`repro.batch.clustering` — Algorithm 2 (``ClusterQuery``).
* :mod:`repro.batch.detection` — Algorithm 3 (``DetectCommonQuery``) and the
  query sharing graph Ψ.
* :mod:`repro.batch.batch_enum` — Algorithm 4 (``BatchEnum``/``BatchEnum+``):
  shared enumeration with materialised HC-s path queries.
* :mod:`repro.batch.engine` — the :class:`BatchQueryEngine` facade.
* :mod:`repro.batch.executor` — sharded parallel execution
  (``num_workers > 1``): clusters are distributed across a process pool and
  result fragments are merged deterministically by batch position.
"""

from repro.batch.results import BatchResult, SharingStats
from repro.batch.cache import ResultCache
from repro.batch.sharing_graph import QuerySharingGraph, QueryNode
from repro.batch.clustering import cluster_queries
from repro.batch.detection import detect_common_queries, DetectionOutcome
from repro.batch.basic_enum import BasicEnum, run_pathenum_baseline
from repro.batch.batch_enum import BatchEnum
from repro.batch.engine import BatchQueryEngine, ALGORITHMS
from repro.batch.executor import run_parallel

__all__ = [
    "run_parallel",
    "BatchResult",
    "SharingStats",
    "ResultCache",
    "QuerySharingGraph",
    "QueryNode",
    "cluster_queries",
    "detect_common_queries",
    "DetectionOutcome",
    "BasicEnum",
    "run_pathenum_baseline",
    "BatchEnum",
    "BatchQueryEngine",
    "ALGORITHMS",
]
