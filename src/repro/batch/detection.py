"""Algorithm 3 — ``DetectCommonQuery``: dominating HC-s path query detection.

For one cluster of HC-s-t path queries and one direction (forward on ``G``
or backward on ``Gr``), the detection simulates the first levels of every
query's HC-s path enumeration as a joint frontier expansion.  Whenever
several queries reach the same vertex ``v`` with the same remaining hop
budget ``b``, the continuation of all of them is the same set of paths — the
HC-s path query ``q_{v,b}`` — so a single *provider* node is recorded in the
query sharing graph Ψ and every participating query becomes its consumer.
Additionally, when a query's frontier reaches a vertex ``v`` on which a
HC-s path query with a hop budget at least as large has already been
identified (``MQ[v]``), the existing query is reused as the provider
(cross-budget sharing, the ``q_{v12,2}`` / ``q_{v12,1}`` example of
Fig. 5(b)).

Differences from the paper's pseudo-code, for correctness of the later
materialisation step:

* ``MQ[v]`` only ever stores HC-s path queries *rooted at* ``v`` — a
  provider can only be spliced into another enumeration at the vertex it
  starts from, so recording pass-through queries in ``MQ`` (Algorithm 3
  line 15 when the single query is rooted elsewhere) would create edges
  that the enumeration could never use.
* an edge is only added when it keeps Ψ acyclic and when the provider's
  hop budget covers the consumer's remaining need; otherwise the frontier
  simply keeps extending.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.batch.sharing_graph import QueryNode, QuerySharingGraph
from repro.bfs.distance_index import DistanceIndex
from repro.graph.digraph import DiGraph
from repro.queries.query import Direction, HCSTQuery, HCsPathQuery
from repro.utils.validation import require


@dataclass
class DetectionOutcome:
    """Result of running the detection for one cluster and one direction."""

    direction: Direction
    sharing_graph: QuerySharingGraph
    root_by_position: Dict[int, HCsPathQuery]
    budget_by_position: Dict[int, int]
    served_queries: Dict[HCsPathQuery, Set[int]]
    queries_by_position: Dict[int, HCSTQuery]

    @property
    def num_shared_nodes(self) -> int:
        """HC-s path query nodes whose results are reused at least twice."""
        count = 0
        for node in self.sharing_graph.hc_s_path_nodes():
            if len(self.sharing_graph.consumers_of(node)) >= 2:
                count += 1
        return count

    def endpoint_distance(self, position: int, vertex: int) -> float:
        """Distance from ``vertex`` to the query's *other* endpoint.

        Forward detection prunes with the distance to the target; backward
        detection with the distance from the source.
        """
        query = self.queries_by_position[position]
        if self.direction is Direction.FORWARD:
            return self.index.dist_to(query.t, vertex)
        return self.index.dist_from(query.s, vertex)

    # The index is attached after construction (kept out of the dataclass
    # fields to avoid repr noise); the need cache memoises admissibility.
    index: DistanceIndex = field(default=None, repr=False)  # type: ignore[assignment]
    _need_cache: Dict[HCsPathQuery, Dict[int, float]] = field(
        default_factory=dict, repr=False
    )
    _constants_cache: Dict[HCsPathQuery, list] = field(
        default_factory=dict, repr=False
    )

    def slack_constants(self, node: HCsPathQuery) -> list:
        """Unique ``(other endpoint, budget + 1 - k)`` pairs of the queries
        served by ``node`` — duplicates (same endpoint, same slack) collapse
        to one entry so batches with repeated queries pay for one check."""
        constants = self._constants_cache.get(node)
        if constants is None:
            forward = self.direction is Direction.FORWARD
            unique = set()
            for position in self.served_queries.get(node, ()):
                query = self.queries_by_position[position]
                endpoint = query.t if forward else query.s
                unique.add(
                    (endpoint, self.budget_by_position[position] + 1 - query.k)
                )
            constants = sorted(unique)
            self._constants_cache[node] = constants
        return constants

    def need(self, node: HCsPathQuery, vertex: int) -> float:
        """Minimum remaining hop budget ``node`` must still have for an
        extension onto ``vertex`` to be useful to any query it serves.

        For a served query ``q`` whose root HC-s path budget is ``B`` the
        extension onto ``vertex`` with ``r`` hops left consumes ``B - r``
        hops of the half-budget plus one more hop, and the remainder of the
        hop constraint must cover the distance from ``vertex`` to the
        query's other endpoint; rearranging gives the per-query need
        ``dist + B + 1 - q.k`` and the node's need is the minimum over its
        served queries.  Memoised per (node, vertex); the detection
        invalidates a node's entries whenever its served set grows.
        """
        per_node = self._need_cache.get(node)
        if per_node is None:
            per_node = {}
            self._need_cache[node] = per_node
        value = per_node.get(vertex)
        if value is None:
            distances = (
                self.index.to_target
                if self.direction is Direction.FORWARD
                else self.index.from_source
            )
            value = float("inf")
            for endpoint, constant in self.slack_constants(node):
                distance = distances[endpoint].get(vertex)
                if distance is not None and distance + constant < value:
                    value = distance + constant
            per_node[vertex] = value
        return value

    def invalidate_need(self, node: HCsPathQuery) -> None:
        """Drop the memoised needs of ``node`` (its served set changed)."""
        self._need_cache.pop(node, None)
        self._constants_cache.pop(node, None)

    def admissible(
        self, neighbor: int, remaining_budget: int, node: HCsPathQuery
    ) -> bool:
        """Lemma 3.1 style pruning for shared enumerations.

        ``node`` is about to extend to ``neighbor`` while ``remaining_budget``
        hops of its own budget are left.  The extension is admissible iff at
        least one query served by ``node`` could still complete a result
        path through ``neighbor``.
        """
        return self.need(node, neighbor) <= remaining_budget


#: Adjacency backends :func:`detect_common_queries` can walk.  ``csr`` (the
#: default) reads the shared, immutable CSR snapshot — the same flat arrays
#: the enumeration hot loops scan — so detection no longer touches the
#: mutable ``DiGraph`` lists; ``digraph`` is the original implementation,
#: kept so the differential tests can pin the two backends to each other.
DETECTION_BACKENDS = ("csr", "digraph")


def detect_common_queries(
    graph: DiGraph,
    queries_by_position: Dict[int, HCSTQuery],
    direction: Direction,
    index: DistanceIndex,
    budget_by_position: Dict[int, int],
    max_depth: Optional[int] = None,
    backend: str = "csr",
) -> DetectionOutcome:
    """Run Algorithm 3 for one cluster in one direction.

    Parameters
    ----------
    graph:
        The data graph ``G`` (the reverse direction is handled by walking
        in-neighbours, so ``Gr`` is never materialised).
    queries_by_position:
        The cluster's queries keyed by their position in the batch.
    direction:
        FORWARD detects sharing among the source-side HC-s path queries,
        BACKWARD among the target-side ones.
    index:
        Batch distance index (used for admissibility pruning).
    budget_by_position:
        Hop budget of each query's root HC-s path query in this direction
        (``⌈k/2⌉`` / ``⌊k/2⌋`` by default, possibly rebalanced by the "+"
        search-order optimiser).
    max_depth:
        Cap on how many hops beyond the root vertices the joint frontier is
        expanded.  The paper expands to the full half-budget; in pure Python
        the expansion itself costs a noticeable fraction of the enumeration
        it is trying to save, and almost all of the sharing value sits in
        the first hops (queries with identical or adjacent endpoints), so
        the engine defaults to a depth of 2.  ``None`` means unbounded,
        exactly as in Algorithm 3.
    backend:
        Which adjacency the joint frontier expansion walks: ``"csr"`` (the
        default) scans the graph's cached CSR snapshot, ``"digraph"`` the
        mutable adjacency lists.  Both store neighbours sorted ascending,
        so the resulting Ψ is identical either way (pinned by the
        differential tests).
    """
    require(bool(queries_by_position), "cluster must contain at least one query")
    require(
        backend in DETECTION_BACKENDS,
        f"unknown detection backend {backend!r}; expected one of "
        f"{DETECTION_BACKENDS}",
    )
    forward = direction is Direction.FORWARD
    psi = QuerySharingGraph(direction)
    served: Dict[HCsPathQuery, Set[int]] = defaultdict(set)
    root_by_position: Dict[int, HCsPathQuery] = {}

    outcome = DetectionOutcome(
        direction=direction,
        sharing_graph=psi,
        root_by_position=root_by_position,
        budget_by_position=dict(budget_by_position),
        served_queries=served,
        queries_by_position=dict(queries_by_position),
    )
    outcome.index = index

    # ME: frontier entries per vertex -> list of (node, remaining budget).
    frontier: Dict[int, List[Tuple[HCsPathQuery, int]]] = defaultdict(list)
    # MQ: the HC-s path query rooted at a vertex with the largest budget.
    rooted_query: Dict[int, HCsPathQuery] = {}

    for position, query in queries_by_position.items():
        start = query.s if forward else query.t
        budget = budget_by_position[position]
        root = HCsPathQuery(start, budget, direction)
        psi.add_node(root)
        psi.add_edge(root, QueryNode(position))
        served[root].add(position)
        root_by_position[position] = root
        frontier[start].append((root, budget))

    if backend == "csr":
        adjacency = graph.csr_snapshot().adjacency_lists(forward)
        neighbors = adjacency.__getitem__
    else:
        neighbors = graph.out_neighbors if forward else graph.in_neighbors
    max_budget = max(budget_by_position.values(), default=0)
    min_budget_considered = 0 if max_depth is None else max(0, max_budget - max_depth)

    def propagate_served(node: HCsPathQuery, positions: Set[int]) -> None:
        """Add ``positions`` to ``node``'s served set and to every provider
        it (transitively) consumes from — their results flow into these
        queries as well, so their pruning must keep the relevant paths."""
        pending = [node]
        while pending:
            current = pending.pop()
            before = len(served[current])
            served[current] |= positions
            if len(served[current]) != before:
                outcome.invalidate_need(current)
            elif current is not node:
                continue
            for provider in psi.providers_of(current):
                if isinstance(provider, HCsPathQuery):
                    pending.append(provider)

    def try_reuse(provider: HCsPathQuery, consumer: HCsPathQuery, needed: int) -> bool:
        """Attach ``consumer`` to ``provider`` if the provider's budget covers
        ``needed`` hops and the edge keeps Ψ acyclic."""
        if provider is consumer or provider == consumer:
            return False
        if provider.budget < needed:
            return False
        if psi.would_create_cycle(provider, consumer):
            return False
        psi.add_edge(provider, consumer)
        propagate_served(provider, served[consumer])
        return True

    def extend(node: HCsPathQuery, vertex: int, remaining: int) -> None:
        """Propagate ``node``'s frontier from ``vertex`` with ``remaining``
        hops of budget left (Algorithm 3 lines 20-24)."""
        if remaining <= 0:
            return
        for neighbor in neighbors(vertex):
            if not outcome.admissible(neighbor, remaining, node):
                continue
            existing = rooted_query.get(neighbor)
            if existing is not None and try_reuse(existing, node, remaining - 1):
                continue
            if remaining - 1 >= 1:
                frontier[neighbor].append((node, remaining - 1))

    for budget in range(max_budget, min_budget_considered, -1):
        # Sharing can only be detected while at least two distinct queries
        # still have frontier entries; once a single query remains, further
        # expansion cannot discover new common HC-s path queries, so the
        # detection stops early (this keeps the "light-weight" promise for
        # batches of duplicated or fully-absorbed queries).
        active_nodes = {
            node for entries in frontier.values() for node, _ in entries
        }
        if len(active_nodes) <= 1:
            break

        # Collect, per vertex, the unique nodes whose frontier sits at this
        # remaining budget (Algorithm 3 lines 7-11).
        current_level: Dict[int, List[HCsPathQuery]] = {}
        for vertex in sorted(frontier):
            entries = frontier[vertex]
            matching: List[HCsPathQuery] = []
            seen_here: Set[HCsPathQuery] = set()
            rest: List[Tuple[HCsPathQuery, int]] = []
            for node, node_budget in entries:
                if node_budget == budget:
                    if node not in seen_here:
                        seen_here.add(node)
                        matching.append(node)
                else:
                    rest.append((node, node_budget))
            if matching:
                frontier[vertex] = rest
                current_level[vertex] = matching

        for vertex in sorted(current_level):
            nodes_here = current_level[vertex]
            rooted_here = [
                node
                for node in nodes_here
                if node.vertex == vertex and node.budget == budget
            ]
            existing = rooted_query.get(vertex)

            if len(nodes_here) == 1:
                node = nodes_here[0]
                if rooted_here:
                    # The node's own enumeration starts here.  An earlier
                    # (larger-budget) HC-s path query rooted at this vertex
                    # covers it entirely (same-source different-budget
                    # sharing); otherwise it becomes MQ[v] and extends.
                    if existing is not None and try_reuse(existing, node, budget):
                        continue
                    if existing is None or existing.budget < budget:
                        rooted_query[vertex] = node
                    extend(node, vertex, budget)
                else:
                    # A single query passing through: reuse MQ[v] if it
                    # covers the remaining need, otherwise keep extending.
                    if existing is not None and try_reuse(existing, node, budget):
                        continue
                    extend(node, vertex, budget)
                continue

            # Several queries meet here with the same remaining budget
            # (Algorithm 3 lines 16-19): choose or create the provider.
            all_positions: Set[int] = set()
            for node in nodes_here:
                all_positions |= served[node]

            if existing is not None and existing.budget >= budget:
                provider = existing
                newly_created = False
            elif rooted_here:
                provider = rooted_here[0]
                newly_created = False
                rooted_query[vertex] = provider
            else:
                provider = HCsPathQuery(vertex, budget, direction)
                psi.add_node(provider)
                newly_created = True
                rooted_query[vertex] = provider

            attached_all = True
            for node in nodes_here:
                if node is provider:
                    continue
                if not try_reuse(provider, node, budget):
                    # Extremely rare (cycle guard): fall back to extending
                    # this query on its own.
                    attached_all = False
                    extend(node, vertex, budget)
            propagate_served(provider, all_positions)

            if newly_created or (rooted_here and provider is rooted_here[0]):
                extend(provider, vertex, budget)
            # When the provider pre-existed, its own (earlier, larger
            # budget) extension already covered the deeper levels.
            del attached_all  # kept for readability of the fallback above

    return outcome
