"""Result containers and streaming-fragment scaffolding for batch runs.

Every batch runner in this package is written as a *fragment generator*: a
generator that yields ``{batch position: [paths]}`` dictionaries as units of
work (clusters, shards or single queries) complete, and whose generator
return value is the fully populated :class:`BatchResult`.  The blocking
``run`` entry points simply :func:`drain` such a generator, while the
streaming front-end (:meth:`repro.batch.engine.BatchQueryEngine.stream`)
forwards the fragments through a reorder buffer as they arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.enumeration.paths import Path, sort_paths
from repro.queries.query import HCSTQuery
from repro.utils.timer import StageTimer

#: One unit of streamed output: result paths keyed by batch position.
PathFragment = Dict[int, List[Path]]

#: A fragment generator: yields :data:`PathFragment` units as they complete
#: and returns the finished :class:`BatchResult` when exhausted.
FragmentStream = Generator[PathFragment, None, "BatchResult"]

#: The consumer-facing stream shape: ``(batch_position, paths)`` tuples,
#: returning the finished :class:`BatchResult` when exhausted (what the
#: flushing core turns a :data:`FragmentStream` into).
ResultStream = Generator[Tuple[int, List[Path]], None, "BatchResult"]


def drain(fragments: FragmentStream) -> "BatchResult":
    """Run a fragment generator to exhaustion and return its result.

    This is what turns any streaming runner back into a blocking ``run``
    call: the yielded fragments are discarded (they were already recorded
    into the underlying :class:`BatchResult`) and the generator's return
    value is handed back.
    """
    while True:
        try:
            next(fragments)
        except StopIteration as stop:
            return stop.value


def per_query_fragments(
    queries: Sequence[HCSTQuery],
    enumerate_one: Callable[[HCSTQuery], Sequence[Path]],
    algorithm: str,
) -> FragmentStream:
    """Fragment generator for algorithms with no cross-query state.

    ``pathenum``, ``dksp`` and ``onepass`` all share this shape: every query
    is enumerated independently inside one ``Enumeration`` stage and each
    completed query is immediately flushable, so the whole runner is a loop
    that records and yields one single-position fragment per query.
    """
    stage_timer = StageTimer()
    result = BatchResult(
        queries=list(queries),
        stage_timer=stage_timer,
        sharing=SharingStats(num_clusters=len(queries)),
        algorithm=algorithm,
    )
    with stage_timer.stage("Enumeration"):
        for position, query in enumerate(queries):
            result.record(position, enumerate_one(query))
            yield {position: result.paths_by_position[position]}
    return result


@dataclass
class SharingStats:
    """Statistics about how much computation the batch run shared.

    Attributes
    ----------
    num_clusters:
        Number of query groups produced by ``ClusterQuery``.
    num_shared_nodes:
        Number of *common* HC-s path query nodes detected (nodes with more
        than one consumer).
    num_hc_s_nodes:
        Total HC-s path query nodes enumerated (shared or not).
    cache_peak_entries:
        Maximum number of HC-s path result sets resident at once.
    cache_reuse_count:
        Number of times a cached HC-s path result was spliced into another
        enumeration instead of being recomputed.
    """

    num_clusters: int = 0
    num_shared_nodes: int = 0
    num_hc_s_nodes: int = 0
    cache_peak_entries: int = 0
    cache_reuse_count: int = 0

    def merge(self, other: "SharingStats") -> None:
        """Fold the stats of another shard into this one.

        Counters add up; ``cache_peak_entries`` takes the maximum, matching
        the single-process semantics where the peak is tracked per cluster
        (each cluster owns a fresh cache).  ``num_clusters`` is summed, so
        callers merging per-cluster fragments should leave the fragments'
        ``num_clusters`` at their natural value of one cluster each.
        """
        self.num_clusters += other.num_clusters
        self.num_shared_nodes += other.num_shared_nodes
        self.num_hc_s_nodes += other.num_hc_s_nodes
        self.cache_peak_entries = max(
            self.cache_peak_entries, other.cache_peak_entries
        )
        self.cache_reuse_count += other.cache_reuse_count


@dataclass
class BatchResult:
    """Results of processing a batch of HC-s-t path queries.

    Paths are stored per query *position* in the submitted batch so that
    duplicate queries each receive their own (identical) answer, exactly as
    a query-processing system would return them.
    """

    queries: List[HCSTQuery]
    paths_by_position: Dict[int, List[Path]] = field(default_factory=dict)
    stage_timer: StageTimer = field(default_factory=StageTimer)
    sharing: SharingStats = field(default_factory=SharingStats)
    algorithm: str = ""
    _positions_by_query: Optional[Dict[HCSTQuery, Tuple[int, ...]]] = field(
        default=None, repr=False, compare=False
    )

    def record(self, position: int, paths: Sequence[Path]) -> None:
        """Store the result paths of the query at ``position``."""
        self.paths_by_position[position] = list(paths)

    def paths_at(self, position: int) -> List[Path]:
        """Paths of the query at batch position ``position``."""
        return list(self.paths_by_position.get(position, []))

    def positions_of(self, query: HCSTQuery) -> Tuple[int, ...]:
        """Every batch position holding ``query``, ascending.

        The query → positions map is built lazily on first lookup and
        reused (``queries`` is fixed after construction), so repeated
        ``paths``/``positions_of`` calls cost one dict probe instead of an
        O(|Q|) scan per call.  Duplicate submissions each keep their own
        position — and therefore their own per-position answer.
        """
        if self._positions_by_query is None:
            grouped: Dict[HCSTQuery, List[int]] = {}
            for position, candidate in enumerate(self.queries):
                grouped.setdefault(candidate, []).append(position)
            self._positions_by_query = {
                candidate: tuple(positions)
                for candidate, positions in grouped.items()
            }
        positions = self._positions_by_query.get(query)
        if positions is None:
            raise KeyError(f"{query} is not part of this batch")
        return positions

    def paths(self, query: HCSTQuery) -> List[Path]:
        """Paths of the first batch entry equal to ``query``."""
        return self.paths_at(self.positions_of(query)[0])

    def counts(self) -> List[int]:
        """Number of result paths per query position."""
        empty: List[Path] = []
        return [
            len(self.paths_by_position.get(position, empty))
            for position in range(len(self.queries))
        ]

    def total_paths(self) -> int:
        return sum(self.counts())

    def sorted_paths_at(self, position: int) -> List[Path]:
        """Canonically ordered paths (for comparisons in tests)."""
        return sort_paths(self.paths_at(position))

    @property
    def total_time(self) -> float:
        return self.stage_timer.overall

    def stage_seconds(self, stage: str) -> float:
        return self.stage_timer.total(stage)

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.algorithm or 'batch'}: {len(self.queries)} queries, "
            f"{self.total_paths()} paths, {self.total_time:.4f}s "
            f"({self.sharing.num_shared_nodes} shared HC-s path queries, "
            f"{self.sharing.num_clusters} clusters)"
        )
