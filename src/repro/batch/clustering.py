"""Algorithm 2 — ``ClusterQuery``: hierarchical query clustering.

Queries are grouped so that queries likely to share a large amount of
computation end up in the same group; the detection phase then only looks
for common HC-s path queries *within* a group.  The procedure is standard
agglomerative (hierarchical) clustering with group-average linkage over the
pairwise query similarity µ of Definition 4.5, stopping when no two groups
have similarity above the threshold γ.
"""

from __future__ import annotations

from typing import List

from repro.queries.similarity import QuerySimilarityMatrix
from repro.queries.workload import QueryWorkload
from repro.utils.validation import require


def cluster_queries(workload: QueryWorkload, gamma: float) -> List[List[int]]:
    """Cluster the workload's queries; returns lists of batch positions.

    ``gamma`` is the merge threshold: two groups are merged only while the
    most similar pair of groups has group similarity strictly greater than
    ``gamma`` (Algorithm 2, line 8).
    """
    require(0.0 <= gamma <= 1.0, "gamma must be within [0, 1]")
    matrix = workload.similarity_matrix
    return cluster_by_similarity(matrix, gamma)


def cluster_by_similarity(
    matrix: QuerySimilarityMatrix, gamma: float
) -> List[List[int]]:
    """Agglomerative clustering of query positions given a pairwise µ matrix."""
    require(0.0 <= gamma <= 1.0, "gamma must be within [0, 1]")
    count = len(matrix)
    clusters: List[List[int]] = [[position] for position in range(count)]
    if count <= 1:
        return clusters

    # Group similarity δ(CA, CB) is the mean pairwise µ, which can be kept
    # as a running sum: sum(CA, CB) / (|CA| * |CB|).  Merging two clusters
    # only requires adding their sums against every other cluster.
    pair_sums: List[List[float]] = [[0.0] * count for _ in range(count)]
    for i in range(count):
        for j in range(count):
            if i != j:
                pair_sums[i][j] = matrix.get(i, j)

    active = list(range(count))
    while len(active) > 1:
        best_pair = None
        best_similarity = 0.0
        for index_a in range(len(active)):
            a = active[index_a]
            for index_b in range(index_a + 1, len(active)):
                b = active[index_b]
                denominator = len(clusters[a]) * len(clusters[b])
                similarity = pair_sums[a][b] / denominator
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_pair = (a, b)
        if best_pair is None or best_similarity <= gamma:
            break
        a, b = best_pair
        clusters[a].extend(clusters[b])
        clusters[b] = []
        for other in active:
            if other in (a, b):
                continue
            pair_sums[a][other] += pair_sums[b][other]
            pair_sums[other][a] += pair_sums[other][b]
        active.remove(b)

    return [sorted(cluster) for cluster in clusters if cluster]
