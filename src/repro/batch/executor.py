"""Plan-driven sharded parallel batch execution across worker processes.

Design
------
``BatchEnum`` processes a batch as *clusters* (Algorithm 2 groups queries
that can share computation; sharing never crosses a cluster boundary), so a
cluster is a clean shard: two clusters touch disjoint sharing graphs,
disjoint result caches and disjoint output positions.  The per-query
algorithms (``pathenum``, ``basic``, ``basic+``, ``dksp``, ``onepass``)
have no cross-query state at all, so their shards are contiguous batch
slices.

Since the plan/execute split, the *decisions* — shard assignments, worker
count, whether to ship the parent-built distance index — are made by
:class:`~repro.batch.planner.QueryPlanner` and arrive here as an
:class:`~repro.batch.planner.ExecutionPlan`.  The executor's job is purely
mechanical:

1. The parent's cheap global stages (workload validation, the similarity
   matrix, ``ClusterQuery``, BuildIndex) already ran during planning; their
   timings live in the plan's stage timer.
2. Every :class:`~repro.batch.planner.ShardPlan` becomes one task submitted
   to a :class:`concurrent.futures.ProcessPoolExecutor`.  The data graph —
   and, when the plan says so, the parent's serialized
   :class:`~repro.bfs.distance_index.CSRDistanceIndex` — is shipped to each
   worker **once** via the pool initializer (not once per task); a task
   carries only its shard's positions/queries.
3. A worker either deserializes the shipped flat-array index (no BFS at
   all) or, under a rebuild plan, builds a shard-local index.  Either index
   yields bit-identical paths: Lemma 3.1 pruning only consults the rows of
   a query's own endpoints, and a row is the same whether its BFS was
   truncated at the shard's or the batch's hop bound (entries beyond the
   query's own ``k`` can never pass the admissibility check).
4. The parent merges fragments **by batch position**, so results,
   ``SharingStats`` and stage timings are deterministic regardless of
   worker scheduling.  ``num_workers=1`` never reaches this module — the
   engine runs the sequential fragment generators, byte-for-byte as before.

Stage-timing semantics in parallel runs: the parent's ``Enumeration``
stage is the **wall-clock** time of the whole fan-out (submit → last merge);
the workers' own ``Enumeration`` totals are discarded to avoid counting that
span twice.  The remaining worker stages (``BuildIndex``,
``IdentifySubquery``) are accumulated across workers, so with N workers
those entries reflect summed CPU effort and can exceed wall-clock time.
Under a ship plan the workers' ``BuildIndex`` is near zero — that saving is
exactly what ``BENCH_planner.json`` tracks.

Streaming
---------
:func:`stream_parallel` is the fragment-generator form of the fan-out: it
drains the shard futures with :func:`concurrent.futures.as_completed` and
yields each shard's ``{position: paths}`` fragment the moment it lands, so
the first finished cluster never waits on the slowest one.
:func:`run_parallel` is simply ``drain(stream_parallel(...))``.  The
engine's ``stream``/``run`` front-end pushes both the parallel and the
sequential fragment generators through one :func:`flush_fragments` reorder
buffer, with two flush policies:

* ``ordered=True`` — positions are released in batch order; position ``i``
  is withheld until every position ``< i`` has been released.
* ``ordered=False`` — fragments are released the instant they complete,
  each tuple carrying its batch position, which minimises the
  time-to-first-result on skewed batches.

A shard that raises inside a worker surfaces its exception from the drain
loop (pending shards are cancelled, the pool is shut down); fragments that
were already flushed have already reached the consumer and are not lost.
"""

from __future__ import annotations

import atexit
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.batch.batch_enum import DEFAULT_MAX_DETECTION_DEPTH, BatchEnum
from repro.batch.planner import CLUSTERED_ALGORITHMS
from repro.batch.results import (
    BatchResult,
    FragmentStream,
    ResultStream,
    SharingStats,
    drain,
)
from repro.bfs.distance_index import CSRDistanceIndex, build_index
from repro.enumeration.paths import Path
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.shm import (
    SharedCSR,
    SharedCSRHandle,
    SharedIndexHandle,
    SharedIndexPayload,
    shm_available,
)
from repro.obs.feedback import (
    COST_ACTUAL_SECONDS_TOTAL,
    COST_PREDICTED_UNITS_TOTAL,
    SHIP_BYTES_TOTAL,
    SHIP_SECONDS_TOTAL,
    SHM_BYTES_TOTAL,
    SHM_SECONDS_TOTAL,
)
from repro.obs.metrics import resolve_registry
from repro.obs.tracing import RemoteSpanRecorder, SpanContext, resolve_tracer
from repro.queries.query import HCSTQuery
from repro.queries.workload import QueryWorkload
from repro.utils.timer import StageTimer
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.planner import ExecutionPlan

#: Worker-process state installed by :func:`_init_worker`.  The graph is a
#: sealed :class:`~repro.graph.csr.CSRGraph` snapshot — workers never see
#: the live, mutable ``DiGraph``.
_WORKER_GRAPH: Optional[CSRGraph] = None
_WORKER_CONFIG: Optional[dict] = None
_WORKER_INDEX: Optional[CSRDistanceIndex] = None

#: Seconds this worker spent attaching shared-memory segments during
#: initialisation; the first task it runs reports (and resets) the value so
#: the parent can fold it into the shm-transport seconds counter.
_WORKER_INIT_ATTACH_SECONDS: float = 0.0

#: One-slot cache of the most recent *per-task* shipped index (persistent
#: pools serve many micro-batches, each with its own index, so the payload
#: travels with the task instead of the pool initializer):
#: ``(key, index, shm_attachment)``.  The attachment slot keeps the shared
#: mapping alive exactly as long as its index is cached.
_WORKER_TASK_INDEX: Tuple[Optional[object], Optional[CSRDistanceIndex], object] = (
    None,
    None,
    None,
)

#: What an index payload looks like on the wire: the raw ``to_bytes`` blob
#: (pickle transport) or the address of a shared-memory segment holding it.
IndexPayload = Union[bytes, SharedIndexHandle, None]


def _init_worker(graph: Union[CSRGraph, SharedCSRHandle], config: dict) -> None:
    """Pool initializer: stash the sealed graph snapshot, config and
    (optionally) the parent's shipped distance index per process.

    ``graph`` is either the pickled snapshot itself or — under the
    zero-copy transport — a :class:`SharedCSRHandle` that is attached here
    (the mapping is closed via ``atexit`` when the worker retires).  The
    index payload likewise arrives as bytes or a shared-memory handle and
    is materialised exactly once per worker — every cluster/slice task the
    worker subsequently runs reads the same flat arrays instead of
    re-running multi-source BFS.
    """
    global _WORKER_GRAPH, _WORKER_CONFIG, _WORKER_INDEX
    global _WORKER_INIT_ATTACH_SECONDS
    attach_seconds = 0.0
    if isinstance(graph, SharedCSRHandle):
        start = time.perf_counter()
        attached = graph.attach()
        attach_seconds += time.perf_counter() - start
        atexit.register(attached.close)
        graph = attached
    _WORKER_GRAPH = graph
    _WORKER_CONFIG = config
    payload = config.get("index_payload")
    if isinstance(payload, SharedIndexHandle):
        start = time.perf_counter()
        blob = payload.attach()
        _WORKER_INDEX = CSRDistanceIndex.from_bytes(blob.view, copy=False)
        attach_seconds += time.perf_counter() - start
        atexit.register(blob.close)
    elif payload:
        _WORKER_INDEX = CSRDistanceIndex.from_bytes(payload)
    else:
        _WORKER_INDEX = None
    _WORKER_INIT_ATTACH_SECONDS = attach_seconds


def _consume_init_attach_seconds() -> float:
    """Report the worker's init-time shm attach seconds exactly once."""
    global _WORKER_INIT_ATTACH_SECONDS
    seconds = _WORKER_INIT_ATTACH_SECONDS
    _WORKER_INIT_ATTACH_SECONDS = 0.0
    return seconds

#: A result fragment sent back by a worker: paths keyed by original batch
#: position, the shard's sharing stats, its stage-time totals, and a
#: telemetry meta dict — ``{"spans": [...], "index_source":
#: "initializer"|"cache-hit"|"deserialized"|"shm-attached"|"rebuilt"|"none",
#: "deserialize_seconds": float, "init_attach_seconds": float}``.
#: The spans are worker-side records
#: parented to the submitting batch's span context; the parent re-homes
#: them via ``Tracer.adopt`` on merge.
Fragment = Tuple[Dict[int, list], SharingStats, Dict[str, float], dict]


def _resolve_task_index(
    index_key: Optional[object], index_payload: IndexPayload
) -> Tuple[Optional[CSRDistanceIndex], str, float]:
    """The index a task should read: the initializer-shipped one (one-shot
    pools) or the task-shipped payload (persistent pools), materialised once
    per worker per micro-batch — shards of the same batch share
    ``index_key`` so later shards hit the one-slot cache.

    Returns ``(index, source, deserialize_seconds)`` where ``source`` is
    how the index was obtained (``"initializer"``, ``"cache-hit"``,
    ``"deserialized"``, ``"shm-attached"``, or ``"none"`` when the worker
    must rebuild) — the submit side turns this into the deserialize-cache
    hit/miss counters and the :class:`WorkerPool` stats.  Evicting a cached
    shm-backed index closes its mapping once the new slot is installed.
    """
    global _WORKER_TASK_INDEX
    if index_payload is None:
        if _WORKER_INDEX is None:
            return None, "none", 0.0
        return _WORKER_INDEX, "initializer", 0.0
    cached_key, cached_index, cached_attachment = _WORKER_TASK_INDEX
    if cached_key == index_key and cached_index is not None:
        return cached_index, "cache-hit", 0.0
    start = time.perf_counter()
    if isinstance(index_payload, SharedIndexHandle):
        attachment = index_payload.attach()
        index = CSRDistanceIndex.from_bytes(attachment.view, copy=False)
        source = "shm-attached"
    else:
        attachment = None
        index = CSRDistanceIndex.from_bytes(index_payload)
        source = "deserialized"
    _WORKER_TASK_INDEX = (index_key, index, attachment)
    if cached_attachment is not None:
        cached_attachment.close()
    return index, source, time.perf_counter() - start


def _run_cluster_task(
    queries_by_position: Dict[int, HCSTQuery],
    index_key: Optional[object] = None,
    index_payload: IndexPayload = None,
    span_context: Optional[SpanContext] = None,
    kernel: str = "python",
) -> Fragment:
    """Process one cluster inside a worker (``batch``/``batch+``)."""
    graph, config = _WORKER_GRAPH, _WORKER_CONFIG
    assert graph is not None and config is not None, "worker not initialised"
    enumerator = BatchEnum(
        graph,
        gamma=config["gamma"],
        optimize_search_order=config["optimize_search_order"],
        max_detection_depth=config["max_detection_depth"],
        kernel=kernel,
    )
    stage_timer = StageTimer()
    index, index_source, deserialize_seconds = _resolve_task_index(
        index_key, index_payload
    )
    if index is None:
        # Rebuild plan: shard-local BFS over this cluster's endpoints.
        index_source = "rebuilt"
        with stage_timer.stage("BuildIndex"):
            index = build_index(
                graph,
                sorted({query.s for query in queries_by_position.values()}),
                sorted({query.t for query in queries_by_position.values()}),
                max(query.k for query in queries_by_position.values()),
            )
    sharing = SharingStats(num_clusters=1)
    scratch = BatchResult(queries=[])
    spans = RemoteSpanRecorder(span_context)
    with spans.span(
        "enumerate",
        tags={
            "kind": "cluster",
            "positions": len(queries_by_position),
            "index": index_source,
        },
    ):
        enumerator._process_cluster(
            queries_by_position, index, stage_timer, scratch, sharing
        )
    meta = {
        "spans": spans.records,
        "index_source": index_source,
        "deserialize_seconds": deserialize_seconds,
        "init_attach_seconds": _consume_init_attach_seconds(),
    }
    return scratch.paths_by_position, sharing, stage_timer.totals, meta


def _run_slice_task(
    positions: Sequence[int],
    queries: Sequence[HCSTQuery],
    index_key: Optional[object] = None,
    index_payload: IndexPayload = None,
    span_context: Optional[SpanContext] = None,
    kernel: str = "python",
) -> Fragment:
    """Process one contiguous query slice inside a worker (per-query
    algorithms: the sequential runner is reused verbatim)."""
    from repro.batch.basic_enum import BasicEnum
    from repro.batch.engine import BatchQueryEngine

    graph, config = _WORKER_GRAPH, _WORKER_CONFIG
    assert graph is not None and config is not None, "worker not initialised"
    algorithm = config["algorithm"]
    index, index_source, deserialize_seconds = _resolve_task_index(
        index_key, index_payload
    )
    spans = RemoteSpanRecorder(span_context)
    with spans.span(
        "enumerate",
        tags={"kind": "slice", "positions": len(positions), "index": index_source},
    ):
        if index is not None and algorithm in ("basic", "basic+"):
            # Shipped-index plan: run BasicEnum directly on the parent's
            # global index (a covering superset of the slice's own — prunes
            # identically) instead of re-running BFS for the slice.
            enumerator = BasicEnum(
                graph,
                optimize_search_order=algorithm.endswith("+"),
                kernel=kernel,
            )
            workload = QueryWorkload(graph, list(queries), index=index)
            sub_result = drain(enumerator.iter_run(queries, workload=workload))
        else:
            engine = BatchQueryEngine(
                graph,
                algorithm=algorithm,
                gamma=config["gamma"],
                num_workers=1,
                kernel=kernel,
            )
            sub_result = engine.run(queries)
    paths_by_position = {
        position: sub_result.paths_by_position.get(local, [])
        for local, position in enumerate(positions)
    }
    meta = {
        "spans": spans.records,
        "index_source": index_source,
        "deserialize_seconds": deserialize_seconds,
        "init_attach_seconds": _consume_init_attach_seconds(),
    }
    return (
        paths_by_position,
        sub_result.sharing,
        sub_result.stage_timer.totals,
        meta,
    )


class WorkerPool:
    """A long-lived worker-process pool reused across micro-batches.

    :func:`stream_parallel` normally spawns (and joins) a fresh
    :class:`~concurrent.futures.ProcessPoolExecutor` per call, paying the
    pool-spawn overhead — the dominant cost of a small batch — every time.
    A continuous-ingestion service dispatches many small micro-batches
    against one graph/algorithm configuration, so it opens one
    ``WorkerPool`` up front (the graph and the static config ship through
    the initializer exactly once) and passes it to every
    ``stream_parallel``/``engine.stream`` call.

    Because the initializer runs once per worker *process* but each
    micro-batch has its own distance index, a pooled batch ships its index
    payload with its tasks instead: all shards of one batch share an
    ``index_key``, and each worker deserializes a given batch's payload at
    most once (see :func:`_resolve_task_index`).

    The pool is not thread-safe for concurrent batches; the intended owner
    is a single scheduler thread.  ``shutdown()`` (or use as a context
    manager) joins the workers.
    """

    def __init__(
        self,
        graph: DiGraph,
        algorithm: str,
        gamma: float,
        max_workers: int,
        max_detection_depth: Optional[int] = DEFAULT_MAX_DETECTION_DEPTH,
        snapshot: Optional[CSRGraph] = None,
        use_shm="auto",
        metrics=None,
    ) -> None:
        require(max_workers >= 1, f"max_workers must be >= 1, got {max_workers}")
        registry = resolve_registry(metrics)
        registry.counter("repro_executor_pool_spawns_total").inc()
        registry.gauge("repro_executor_pool_workers").set(max_workers)
        self.graph = graph
        self.algorithm = algorithm
        self.gamma = gamma
        self.max_workers = max_workers
        self.max_detection_depth = max_detection_depth
        #: The sealed snapshot the workers were initialised with.  Workers
        #: hold their own copy (pickled, or a read-only shared mapping of
        #: the same flat arrays), so an in-place mutation of ``graph`` does
        #: NOT reach them — executors refuse a pool whose snapshot version
        #: differs from the plan's (see :func:`stream_parallel`), and the
        #: ingestion service recycles the pool on version drift.
        self.snapshot = snapshot if snapshot is not None else graph.csr_snapshot()
        self.graph_version = self.snapshot.version
        self.uses_shm = (
            shm_available() if use_shm == "auto" else bool(use_shm) and shm_available()
        )
        #: (SharedCSR, owned) — the zero-copy graph export the initializer
        #: handle points at.  When the snapshot store sealed this exact CSR
        #: the export is refcounted there (``owned=False``, released in
        #: :meth:`shutdown`); otherwise the pool creates and unlinks its
        #: own segment.
        self._shared_graph: Optional[SharedCSR] = None
        self._owns_shared_graph = False
        init_graph: Union[CSRGraph, SharedCSRHandle] = self.snapshot
        if self.uses_shm:
            start = time.perf_counter()
            store = getattr(graph, "snapshots", None)
            shared = (
                store.export_shm(self.snapshot) if store is not None else None
            )
            if shared is None:
                shared = SharedCSR.create(self.snapshot)
                self._owns_shared_graph = True
            self._shared_graph = shared
        # From here the instance owns the export but nobody can call
        # shutdown() until __init__ returns: release it ourselves if the
        # constructor tail fails (RA008 ctor-window).
        try:
            if self._shared_graph is not None:
                init_graph = self._shared_graph.handle
                registry.counter(SHM_BYTES_TOTAL).inc(
                    self._shared_graph.nbytes
                )
                registry.counter(SHM_SECONDS_TOTAL).inc(
                    time.perf_counter() - start
                )
            config = {
                "algorithm": algorithm,
                "gamma": gamma,
                "optimize_search_order": algorithm.endswith("+"),
                "max_detection_depth": max_detection_depth,
                "index_payload": None,
            }
            self._executor = ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(init_graph, config),
            )
        except BaseException:
            self._release_shared_graph()
            raise
        self._batch_counter = 0
        self._closed = False
        self._index_sources = {
            "cache-hit": 0,
            "deserialized": 0,
            "shm-attached": 0,
        }

    def next_batch_key(self) -> int:
        """A fresh key identifying one micro-batch's shipped index."""
        self._batch_counter += 1
        return self._batch_counter

    def _note_index_source(self, source: Optional[str]) -> None:
        """Fold one task's index-source outcome into :meth:`stats`."""
        if source in self._index_sources:
            self._index_sources[source] += 1

    def stats(self) -> Dict[str, object]:
        """Observable pool counters, including the deserialize-cache ratio.

        ``deserialize_cache_hits`` / ``deserialize_cache_misses`` count the
        worker-side one-slot index cache (a miss is a ``deserialized`` or
        ``shm-attached`` materialisation); ``hit_ratio`` is hits over all
        cache lookups, ``None`` before the first shipped-index task.  An
        alternating-batch dispatch pattern across a >1-worker pool shows up
        here as a collapsed hit ratio — the regression the accounting was
        added to expose.
        """
        hits = self._index_sources["cache-hit"]
        misses = (
            self._index_sources["deserialized"]
            + self._index_sources["shm-attached"]
        )
        lookups = hits + misses
        return {
            "batches": self._batch_counter,
            "deserialize_cache_hits": hits,
            "deserialize_cache_misses": misses,
            "shm_attaches": self._index_sources["shm-attached"],
            "hit_ratio": (hits / lookups) if lookups else None,
            "uses_shm": self.uses_shm,
        }

    def submit(self, fn, *args):
        require(not self._closed, "WorkerPool is shut down", RuntimeError)
        return self._executor.submit(fn, *args)

    def _release_shared_graph(self) -> None:
        """Retire the shared-memory graph export exactly once (idempotent):
        unlink an owned segment, drop the store refcount otherwise."""
        shared, owned = self._shared_graph, self._owns_shared_graph
        self._shared_graph = None
        if shared is not None:
            if owned:
                shared.unlink()
            else:
                self.graph.snapshots.release_shm(self.graph_version)

    def shutdown(self, wait: bool = True) -> None:
        """Join the worker processes and retire the shared-memory graph
        segment (idempotent)."""
        if self._closed:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            return
        self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=True)
        self._release_shared_graph()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"WorkerPool({self.algorithm!r}, max_workers={self.max_workers}, "
            f"batches={self._batch_counter}, {state})"
        )


def run_parallel(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    algorithm: str,
    gamma: float,
    num_workers: int,
    max_detection_depth: Optional[int] = DEFAULT_MAX_DETECTION_DEPTH,
) -> BatchResult:
    """Process ``queries`` with ``num_workers`` worker processes.

    Results are keyed by batch position, so the final :class:`BatchResult`
    is identical (same paths, same order, per position) to a sequential run
    regardless of worker scheduling.
    """
    return drain(
        stream_parallel(
            graph,
            queries,
            algorithm=algorithm,
            gamma=gamma,
            num_workers=num_workers,
            max_detection_depth=max_detection_depth,
        )
    )


def stream_parallel(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    algorithm: str,
    gamma: float,
    num_workers: Optional[int] = None,
    max_detection_depth: Optional[int] = DEFAULT_MAX_DETECTION_DEPTH,
    plan: "ExecutionPlan | None" = None,
    pool: Optional[WorkerPool] = None,
    use_shm="auto",
    metrics=None,
    tracer=None,
) -> FragmentStream:
    """Fragment generator over shard completions (``num_workers >= 2``).

    Execution follows an :class:`~repro.batch.planner.ExecutionPlan`: the
    engine passes the plan it already built; direct callers may instead
    pass ``num_workers`` and a plan is derived here.  Shards are submitted
    to a process pool and drained with ``as_completed``: every shard's
    ``{position: paths}`` fragment is recorded into the
    :class:`BatchResult` and yielded the moment its future lands.  If a
    shard raises, the exception propagates out of the generator after the
    pending futures are cancelled and the pool is shut down — the drain
    loop never hangs on a poisoned shard.

    With a persistent ``pool`` (see :class:`WorkerPool`) the fan-out reuses
    its already-spawned workers instead of paying a pool spawn: the plan's
    index payload ships with this batch's tasks (deserialized once per
    worker, shards share the batch key) and on exit only this batch's
    pending futures are cancelled — the pool itself stays open for the next
    micro-batch.  One trade-off of sharing: a process pool cannot kill a
    *running* task, so shards of a failed or abandoned pooled batch that
    had already started keep their worker slots until they finish (their
    results are discarded); the one-shot path's "pool joined before the
    generator returns" guarantee applies only when no ``pool`` is passed.
    """
    if plan is None:
        from repro.batch.planner import QueryPlanner

        require(
            num_workers is not None and num_workers >= 2,
            "stream_parallel requires num_workers >= 2 (or an explicit plan)",
        )
        plan = QueryPlanner(graph, algorithm=algorithm, gamma=gamma).plan(
            queries, num_workers=num_workers
        )
    require(
        plan.num_workers >= 2,
        "stream_parallel requires a plan resolved to num_workers >= 2",
    )
    if pool is not None:
        require(
            pool.graph is graph
            and pool.algorithm == algorithm
            and pool.gamma == gamma
            and pool.max_detection_depth == max_detection_depth,
            "WorkerPool was opened for a different configuration "
            f"({pool!r}); open one pool per engine configuration",
        )
        require(
            pool.graph_version == plan.graph_version,
            "WorkerPool workers hold a graph snapshot from version "
            f"{pool.graph_version} but the plan was built against version "
            f"{plan.graph_version}; the graph mutated after the pool "
            "spawned — open a fresh pool",
            exception=RuntimeError,
        )
    from repro.batch.engine import DISPLAY_NAMES

    stage_timer = plan.stage_timer or StageTimer()
    result = BatchResult(
        queries=list(queries),
        stage_timer=stage_timer,
        algorithm=DISPLAY_NAMES.get(algorithm, algorithm),
    )
    sharing = SharingStats()

    if algorithm in CLUSTERED_ALGORITHMS:
        tasks = [
            {position: queries[position] for position in shard.positions}
            for shard in plan.shards
        ]
        worker_fn, make_args = _run_cluster_task, lambda task: (task,)
    else:
        tasks = [
            (shard.positions, [queries[position] for position in shard.positions])
            for shard in plan.shards
        ]
        worker_fn, make_args = _run_slice_task, lambda task: task

    registry = resolve_registry(metrics)
    span_tracer = resolve_tracer(tracer)
    m_shards = registry.counter("repro_executor_shards_total")
    m_predicted = registry.counter(COST_PREDICTED_UNITS_TOTAL)
    m_actual = registry.counter(COST_ACTUAL_SECONDS_TOTAL)
    m_shard_seconds = registry.histogram("repro_shard_seconds")
    m_ship_bytes = registry.counter(SHIP_BYTES_TOTAL)
    m_ship_seconds = registry.counter(SHIP_SECONDS_TOTAL)
    m_shm_bytes = registry.counter(SHM_BYTES_TOTAL)
    m_shm_seconds = registry.counter(SHM_SECONDS_TOTAL)
    m_cache_hits = registry.counter("repro_executor_deserialize_cache_hits_total")
    m_cache_misses = registry.counter(
        "repro_executor_deserialize_cache_misses_total"
    )

    use_shm = (
        shm_available() if use_shm == "auto" else bool(use_shm) and shm_available()
    )
    shipped_bytes = plan.index_bytes if plan.ship_index else None
    # The worker-side span context: ``None`` (no tracing) costs nothing in
    # the payload and workers skip recording entirely.
    span_context = span_tracer.current_context()
    # Index transport: under the planner's "shm" decision the blob is copied
    # into one shared segment here and workers receive only its handle; the
    # segment is unlinked in the outer finally below once every shard has
    # landed (mapped workers keep reading safely regardless).  Every
    # acquisition — index segment, graph export, worker pool — happens
    # inside the try so a failure anywhere between acquire and release
    # cannot leak a segment or orphan workers (RA008).
    shm_index: Optional[SharedIndexPayload] = None
    index_payload: IndexPayload = shipped_bytes
    shm_graph: Optional[SharedCSR] = None
    owns_shm_graph = False
    shm_graph_version: Optional[int] = None
    executor: "ProcessPoolExecutor | WorkerPool | None" = None
    futures: List = []
    try:
        if (
            shipped_bytes is not None
            and plan.index_transport == "shm"
            and use_shm
        ):
            shm_start = time.perf_counter()
            shm_index = SharedIndexPayload.create(shipped_bytes)
            m_shm_seconds.inc(time.perf_counter() - shm_start)
            m_shm_bytes.inc(len(shipped_bytes))
            index_payload = shm_index.handle
        if pool is None:
            config = {
                "algorithm": algorithm,
                "gamma": gamma,
                "optimize_search_order": algorithm.endswith("+"),
                "max_detection_depth": max_detection_depth,
                "index_payload": index_payload,
            }
            snapshot = (
                plan.snapshot if plan.snapshot is not None else graph.csr_snapshot()
            )
            init_graph: "CSRGraph | SharedCSRHandle" = snapshot
            if use_shm:
                shm_start = time.perf_counter()
                store = getattr(graph, "snapshots", None)
                shm_graph = store.export_shm(snapshot) if store is not None else None
                if shm_graph is None:
                    shm_graph = SharedCSR.create(snapshot)
                    owns_shm_graph = True
                else:
                    shm_graph_version = snapshot.version
                init_graph = shm_graph.handle
                m_shm_seconds.inc(time.perf_counter() - shm_start)
                m_shm_bytes.inc(shm_graph.nbytes)
            executor = ProcessPoolExecutor(
                max_workers=plan.num_workers,
                initializer=_init_worker,
                initargs=(init_graph, config),
            )
            extra_args: Tuple = (None, None, span_context)
        else:
            # Persistent pool: the initializer already shipped the graph and
            # static config; this batch's index (if any) rides on each task
            # under a shared batch key.
            executor = pool
            extra_args = (
                (pool.next_batch_key(), index_payload)
                if index_payload
                else (None, None)
            ) + (span_context,)
        with stage_timer.stage("Enumeration"):
            shard_by_future: Dict = {}
            ship_start = time.perf_counter()
            with span_tracer.span(
                "ship",
                tags={
                    "shards": len(tasks),
                    "payload_bytes": len(shipped_bytes) if shipped_bytes else 0,
                },
            ):
                for task, shard in zip(tasks, plan.shards):
                    future = executor.submit(
                        worker_fn, *make_args(task), *extra_args, shard.kernel
                    )
                    futures.append(future)
                    shard_by_future[future] = shard
            m_shards.inc(len(futures))
            registry.histogram("repro_executor_ship_submit_seconds").observe(
                time.perf_counter() - ship_start
            )
            for future in as_completed(futures):
                paths_by_position, fragment_sharing, stage_totals, meta = (
                    future.result()
                )
                with span_tracer.span(
                    "merge", tags={"positions": len(paths_by_position)}
                ):
                    for position in sorted(paths_by_position):
                        result.record(position, paths_by_position[position])
                    # SharingStats.merge and StageTimer.add are commutative,
                    # so completion order does not affect the merged totals.
                    sharing.merge(fragment_sharing)
                    for name, seconds in sorted(stage_totals.items()):
                        if name != "Enumeration":  # already inside the stage
                            stage_timer.add(name, seconds)
                # Predicted-vs-actual per shard: the feedback pair
                # CostModel.from_observed recalibrates from.
                shard = shard_by_future[future]
                actual_seconds = stage_totals.get("Enumeration", 0.0)
                m_predicted.inc(shard.estimated_cost)
                m_actual.inc(actual_seconds)
                m_shard_seconds.observe(actual_seconds)
                index_source = meta.get("index_source")
                if index_source == "cache-hit":
                    m_cache_hits.inc()
                elif index_source == "deserialized":
                    m_cache_misses.inc()
                    m_ship_seconds.inc(meta.get("deserialize_seconds", 0.0))
                    if shipped_bytes is not None:
                        m_ship_bytes.inc(len(shipped_bytes))
                elif index_source == "shm-attached":
                    m_cache_misses.inc()
                    m_shm_seconds.inc(meta.get("deserialize_seconds", 0.0))
                m_shm_seconds.inc(meta.get("init_attach_seconds", 0.0))
                if pool is not None:
                    pool._note_index_source(index_source)
                span_tracer.adopt(meta.get("spans") or ())
                yield {
                    position: result.paths_by_position[position]
                    for position in sorted(paths_by_position)
                }
    finally:
        if pool is None:
            # On an error (or an abandoned consumer) cancel whatever has
            # not started; running shards finish or fail on their own,
            # and the wait guarantees no orphaned worker processes.
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)
            if shm_graph is not None:
                if owns_shm_graph:
                    shm_graph.unlink()
                else:
                    graph.snapshots.release_shm(shm_graph_version)
        else:
            # Only this batch's unstarted shards are cancelled; the pool
            # stays open for the next micro-batch.
            for future in futures:
                future.cancel()
        if shm_index is not None:
            # The batch's shard tasks have all landed (or been
            # cancelled); retiring the name now keeps /dev/shm clean
            # while any still-running stragglers read their mapping.
            shm_index.unlink()

    if algorithm not in CLUSTERED_ALGORITHMS:
        # Per-query algorithms report one "cluster" per query, like their
        # sequential counterparts do.
        sharing.num_clusters = len(queries)
    result.sharing = sharing
    return result


def flush_fragments(
    fragments: FragmentStream, total_positions: int, ordered: bool
) -> ResultStream:
    """The shared flushing core of the streaming front-end.

    Drains a fragment generator (sequential per-cluster/per-query or
    parallel per-shard — both speak the same ``{position: paths}``
    protocol) and yields ``(batch_position, paths)`` tuples under one of
    two policies:

    * ``ordered=True`` — a per-position reorder buffer holds completed
      positions until all of their predecessors have been released, so the
      consumer sees positions ``0, 1, 2, …`` exactly in batch order.
    * ``ordered=False`` — every fragment is released the instant it
      arrives (within a fragment, positions are released ascending so the
      output is deterministic given a completion order).

    This is itself a generator whose return value is the fragment
    generator's :class:`BatchResult`, which is how ``run()`` stays a thin
    collect-the-stream wrapper.
    """
    reorder_buffer: Dict[int, List[Path]] = {}
    cursor = 0
    flushed = 0
    try:
        while True:
            try:
                fragment = next(fragments)
            except StopIteration as stop:
                result = stop.value
                break
            if ordered:
                reorder_buffer.update(fragment)
                while cursor in reorder_buffer:
                    yield cursor, reorder_buffer.pop(cursor)
                    cursor += 1
                    flushed += 1
            else:
                for position in sorted(fragment):
                    yield position, fragment[position]
                    flushed += 1
    finally:
        # Deterministically close the upstream generator (it may be holding
        # a process pool open in its own finally) instead of relying on
        # refcount-driven finalisation when the consumer abandons us.
        fragments.close()
    require(
        not reorder_buffer and flushed == total_positions,
        "fragment stream ended without covering every batch position "
        f"(flushed {flushed} of {total_positions}, "
        f"{len(reorder_buffer)} stranded in the reorder buffer)",
    )
    return result
