"""Plan/execute split: the cost-model query planner.

The engine used to make its scheduling decisions implicitly and locally —
the caller guessed ``num_workers``, every worker re-ran BFS to rebuild its
shard's distance index, and the shard boundaries were derived ad hoc inside
the executor.  This module makes those decisions explicit: a
:class:`QueryPlanner` inspects the workload and the graph snapshot, runs the
cheap global stages once (BuildIndex, ClusterQuery), and emits an
:class:`ExecutionPlan` that the executor consumes verbatim:

* **shard assignments** — one shard per cluster for the sharing-aware
  algorithms (``batch``/``batch+``), contiguous batch slices for the
  per-query algorithms, each with an estimated enumeration cost;
* **worker count** — ``num_workers="auto"`` resolves against a
  :class:`CostModel` calibrated from ``BENCH_workers.json``: sharding is
  only chosen when the estimated enumeration makespan saving clears the
  measured process-pool spawn overhead by a safety margin;
* **index ship-vs-rebuild** — whether the parent's array-backed
  :class:`~repro.bfs.distance_index.CSRDistanceIndex` should be serialized
  once into the pool initializer (workers deserialize flat arrays) or each
  worker should re-run its own shard-local BFS (cheaper only when the dense
  payload dwarfs the reachable entry count).

``BatchQueryEngine.explain(queries)`` returns the plan without executing
it; ``run``/``stream`` build the same plan and hand its prebuilt artefacts
(workload, clusters, serialized index) to whichever path executes, so
planning work is never repeated.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.batch.clustering import cluster_queries
from repro.bfs.distance_index import CSRDistanceIndex
from repro.bfs.single_source import bfs_distances
from repro.enumeration.kernels import resolve_kernel, validate_kernel
from repro.enumeration.search_order import estimate_side_cost
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.shm import shm_available
from repro.graph.snapshots import PinnedSnapshot
from repro.obs.feedback import (
    INDEX_BUILD_ENTRIES_TOTAL,
    INDEX_BUILD_SECONDS_TOTAL,
    INDEX_DELTA_EDGE_ROWS_TOTAL,
    INDEX_DELTA_SECONDS_TOTAL,
    PLAN_INDEX_STRATEGY_TOTAL,
    cost_model_fields_from_snapshot,
)
from repro.obs.metrics import resolve_registry
from repro.obs.tracing import resolve_tracer
from repro.queries.query import HCSTQuery
from repro.queries.similarity import similarity_from_neighborhoods
from repro.queries.workload import QueryWorkload
from repro.utils.timer import StageTimer
from repro.utils.validation import require

#: Algorithms whose batch work is sharded per cluster (sharing-aware).
#: The executor imports this from here so planner and executor cannot drift.
CLUSTERED_ALGORITHMS = ("batch", "batch+")

#: Algorithms that read the shared multi-source BFS index and can therefore
#: receive a shipped parent-built index instead of rebuilding one.
INDEXED_ALGORITHMS = ("basic", "basic+", "batch", "batch+")

#: Algorithms whose hot loop has a vectorized twin in
#: :mod:`repro.enumeration.kernels`; the adapted baselines (dksp/onepass)
#: keep their own search structure and always run the Python substrate.
KERNELIZED_ALGORITHMS = ("pathenum", "basic", "basic+", "batch", "batch+")

#: Relative cost multipliers for the per-query algorithms, applied on top of
#: the per-query structural estimate.  They only influence the worker-count
#: decision (absolute accuracy does not matter, ordering does): ``dksp``
#: re-runs a constrained shortest-path search per deviation prefix,
#: ``onepass`` a pruned DFS per query, ``pathenum`` builds a per-query
#: index before enumerating.
ALGORITHM_COST_FACTORS: Dict[str, float] = {
    "pathenum": 2.0,
    "basic": 1.0,
    "basic+": 1.0,
    "batch": 1.0,
    "batch+": 1.0,
    "dksp": 40.0,
    "onepass": 15.0,
}

NumWorkers = Union[int, str]

#: Entry cap on the planner's admission-score neighbourhood memo.  A
#: long-running ingestion service holds one planner forever; without a
#: bound, diverse traffic accretes one O(|V|) frozenset per (direction,
#: endpoint, budget) key indefinitely.  Eviction is FIFO (dict order) —
#: recency-perfect LRU is not worth the bookkeeping for a cache whose
#: misses cost one k-hop BFS.
NEIGHBORHOOD_CACHE_LIMIT = 4096


def validate_num_workers(value: NumWorkers) -> NumWorkers:
    """Eagerly validate a ``num_workers`` setting.

    Accepts a positive integer or the string ``"auto"``; anything else
    (zero, negatives, bools, floats, other strings) raises ``ValueError``
    immediately so misconfiguration surfaces at construction/planning time,
    not deep inside the executor mid-batch.
    """
    if isinstance(value, str):
        require(
            value == "auto",
            f"num_workers must be a positive integer or 'auto', got {value!r}",
        )
        return value
    require(
        isinstance(value, int) and not isinstance(value, bool),
        f"num_workers must be a positive integer or 'auto', got {value!r}",
    )
    require(value >= 1, f"num_workers must be >= 1, got {value}")
    return value


def _lpt_makespan(costs: List[float], num_workers: int) -> float:
    """Cost units of the busiest bin under an LPT greedy assignment
    (sort descending, always feed the least-loaded worker) — the single
    shared model for both the worker-count decision and the reported
    parallel-seconds estimate."""
    if not costs:
        return 0.0
    if num_workers <= 1:
        return sum(costs)
    bins = [0.0] * num_workers
    for cost in sorted(costs, reverse=True):
        bins[bins.index(min(bins))] += cost
    return max(bins)


@dataclass(frozen=True)
class CostModel:
    """Calibration constants translating plan statistics into seconds.

    The defaults are fitted to the repository's ``BENCH_workers.json``
    (pure-Python substrate, fork-server process pool); use
    :meth:`from_benchmark` to re-derive them from a refreshed artifact.

    Attributes
    ----------
    spawn_overhead_base:
        Fixed cost of standing up the process pool at all (pool creation,
        initializer pickling of the graph).
    spawn_overhead_per_worker:
        Additional cost per worker process.
    seconds_per_cost_unit:
        Wall seconds per estimated enumeration cost unit
        (:func:`estimate_query_cost`).
    seconds_per_index_entry:
        Per reachable (vertex, distance) entry cost of re-running the
        multi-source BFS inside a worker.
    seconds_per_shipped_byte:
        Per-byte cost of serializing + piping + deserializing the
        array-backed index into a worker.
    seconds_per_shm_byte:
        Per-byte cost of the shared-memory index transport (parent copies
        the payload into a segment once; workers map it) — orders of
        magnitude below the pickle rate, which is the whole point.
    shm_segment_overhead_seconds:
        Fixed cost of creating + unlinking one shared-memory segment
        (``shm_open``/``mmap``/``unlink`` syscalls), charged per batch.
        Keeps tiny payloads on the pickle path where they are cheaper.
    seconds_per_delta_edge:
        Per (changed edge × index row) cost of incremental
        :meth:`~repro.bfs.distance_index.CSRDistanceIndex.apply_delta`
        repair — the third index option ("ship-delta") next to build and
        ship: repair the previous batch's index instead of re-running the
        multi-source BFS from scratch.
    parallel_benefit_margin:
        ``auto`` only shards when the predicted parallel wall time is below
        this fraction of the predicted sequential wall time — a hedge
        against estimation error, biased toward the (always correct)
        sequential plan.
    """

    spawn_overhead_base: float = 0.04
    spawn_overhead_per_worker: float = 0.03
    seconds_per_cost_unit: float = 5e-6
    seconds_per_index_entry: float = 4e-7
    seconds_per_shipped_byte: float = 2e-9
    seconds_per_shm_byte: float = 5e-11
    shm_segment_overhead_seconds: float = 3e-4
    seconds_per_delta_edge: float = 2e-5
    parallel_benefit_margin: float = 0.75

    def delta_repair_seconds(
        self, num_changed_edges: int, index: CSRDistanceIndex
    ) -> float:
        """Estimated cost of repairing ``index`` for a netted edge delta.

        Repair touches each indexed row once per changed edge in the worst
        case (affected-region detection is per row), hence the
        ``edges × rows`` product.
        """
        return num_changed_edges * index.num_rows * self.seconds_per_delta_edge

    def delta_repair_wins(
        self, num_changed_edges: int, index: CSRDistanceIndex
    ) -> bool:
        """Whether repairing beats rebuilding the multi-source BFS."""
        rebuild = index.size_in_entries * self.seconds_per_index_entry
        return self.delta_repair_seconds(num_changed_edges, index) < rebuild

    def spawn_seconds(self, num_workers: int) -> float:
        """Estimated pool spawn overhead for ``num_workers`` processes."""
        if num_workers <= 1:
            return 0.0
        return (
            self.spawn_overhead_base
            + self.spawn_overhead_per_worker * num_workers
        )

    @classmethod
    def from_benchmark(
        cls, path: Union[str, Path], **overrides: float
    ) -> "CostModel":
        """Calibrate spawn overhead (and, when the records carry
        ``estimated_cost_units``, the seconds-per-cost-unit rate) from a
        ``BENCH_workers.json`` artifact.

        For every (dataset, fraction, algorithm) group the extra wall time
        of each multi-worker run over the single-worker run is attributed
        to pool spawn; a least-squares line through those
        ``(num_workers, extra_seconds)`` points yields the base and
        per-worker constants.  Groups without a ``num_workers=1`` record
        are skipped.  Missing or malformed files fall back to the defaults
        (planning must never fail because a benchmark artifact is absent).
        """
        try:
            payload = json.loads(Path(path).read_text())
            records = payload["records"]
            groups: Dict[Tuple, Dict[int, dict]] = {}
            for record in records:
                key = (
                    record.get("dataset"),
                    record.get("fraction"),
                    record.get("algorithm"),
                )
                groups.setdefault(key, {})[record["num_workers"]] = record

            points: List[Tuple[int, float]] = []
            unit_rates: List[float] = []
            for by_workers in groups.values():
                base_record = by_workers.get(1)
                if base_record is None:
                    continue
                cost_units = base_record.get("estimated_cost_units", 0.0)
                if cost_units:
                    unit_rates.append(base_record["wall_seconds"] / cost_units)
                for workers, record in by_workers.items():
                    if workers > 1:
                        extra = (
                            record["wall_seconds"] - base_record["wall_seconds"]
                        )
                        points.append((workers, max(0.0, extra)))
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return cls(**overrides)

        fields: Dict[str, float] = {}
        if len(points) >= 2:
            n = len(points)
            mean_w = sum(w for w, _ in points) / n
            mean_e = sum(e for _, e in points) / n
            var_w = sum((w - mean_w) ** 2 for w, _ in points)
            if var_w > 0:
                slope = (
                    sum((w - mean_w) * (e - mean_e) for w, e in points) / var_w
                )
                slope = max(0.0, slope)
                fields["spawn_overhead_per_worker"] = slope
                fields["spawn_overhead_base"] = max(0.0, mean_e - slope * mean_w)
        if unit_rates:
            fields["seconds_per_cost_unit"] = sum(unit_rates) / len(unit_rates)
        fields.update(overrides)
        return cls(**fields)

    @classmethod
    def from_observed(cls, registry, **overrides: float) -> "CostModel":
        """Recalibrate from live traffic recorded in a metrics registry.

        ``registry`` is a :class:`~repro.obs.metrics.MetricsRegistry` (or
        any object with a ``snapshot()`` method, or an already-taken
        snapshot dict).  The instrumented planner/executor record
        predicted-cost-units vs. actual-enumeration-seconds, index-build
        entries vs. seconds, delta-repair edge-rows vs. seconds, and
        shipped bytes vs. deserialize seconds; each pair with signal
        recalibrates the corresponding rate constant.  Fields without
        observed signal keep their defaults, and explicit ``overrides``
        win over both — so recalibration degrades gracefully on sparse
        traffic instead of zeroing constants.
        """
        snapshot = registry.snapshot() if hasattr(registry, "snapshot") else registry
        fields = cost_model_fields_from_snapshot(snapshot)
        fields.update(overrides)
        return cls(**fields)


@dataclass
class ShardPlan:
    """One executable unit: a cluster or a contiguous batch slice."""

    kind: str  # "cluster" | "slice"
    positions: List[int]
    estimated_cost: float  # enumeration cost units
    #: Concrete enumeration kernel the executor runs this shard on
    #: ("python" | "numpy"); resolved per shard so ``auto`` can route only
    #: the heavy shards to the vectorized substrate.
    kernel: str = "python"

    def __post_init__(self) -> None:
        require(self.kind in ("cluster", "slice"), f"unknown shard kind {self.kind!r}")


@dataclass
class ExecutionPlan:
    """Everything the executor needs to run a batch, decided up front.

    The serialized index payload and the prebuilt workload/clusters are
    runtime handles (excluded from ``repr``); the remaining fields are the
    inspectable planning outcome that :meth:`describe` renders and the
    tests assert on.
    """

    algorithm: str
    gamma: float
    requested_workers: NumWorkers
    num_workers: int
    shards: List[ShardPlan]
    ship_index: bool
    index_payload_bytes: int
    estimated_sequential_seconds: float
    estimated_parallel_seconds: float
    estimated_spawn_seconds: float
    estimated_index_ship_seconds: float
    estimated_index_rebuild_seconds: float
    #: ``graph.version`` the plan's sealed snapshot (and index) belong to.
    #: Execution resolves this exact snapshot, so a graph that mutates
    #: between planning and execution never changes what the batch reads.
    graph_version: int = -1
    #: How the plan obtained its distance index: freshly ``"built"``,
    #: reused ``"cached"`` from the planner's previous batch (same
    #: endpoints, same version), or ``"delta"``-repaired from the cached
    #: one via ``CSRDistanceIndex.apply_delta`` (ship-delta).
    index_strategy: str = "built"
    #: How the shipped index payload travels to workers: ``"pickle"``
    #: (inside the task/initializer payload), ``"shm"`` (posted once into a
    #: shared-memory segment that workers map read-only), or ``"none"``
    #: when nothing ships (sequential, rebuild-per-worker, unindexed).
    index_transport: str = "none"
    #: Enumeration kernel for the plan as a whole (what the sequential
    #: fallback runs); per-shard choices live on :attr:`ShardPlan.kernel`.
    kernel: str = "python"
    #: The sealed CSR snapshot every execution artefact was derived from.
    snapshot: Optional[CSRGraph] = field(default=None, repr=False)
    workload: Optional[QueryWorkload] = field(default=None, repr=False)
    clusters: Optional[List[List[int]]] = field(default=None, repr=False)
    index_bytes: Optional[bytes] = field(default=None, repr=False)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_estimated_cost(self) -> float:
        return sum(shard.estimated_cost for shard in self.shards)

    @property
    def stage_timer(self) -> Optional[StageTimer]:
        """Timer that recorded the planning stages (BuildIndex etc.)."""
        return self.workload.stage_timer if self.workload is not None else None

    def describe(self) -> str:
        """Human-readable rendering (what ``engine.explain`` prints)."""
        lines = [
            f"ExecutionPlan[{self.algorithm}]",
            f"  workers:      {self.num_workers} "
            f"(requested {self.requested_workers!r})",
            f"  shards:       {self.num_shards} "
            f"({', '.join(sorted({s.kind for s in self.shards})) or 'none'})",
            f"  index:        "
            + (
                f"ship {self.index_payload_bytes} bytes via "
                f"{self.index_transport}"
                if self.ship_index
                else (
                    "shared in-process (sequential)"
                    if self.num_workers <= 1
                    else "rebuild per worker"
                )
            )
            + f" [{self.index_strategy}]",
            f"  kernel:       {self.kernel}",
            f"  est seq:      {self.estimated_sequential_seconds:.4f}s",
            f"  est parallel: {self.estimated_parallel_seconds:.4f}s "
            f"(spawn {self.estimated_spawn_seconds:.4f}s)",
            f"  est index:    ship {self.estimated_index_ship_seconds:.4f}s"
            f" vs rebuild {self.estimated_index_rebuild_seconds:.4f}s",
        ]
        for shard in self.shards:
            lines.append(
                f"    {shard.kind:<7} positions={shard.positions} "
                f"cost={shard.estimated_cost:.1f}"
            )
        return "\n".join(lines)


def estimate_query_cost(
    query: HCSTQuery,
    index: Optional[CSRDistanceIndex],
    graph: DiGraph,
    algorithm: str,
    side_cost_cache: Optional[Dict[Tuple, float]] = None,
) -> float:
    """Estimated enumeration cost units of one query.

    With an index available the estimate reuses the search-order
    optimiser's per-level frontier model (partial-path counts from the BFS
    level sizes) — the same statistic the "+" variants already trust to
    order their searches.  Without one (per-query baselines where building
    a global index just to plan would cost more than it saves) the estimate
    falls back to an average-branching model capped by the graph size.

    ``side_cost_cache`` memoises the per-(endpoint, budget) side costs —
    computing one requires a full distance-row scan, and real batches
    repeat endpoints heavily, so the planner shares one cache across the
    whole workload.
    """
    forward_budget = query.forward_budget
    backward_budget = query.backward_budget
    if index is not None and index.has_source(query.s) and index.has_target(query.t):
        cache = side_cost_cache if side_cost_cache is not None else {}
        forward_key = ("f", query.s, forward_budget)
        forward_cost = cache.get(forward_key)
        if forward_cost is None:
            forward_cost = estimate_side_cost(
                index.forward_level_sizes(query.s, forward_budget)
            )
            cache[forward_key] = forward_cost
        backward_key = ("b", query.t, backward_budget)
        backward_cost = cache.get(backward_key)
        if backward_cost is None:
            backward_cost = estimate_side_cost(
                index.backward_level_sizes(query.t, backward_budget)
            )
            cache[backward_key] = backward_cost
        structural = forward_cost + backward_cost + 1.0
    else:
        branching = max(1.0, graph.num_edges / max(1, graph.num_vertices))
        cap = float(graph.num_edges * max(1, query.k))
        structural = min(
            branching ** min(forward_budget, 8)
            + branching ** min(backward_budget, 8),
            cap,
        )
    return structural * ALGORITHM_COST_FACTORS.get(algorithm, 1.0)


class QueryPlanner:
    """Builds :class:`ExecutionPlan` objects for a graph + algorithm pair.

    Parameters
    ----------
    graph:
        The data graph (its CSR snapshot anchors the index vertex range).
    algorithm:
        Engine algorithm name (see ``repro.batch.engine.ALGORITHMS``).
    gamma:
        Clustering threshold for the sharing-aware algorithms.
    cost_model:
        Calibration constants; defaults to :class:`CostModel` fitted to the
        repository benchmark data.
    max_workers:
        Upper bound for ``num_workers="auto"`` (defaults to
        ``os.cpu_count()``); explicit integer worker requests are honoured
        beyond it.
    kernel:
        Enumeration substrate policy: ``"auto"`` (default) routes shards
        whose estimated cost clears
        :data:`~repro.enumeration.kernels.AUTO_MIN_COST_UNITS` to the
        vectorized numpy kernel when numpy is importable, ``"python"``
        pins the pure-Python loops, ``"numpy"`` forces vectorized
        (raising at construction when numpy is absent).
    use_shm:
        Shared-memory index transport policy: ``"auto"`` (default) enables
        it when :func:`~repro.graph.shm.shm_available` says the platform
        supports POSIX shared memory; ``False`` pins the pickle transport.
        Passing ``True`` on an unsupported platform degrades to pickle.
    metrics / tracer:
        Telemetry sinks (see :mod:`repro.obs`); default to the no-op
        singletons.  With a live registry every ``plan()`` records the
        index strategy it resolved and the build/delta work it performed —
        the feedback half of :meth:`CostModel.from_observed`.
    """

    def __init__(
        self,
        graph: DiGraph,
        algorithm: str = "batch+",
        gamma: float = 0.5,
        cost_model: Optional[CostModel] = None,
        max_workers: Optional[int] = None,
        kernel: str = "auto",
        use_shm="auto",
        metrics=None,
        tracer=None,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.gamma = gamma
        self.cost_model = cost_model if cost_model is not None else CostModel()
        validate_kernel(kernel)
        self.kernel = kernel
        self.use_shm = (
            shm_available() if use_shm == "auto" else bool(use_shm) and shm_available()
        )
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        require(max_workers >= 1, f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._metrics = resolve_registry(metrics)
        self._tracer = resolve_tracer(tracer)
        self._m_plans = self._metrics.counter("repro_plans_total")
        self._m_plan_seconds = self._metrics.histogram("repro_plan_seconds")
        #: (direction, endpoint, budget) → frozenset neighbourhood, used by
        #: the admission hook; invalidated when the graph version moves.
        self._neighborhood_cache: Dict[Tuple, frozenset] = {}
        self._neighborhood_cache_version = self.graph.version
        #: ``(endpoint key, graph version, index)`` of the previous batch's
        #: distance index — the substrate of the cached / ship-delta
        #: strategies in :meth:`_resolve_index`.
        self._index_cache: Optional[Tuple[Tuple, int, CSRDistanceIndex]] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def plan(
        self,
        queries: Sequence[HCSTQuery],
        num_workers: NumWorkers = "auto",
        pool_ready: bool = False,
        snapshot: Optional[Union[CSRGraph, PinnedSnapshot]] = None,
    ) -> ExecutionPlan:
        """Emit the execution plan for ``queries``.

        ``num_workers`` is either a positive integer (honoured as given) or
        ``"auto"`` (resolved by the cost model).  ``pool_ready`` declares
        that the caller already holds a spawned, reusable
        :class:`~repro.batch.executor.WorkerPool`, so parallel estimates
        carry no pool-spawn overhead — without it, a continuous-ingestion
        micro-batch would be charged a full pool spawn it never pays and
        ``auto`` would stay sequential even when sharding wins.

        ``snapshot`` pins the sealed CSR (or a
        :class:`~repro.graph.snapshots.PinnedSnapshot` holding one) the
        whole plan→execute pipeline reads — the version the batch was
        *admitted* under.  When omitted, the plan seals the graph's current
        head.  Every artefact (index, clusters, cost estimates) is derived
        from that one immutable packing, so graph mutations during or after
        planning never leak into the batch.  An empty batch plans to a
        trivial sequential no-op.
        """
        self._m_plans.inc()
        start = time.perf_counter()
        with self._tracer.span(
            "plan", tags={"queries": len(queries), "algorithm": self.algorithm}
        ):
            plan = self._plan_impl(queries, num_workers, pool_ready, snapshot)
        self._m_plan_seconds.observe(time.perf_counter() - start)
        return plan

    def _plan_impl(
        self,
        queries: Sequence[HCSTQuery],
        num_workers: NumWorkers,
        pool_ready: bool,
        snapshot: Optional[Union[CSRGraph, PinnedSnapshot]],
    ) -> ExecutionPlan:
        num_workers = validate_num_workers(num_workers)
        queries = list(queries)
        model = self.cost_model
        if isinstance(snapshot, PinnedSnapshot):
            snapshot = snapshot.csr
        csr = snapshot if snapshot is not None else self.graph.csr_snapshot()
        pinned_version = csr.version
        if not queries:
            return ExecutionPlan(
                algorithm=self.algorithm,
                gamma=self.gamma,
                requested_workers=num_workers,
                num_workers=1,
                shards=[],
                ship_index=False,
                index_payload_bytes=0,
                estimated_sequential_seconds=0.0,
                estimated_parallel_seconds=0.0,
                estimated_spawn_seconds=0.0,
                estimated_index_ship_seconds=0.0,
                estimated_index_rebuild_seconds=0.0,
                graph_version=pinned_version,
                snapshot=csr,
            )

        clustered = self.algorithm in CLUSTERED_ALGORITHMS
        indexed = self.algorithm in INDEXED_ALGORITHMS

        workload: Optional[QueryWorkload] = None
        clusters: Optional[List[List[int]]] = None
        index: Optional[CSRDistanceIndex] = None
        index_strategy = "built"
        if indexed:
            stage_timer = StageTimer()
            endpoint_key = (
                tuple(sorted({q.s for q in queries})),
                tuple(sorted({q.t for q in queries})),
                max(q.k for q in queries),
            )
            prebuilt, index_strategy = self._resolve_index(
                endpoint_key, csr, stage_timer
            )
            workload = QueryWorkload(
                self.graph,
                queries,
                stage_timer=stage_timer,
                index=prebuilt,
                csr=csr,
            )
            index = workload.index
            self._index_cache = (endpoint_key, pinned_version, index)
            self._metrics.counter(
                PLAN_INDEX_STRATEGY_TOTAL, labels={"strategy": index_strategy}
            ).inc()
            if index_strategy == "built":
                self._metrics.counter(INDEX_BUILD_SECONDS_TOTAL).inc(
                    stage_timer.total("BuildIndex")
                )
                self._metrics.counter(INDEX_BUILD_ENTRIES_TOTAL).inc(
                    index.size_in_entries
                )
        else:
            self._metrics.counter(
                PLAN_INDEX_STRATEGY_TOTAL, labels={"strategy": "none"}
            ).inc()
        if clustered:
            assert workload is not None
            with self._tracer.span("shard", tags={"queries": len(queries)}):
                with workload.stage_timer.stage("ClusterQuery"):
                    clusters = cluster_queries(workload, self.gamma)

        side_cost_cache: Dict[Tuple, float] = {}
        query_costs = [
            estimate_query_cost(query, index, csr, self.algorithm, side_cost_cache)
            for query in queries
        ]

        # Index economics: ship the parent-built flat arrays once per
        # worker (over the cheaper of pickle and shared memory), or let
        # each worker re-run BFS over its shard?
        index_bytes: Optional[bytes] = None
        payload_size = 0
        ship_seconds = 0.0
        rebuild_seconds = 0.0
        ship_index = False
        index_transport = "none"
        if index is not None:
            payload_size = index.nbytes
            pickle_seconds = payload_size * model.seconds_per_shipped_byte
            if self.use_shm:
                shm_seconds = (
                    model.shm_segment_overhead_seconds
                    + payload_size * model.seconds_per_shm_byte
                )
            else:
                shm_seconds = float("inf")
            if shm_seconds < pickle_seconds:
                ship_seconds, index_transport = shm_seconds, "shm"
            else:
                ship_seconds, index_transport = pickle_seconds, "pickle"
            rebuild_seconds = (
                index.size_in_entries * model.seconds_per_index_entry
            )
            ship_index = ship_seconds < rebuild_seconds

        resolved = self._resolve_workers(
            num_workers,
            query_costs,
            clusters,
            ship_seconds,
            rebuild_seconds,
            pool_ready=pool_ready,
        )
        shards = self._build_shards(query_costs, clusters, resolved)
        ship_index = ship_index and resolved > 1
        if not ship_index:
            index_transport = "none"
        if ship_index and index is not None:
            index_bytes = index.to_bytes()
            payload_size = len(index_bytes)
            if index_transport == "shm":
                self._metrics.counter(
                    PLAN_INDEX_STRATEGY_TOTAL, labels={"strategy": "shm"}
                ).inc()

        total_cost = sum(query_costs)
        plan_kernel = "python"
        if self.algorithm in KERNELIZED_ALGORITHMS:
            plan_kernel = resolve_kernel(self.kernel, total_cost)
            for shard in shards:
                shard.kernel = resolve_kernel(self.kernel, shard.estimated_cost)
                self._metrics.counter(
                    "repro_plan_kernel_total", labels={"kernel": shard.kernel}
                ).inc()
        per_worker_index = ship_seconds if ship_index else rebuild_seconds
        return ExecutionPlan(
            algorithm=self.algorithm,
            gamma=self.gamma,
            requested_workers=num_workers,
            num_workers=resolved,
            shards=shards,
            ship_index=ship_index,
            index_payload_bytes=payload_size,
            estimated_sequential_seconds=total_cost * model.seconds_per_cost_unit,
            estimated_parallel_seconds=self._parallel_seconds(
                resolved, shards, per_worker_index, pool_ready=pool_ready
            ),
            estimated_spawn_seconds=(
                0.0 if pool_ready else model.spawn_seconds(resolved)
            ),
            estimated_index_ship_seconds=ship_seconds,
            estimated_index_rebuild_seconds=rebuild_seconds,
            graph_version=pinned_version,
            index_strategy=index_strategy,
            index_transport=index_transport,
            kernel=plan_kernel,
            snapshot=csr,
            workload=workload,
            clusters=clusters,
            index_bytes=index_bytes,
        )

    def _resolve_index(
        self, endpoint_key: Tuple, csr: CSRGraph, stage_timer: StageTimer
    ) -> Tuple[Optional[CSRDistanceIndex], str]:
        """Pick the cheapest way to obtain this batch's distance index.

        Three-way decision: reuse the previous batch's index verbatim when
        endpoints and snapshot version both match (``"cached"``);
        delta-repair a copy of it when only the version moved, the snapshot
        store can net the edge changes, and the cost model says repair
        beats a fresh multi-source BFS (``"delta"`` — the ship-delta
        option); otherwise fall through to a fresh build (``"built"``,
        returned as ``None`` so the workload builds lazily).
        """
        cached = self._index_cache
        if cached is None:
            return None, "built"
        cached_key, cached_version, cached_index = cached
        if (
            cached_key != endpoint_key
            or cached_index.num_vertices != csr.num_vertices
        ):
            return None, "built"
        if cached_version == csr.version:
            return cached_index, "cached"
        store = getattr(self.graph, "snapshots", None)
        if store is None:
            return None, "built"
        delta = store.delta(cached_version, csr.version)
        if delta is None:
            return None, "built"
        added, removed = delta
        if not self.cost_model.delta_repair_wins(
            len(added) + len(removed), cached_index
        ):
            return None, "built"
        start = time.perf_counter()
        with stage_timer.stage("BuildIndex"):
            repaired = cached_index.copy().apply_delta(csr, added, removed)
        self._metrics.counter(INDEX_DELTA_SECONDS_TOTAL).inc(
            time.perf_counter() - start
        )
        self._metrics.counter(INDEX_DELTA_EDGE_ROWS_TOTAL).inc(
            (len(added) + len(removed)) * cached_index.num_rows
        )
        return repaired, "delta"

    # ------------------------------------------------------------------ #
    # Admission hook (continuous ingestion)
    # ------------------------------------------------------------------ #
    def admission_score(
        self, query: HCSTQuery, pending: Sequence[HCSTQuery]
    ) -> float:
        """Estimated sharing payoff of merging ``query`` into ``pending``.

        This is the cost hook behind the ingestion service's "join pending
        cluster" fast path: the maximum pairwise similarity µ (Definition
        4.5, harmonic mean of the forward/backward hop-constrained
        neighbourhood overlaps) between the arriving query and any query of
        the not-yet-dispatched micro-batch.  A high score means the two
        queries explore the same region of the graph, so admitting the
        arrival into the in-flight batch lets ``ClusterQuery`` put them in
        one cluster and share HC-s path enumeration.

        Neighbourhoods are k-hop BFS frontiers computed on demand and
        memoised per ``(direction, endpoint, budget)`` — continuous traffic
        repeats endpoints heavily, so steady-state admission decisions cost
        two dict probes plus |pending| set intersections.  The memo is
        dropped when the graph version moves.  An empty ``pending`` scores
        0.0.
        """
        if not pending:
            return 0.0
        forward = self._neighborhood("f", query.s, query.k)
        backward = self._neighborhood("b", query.t, query.k)
        best = 0.0
        for other in pending:
            mu = similarity_from_neighborhoods(
                forward,
                backward,
                self._neighborhood("f", other.s, other.k),
                self._neighborhood("b", other.t, other.k),
            )
            if mu > best:
                best = mu
                if best >= 1.0:
                    break
        return best

    def _neighborhood(
        self, direction: str, endpoint: int, budget: int
    ) -> frozenset:
        """Memoised Γ (``direction="f"``) / Γr (``"b"``) frontier."""
        if self._neighborhood_cache_version != self.graph.version:
            self._neighborhood_cache.clear()
            self._neighborhood_cache_version = self.graph.version
        key = (direction, endpoint, budget)
        cached = self._neighborhood_cache.get(key)
        if cached is None:
            cached = frozenset(
                bfs_distances(
                    self.graph,
                    endpoint,
                    max_hops=budget,
                    forward=direction == "f",
                )
            )
            while len(self._neighborhood_cache) >= NEIGHBORHOOD_CACHE_LIMIT:
                self._neighborhood_cache.pop(
                    next(iter(self._neighborhood_cache))
                )
            self._neighborhood_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _build_shards(
        self,
        query_costs: List[float],
        clusters: Optional[List[List[int]]],
        num_workers: int,
    ) -> List[ShardPlan]:
        if clusters is not None:
            return [
                ShardPlan(
                    kind="cluster",
                    positions=sorted(cluster),
                    estimated_cost=sum(query_costs[p] for p in cluster),
                )
                for cluster in clusters
            ]
        slices = _contiguous_slices(list(range(len(query_costs))), num_workers)
        return [
            ShardPlan(
                kind="slice",
                positions=chunk,
                estimated_cost=sum(query_costs[p] for p in chunk),
            )
            for chunk in slices
        ]

    def _makespan(
        self,
        query_costs: List[float],
        clusters: Optional[List[List[int]]],
        num_workers: int,
    ) -> float:
        """Estimated cost units of the busiest worker under ``num_workers``.

        Clusters land on workers in ``as_completed`` order, modelled as an
        LPT greedy assignment; per-query algorithms are split into the same
        contiguous slices the executor will actually run.
        """
        if clusters is not None:
            costs = [
                sum(query_costs[p] for p in cluster) for cluster in clusters
            ]
            return _lpt_makespan(costs, num_workers)
        slices = _contiguous_slices(list(range(len(query_costs))), num_workers)
        if not slices:
            return 0.0
        return max(sum(query_costs[p] for p in chunk) for chunk in slices)

    def _parallel_seconds(
        self,
        num_workers: int,
        shards: List[ShardPlan],
        per_worker_index_seconds: float,
        pool_ready: bool = False,
    ) -> float:
        model = self.cost_model
        costs = [shard.estimated_cost for shard in shards]
        if num_workers <= 1 or not shards:
            return sum(costs) * model.seconds_per_cost_unit
        return (
            (0.0 if pool_ready else model.spawn_seconds(num_workers))
            + per_worker_index_seconds
            + _lpt_makespan(costs, num_workers) * model.seconds_per_cost_unit
        )

    def _resolve_workers(
        self,
        requested: NumWorkers,
        query_costs: List[float],
        clusters: Optional[List[List[int]]],
        ship_seconds: float,
        rebuild_seconds: float,
        pool_ready: bool = False,
    ) -> int:
        if requested != "auto":
            return int(requested)
        model = self.cost_model
        sequential_seconds = sum(query_costs) * model.seconds_per_cost_unit
        max_useful = len(clusters) if clusters is not None else len(query_costs)
        limit = min(self.max_workers, max_useful)
        per_worker_index = min(ship_seconds, rebuild_seconds)

        best_workers = 1
        best_seconds = sequential_seconds
        for candidate in range(2, limit + 1):
            estimate = (
                (0.0 if pool_ready else model.spawn_seconds(candidate))
                + per_worker_index
                + self._makespan(query_costs, clusters, candidate)
                * model.seconds_per_cost_unit
            )
            if estimate < best_seconds:
                best_seconds = estimate
                best_workers = candidate
        if (
            best_workers > 1
            and best_seconds > sequential_seconds * model.parallel_benefit_margin
        ):
            # Predicted win is within the margin of estimation error: play
            # it safe, the sequential plan can never be a regression.
            return 1
        return best_workers


def _contiguous_slices(positions: List[int], num_workers: int) -> List[List[int]]:
    """Split ``positions`` into at most ``num_workers`` contiguous,
    near-equal slices (empty slices are dropped)."""
    count = len(positions)
    shard_count = min(num_workers, count)
    if shard_count == 0:
        return []
    base, extra = divmod(count, shard_count)
    slices: List[List[int]] = []
    start = 0
    for shard in range(shard_count):
        size = base + (1 if shard < extra else 0)
        if size:
            slices.append(positions[start:start + size])
        start += size
    return slices
