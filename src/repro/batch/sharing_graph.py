"""The query sharing graph Ψ (Definition 4.7).

Ψ is a DAG whose nodes are either HC-s-t path queries (identified by their
position in the batch) or HC-s path queries, and whose edges point from a
*provider* (a HC-s path query whose materialised results can be reused) to
a *consumer* (the query whose enumeration splices those results in).
``BatchEnum`` processes nodes in topological order so every provider is
materialised before any of its consumers runs, and evicts a provider's
cached results once all of its consumers have been processed.

The detection algorithm only ever adds edges that keep Ψ acyclic; the graph
nevertheless exposes :meth:`would_create_cycle` as a guard because a cyclic
Ψ would make the shared enumeration unschedulable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Union

from repro.queries.query import Direction, HCsPathQuery
from repro.utils.validation import require


@dataclass(frozen=True, order=True)
class QueryNode:
    """A node of Ψ representing the HC-s-t path query at batch position
    ``position`` (one per direction-specific sharing graph)."""

    position: int

    def __str__(self) -> str:
        return f"Q#{self.position}"


#: Ψ nodes are either HC-s-t query markers or HC-s path queries.
NodeType = Union[QueryNode, HCsPathQuery]


class QuerySharingGraph:
    """Directed acyclic graph of computation-sharing relations."""

    def __init__(self, direction: Direction) -> None:
        self.direction = direction
        self._out: Dict[NodeType, List[NodeType]] = {}
        self._in: Dict[NodeType, List[NodeType]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: NodeType) -> None:
        if isinstance(node, HCsPathQuery):
            require(
                node.direction is self.direction,
                f"node {node} has direction {node.direction}, expected {self.direction}",
            )
        if node not in self._out:
            self._out[node] = []
            self._in[node] = []

    def add_edge(self, provider: NodeType, consumer: NodeType) -> None:
        """Add the edge ``provider -> consumer``.

        Raises ``ValueError`` if the edge would introduce a cycle; duplicate
        edges are ignored.
        """
        require(provider != consumer, "a query cannot provide for itself")
        self.add_node(provider)
        self.add_node(consumer)
        if consumer in self._out[provider]:
            return
        require(
            not self.would_create_cycle(provider, consumer),
            f"edge {provider} -> {consumer} would create a cycle in Ψ",
        )
        self._out[provider].append(consumer)
        self._in[consumer].append(provider)

    def would_create_cycle(self, provider: NodeType, consumer: NodeType) -> bool:
        """True if adding ``provider -> consumer`` closes a cycle, i.e. if
        ``provider`` is already reachable from ``consumer``."""
        if provider not in self._out or consumer not in self._out:
            return False
        stack = [consumer]
        visited: Set[NodeType] = set()
        while stack:
            node = stack.pop()
            if node == provider:
                return True
            if node in visited:
                continue
            visited.add(node)
            stack.extend(self._out[node])
        return False

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def __contains__(self, node: NodeType) -> bool:
        return node in self._out

    def nodes(self) -> Iterator[NodeType]:
        return iter(self._out)

    def providers_of(self, node: NodeType) -> List[NodeType]:
        """In-neighbours: the HC-s path queries whose results ``node`` reuses."""
        return list(self._in.get(node, []))

    def consumers_of(self, node: NodeType) -> List[NodeType]:
        """Out-neighbours: the queries that reuse ``node``'s results."""
        return list(self._out.get(node, []))

    def hc_s_path_nodes(self) -> List[HCsPathQuery]:
        return [node for node in self._out if isinstance(node, HCsPathQuery)]

    def query_nodes(self) -> List[QueryNode]:
        return [node for node in self._out if isinstance(node, QueryNode)]

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return sum(len(targets) for targets in self._out.values())

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[NodeType]:
        """Kahn topological order: providers before their consumers.

        Deterministic: ties are broken by node ordering so repeated runs
        enumerate in the same order.
        """
        in_degree = {node: len(self._in[node]) for node in self._out}
        ready = sorted(
            (node for node, degree in in_degree.items() if degree == 0),
            key=_node_sort_key,
        )
        order: List[NodeType] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            newly_ready: List[NodeType] = []
            for consumer in self._out[node]:
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    newly_ready.append(consumer)
            if newly_ready:
                ready.extend(newly_ready)
                ready.sort(key=_node_sort_key)
        require(
            len(order) == len(self._out),
            "Ψ contains a cycle; the detection phase should never produce one",
        )
        return order

    def is_dag(self) -> bool:
        try:
            self.topological_order()
        except ValueError:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"QuerySharingGraph({self.direction.value}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


def _node_sort_key(node: NodeType):
    if isinstance(node, HCsPathQuery):
        return (0, node.vertex, node.budget)
    return (1, node.position, 0)
