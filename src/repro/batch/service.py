"""Continuous-ingestion micro-batch service on top of the streaming engine.

The batch engine answers one *closed* batch: every query is known before
``run``/``stream`` starts.  A production front door faces the opposite
shape — queries arrive continuously, and a new arrival should neither wait
for an entire in-flight batch to finish nor pay a full batch pipeline all
by itself.  :class:`IngestionService` bridges the two with micro-batching:

1. ``submit(query)`` enqueues the query and immediately returns a
   :class:`QueryTicket`; the caller blocks only when it chooses to
   (``ticket.result(timeout=...)``).
2. A single background scheduler thread groups pending queries into
   micro-batches under an :class:`AdmissionPolicy`: a batch is dispatched
   when it reaches ``max_batch_size`` or when ``max_delay_s`` has passed
   since its first query arrived — the classic latency/throughput dial.
3. The **join-pending-cluster fast path**: just before dispatch, queries
   still queued behind the batch are scored by the planner's similarity
   model (:meth:`~repro.batch.planner.QueryPlanner.admission_score`); an
   arrival whose hop-constrained neighbourhood overlaps a batch member's
   (µ ≥ ``join_similarity``) is merged into the not-yet-dispatched batch
   even past the size/deadline cut, because sharing its enumeration with
   the cluster it resembles is cheaper than starting a new batch for it.
4. Each micro-batch flows through the existing plan→execute pipeline
   (:meth:`~repro.batch.engine.BatchQueryEngine.stream_planned`) with
   ``ordered=False``, so a ticket resolves the moment the shard/cluster
   owning its position completes — never at batch rank order.  Parallel
   plans reuse one persistent :class:`~repro.batch.executor.WorkerPool`
   across micro-batches instead of spawning a process pool per batch.

Error and lifecycle semantics
-----------------------------
* A failure inside a micro-batch resolves every still-unresolved ticket of
  that batch with the exception (tickets whose results had already flushed
  keep them); the scheduler itself survives and keeps serving later
  batches.  Shards of the failed batch that were already running on the
  shared pool finish in the background (a process pool cannot kill a
  running task) — their slots free up as they complete.
* ``max_pending`` applies backpressure: ``submit`` blocks (or raises
  :class:`ServiceOverloadedError` with ``block=False``) while the queue is
  full.
* ``close(drain=True)`` stops admission, lets the scheduler work off the
  queue, then joins the thread and the worker pool — no orphaned workers.
  ``close(drain=False)`` fails queued-but-undispatched tickets with
  :class:`ServiceClosedError`; the batch already in flight still resolves.

Lock discipline
---------------
State shared between API callers and the scheduler thread is declared in
the class-level ``IngestionService._GUARDED_BY_LOCK`` frozenset, and every
access to a declared attribute must sit inside ``with self._lock:``.  The
declaration is machine-readable: rule RA001 of ``python -m repro.analysis``
enforces it in CI, so adding a method that reads a counter without the
lock fails the build instead of waiting for an unlucky interleaving.  When
adding shared state, add its name to the set; thread-confined state (like
the scheduler-owned ``_pool``) stays out.

>>> from repro.graph.generators import paper_example_graph
>>> from repro.queries.query import HCSTQuery
>>> with serve(paper_example_graph(), algorithm="batch+") as service:
...     ticket = service.submit(HCSTQuery(0, 11, 5))
...     len(ticket.result(timeout=30.0))
3
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Optional, Sequence

from repro.batch.engine import BatchQueryEngine
from repro.batch.planner import CostModel, NumWorkers, QueryPlanner
from repro.batch.results import SharingStats
from repro.enumeration.paths import Path
from repro.graph.digraph import DiGraph
from repro.obs.metrics import resolve_registry
from repro.obs.tracing import resolve_tracer
from repro.queries.query import HCSTQuery
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.executor import WorkerPool


class ServiceClosedError(RuntimeError):
    """The service no longer accepts queries (``close`` was called)."""


class ServiceOverloadedError(RuntimeError):
    """``submit(block=False)`` found the pending queue at ``max_pending``."""


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs governing how arrivals are grouped into micro-batches.

    Attributes
    ----------
    max_batch_size:
        Dispatch a micro-batch as soon as this many queries are waiting
        (``1`` degenerates to one-query-per-batch serving).
    max_delay_s:
        Dispatch at most this long after a batch's first query arrived,
        even if the batch is not full — bounds added ticket latency.
    max_pending:
        Backpressure bound on queued-but-undispatched queries; ``submit``
        blocks (or raises with ``block=False``) beyond it.
    join_pending:
        Enable the join-pending-cluster fast path.
    join_similarity:
        Minimum planner similarity µ for an arrival to join the
        not-yet-dispatched batch past the size/deadline cut.  ``1.0``
        effectively restricts joining to duplicate-neighbourhood queries;
        lower values merge more aggressively.
    join_limit:
        Cap on fast-path joins per batch (``None`` → ``max_batch_size``),
        so one popular region cannot grow a batch without bound.
    join_scan_limit:
        Cap on queued *candidates examined* per batch by the fast path.
        Scoring a candidate costs up to two k-hop BFS traversals on a cold
        memo, so scanning an entire deep queue would stall a batch that is
        already past its deadline — the scan stops after this many
        candidates regardless of how few joined.
    """

    max_batch_size: int = 32
    max_delay_s: float = 0.02
    max_pending: int = 1024
    join_pending: bool = True
    join_similarity: float = 0.6
    join_limit: Optional[int] = None
    join_scan_limit: int = 64

    def __post_init__(self) -> None:
        require(self.max_batch_size >= 1, "max_batch_size must be >= 1")
        require(self.max_delay_s >= 0.0, "max_delay_s must be >= 0")
        require(self.max_pending >= 1, "max_pending must be >= 1")
        require(
            0.0 <= self.join_similarity <= 1.0,
            "join_similarity must be within [0, 1]",
        )
        require(
            self.join_limit is None or self.join_limit >= 0,
            "join_limit must be None or >= 0",
        )
        require(self.join_scan_limit >= 0, "join_scan_limit must be >= 0")

    @property
    def effective_join_limit(self) -> int:
        return (
            self.max_batch_size if self.join_limit is None else self.join_limit
        )


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time snapshot of a service's counters.

    ``mean_batch_size`` > 1 is micro-batching actually happening;
    ``sharing`` accumulates the per-batch :class:`SharingStats`, so
    ``sharing.cache_reuse_count`` > 0 means cross-query sharing survived
    the move from closed batches to continuous ingestion.

    ``mean_ticket_latency_s`` averages over *successfully resolved*
    tickets only: failed and abandoned tickets carry no meaningful
    service latency (a drain-on-close failure would register near-zero,
    a deadline-expired one near-infinite) and would skew the mean either
    way.  For percentiles, opt into a metrics registry
    (``repro_service_ticket_latency_seconds``).
    """

    admitted: int
    completed: int
    failed: int
    pending: int
    batches_dispatched: int
    joined_fast_path: int
    mean_batch_size: float
    mean_ticket_latency_s: float
    sharing: SharingStats


class QueryTicket:
    """Handle for one submitted query.

    Resolution is edge-triggered through a :class:`threading.Event`; the
    ticket is resolved exactly once, either with the query's paths or with
    the exception that killed its micro-batch.
    """

    __slots__ = ("query", "submitted_at", "enqueued_at", "resolved_at",
                 "_event", "_paths", "_error")

    def __init__(self, query: HCSTQuery) -> None:
        self.query = query
        self.submitted_at = time.perf_counter()
        #: Monotonic enqueue stamp — anchors the scheduler's delay window
        #: (a batch dispatches at most ``max_delay_s`` after *this*, not
        #: after the scheduler got around to collecting).
        self.enqueued_at = time.monotonic()
        self.resolved_at: Optional[float] = None
        self._event = threading.Event()
        self._paths: Optional[List[Path]] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """True once the ticket has resolved (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> List[Path]:
        """Block until resolution and return the query's paths.

        Raises ``TimeoutError`` if the ticket has not resolved within
        ``timeout`` seconds, or re-raises the exception that failed the
        ticket's micro-batch.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"ticket for {self.query} unresolved after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._paths is not None
        return list(self._paths)

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-resolution latency (None while unresolved)."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.submitted_at

    def _resolve(self, paths: List[Path]) -> None:
        self._paths = paths
        self.resolved_at = time.perf_counter()
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.resolved_at = time.perf_counter()
        self._event.set()

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.done()
            else ("failed" if self._error is not None else "resolved")
        )
        return f"QueryTicket({self.query}, {state})"


class IngestionService:
    """Micro-batch scheduler serving a continuous query stream.

    Parameters mirror :class:`BatchQueryEngine` (``graph``, ``algorithm``,
    ``gamma``, ``num_workers``, ``cost_model``, ``max_workers``) plus the
    :class:`AdmissionPolicy`.  The scheduler thread starts immediately
    unless ``start=False`` (tests use a stopped service to exercise
    backpressure deterministically).  Use as a context manager for a
    drain-then-join shutdown.
    """

    # Shared mutable state, touched by API callers and the scheduler
    # thread alike; RA001 (``python -m repro.analysis``) statically rejects
    # any access outside ``with self._lock:``.  ``_pool`` is deliberately
    # absent: it is confined to the scheduler thread (created, used and
    # shut down there only), so guarding it would just add lock traffic.
    _GUARDED_BY_LOCK = frozenset(
        {
            "_pending",
            "_closing",
            "_drain_on_close",
            "_thread",
            "_admitted",
            "_completed",
            "_failed",
            "_batches_dispatched",
            "_batched_total",
            "_joined_fast_path",
            "_latency_total_s",
            "_latency_count",
            "_sharing",
        }
    )

    def __init__(
        self,
        graph: DiGraph,
        algorithm: str = "batch+",
        gamma: float = 0.5,
        num_workers: NumWorkers = "auto",
        policy: Optional[AdmissionPolicy] = None,
        cost_model: Optional[CostModel] = None,
        max_workers: Optional[int] = None,
        kernel: str = "auto",
        use_shm="auto",
        start: bool = True,
        metrics=None,
        tracer=None,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._metrics = resolve_registry(metrics)
        self._tracer = resolve_tracer(tracer)
        self._engine = BatchQueryEngine(
            graph,
            algorithm=algorithm,
            gamma=gamma,
            num_workers=num_workers,
            cost_model=cost_model,
            max_workers=max_workers,
            kernel=kernel,
            use_shm=use_shm,
            metrics=metrics,
            tracer=tracer,
        )
        # One planner serves both admission scoring (its neighbourhood memo
        # pays off under repeated endpoints) and per-batch planning.
        self._planner = QueryPlanner(
            graph,
            algorithm=algorithm,
            gamma=gamma,
            cost_model=cost_model,
            max_workers=max_workers,
            kernel=kernel,
            use_shm=use_shm,
            metrics=metrics,
            tracer=tracer,
        )
        self._num_workers = self._engine.num_workers
        self._lock = threading.Condition()
        self._pending: Deque[QueryTicket] = deque()
        self._closing = False
        self._drain_on_close = True
        self._thread: Optional[threading.Thread] = None
        self._pool: "WorkerPool | None" = None
        # Counters (declared in _GUARDED_BY_LOCK; RA001-enforced).
        self._admitted = 0
        self._completed = 0
        self._failed = 0
        self._batches_dispatched = 0
        self._batched_total = 0
        self._joined_fast_path = 0
        self._latency_total_s = 0.0
        self._latency_count = 0
        self._sharing = SharingStats()
        # Prefetched metric handles (no-ops unless a registry was passed);
        # thread-safe in their own right, so updated outside self._lock.
        self._m_admitted = self._metrics.counter("repro_service_admitted_total")
        self._m_completed = self._metrics.counter("repro_service_completed_total")
        self._m_failed = self._metrics.counter("repro_service_failed_total")
        self._m_batches = self._metrics.counter("repro_service_batches_total")
        self._m_joins = self._metrics.counter("repro_service_admission_join_total")
        self._m_queue_depth = self._metrics.gauge("repro_service_queue_depth")
        self._m_latency = self._metrics.histogram(
            "repro_service_ticket_latency_seconds"
        )
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> DiGraph:
        return self._engine.graph

    @property
    def algorithm(self) -> str:
        return self._engine.algorithm

    def start(self) -> "IngestionService":
        """Start the scheduler thread (idempotent; raises after close)."""
        with self._lock:
            require(not self._closing, "service is closed", ServiceClosedError)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._scheduler_loop,
                    name="repro-ingestion-scheduler",
                    daemon=True,
                )
                self._thread.start()
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admission and shut the scheduler down (idempotent).

        With ``drain=True`` (default) queued queries are still served
        before the scheduler exits; with ``drain=False`` queued tickets
        fail with :class:`ServiceClosedError` (the micro-batch already in
        flight, if any, resolves normally either way).  Blocks until the
        scheduler thread and the worker pool are joined (bounded by
        ``timeout`` on the thread join).
        """
        with self._lock:
            self._closing = True
            self._drain_on_close = drain
            thread = self._thread
            self._lock.notify_all()
        if thread is not None:
            thread.join(timeout)
        else:
            # Never started: no thread will ever serve the queue.
            self._fail_pending(ServiceClosedError("service closed unstarted"))
            self._shutdown_pool()

    def __enter__(self) -> "IngestionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        query: HCSTQuery,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> QueryTicket:
        """Enqueue ``query`` and return its :class:`QueryTicket`.

        Applies the policy's ``max_pending`` backpressure: when the queue
        is full, ``block=True`` waits for space (``TimeoutError`` after
        ``timeout`` seconds) and ``block=False`` raises
        :class:`ServiceOverloadedError` immediately.  Raises
        :class:`ServiceClosedError` once the service is closing.
        """
        require(
            isinstance(query, HCSTQuery),
            f"submit expects an HCSTQuery, got {type(query).__name__}",
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                require(
                    not self._closing, "service is closed", ServiceClosedError
                )
                if len(self._pending) < self.policy.max_pending:
                    break
                require(
                    block,
                    f"pending queue is full ({self.policy.max_pending})",
                    ServiceOverloadedError,
                )
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        "timed out waiting for pending-queue space"
                    )
                self._lock.wait(remaining)
            ticket = QueryTicket(query)
            self._pending.append(ticket)
            self._admitted += 1
            self._m_queue_depth.set(len(self._pending))
            self._lock.notify_all()
        self._m_admitted.inc()
        return ticket

    def submit_many(
        self, queries: Sequence[HCSTQuery], block: bool = True
    ) -> List[QueryTicket]:
        """Submit ``queries`` in order, returning one ticket each."""
        return [self.submit(query, block=block) for query in queries]

    def stats(self) -> ServiceStats:
        """Consistent point-in-time :class:`ServiceStats` snapshot."""
        with self._lock:
            sharing = SharingStats()
            sharing.merge(self._sharing)
            return ServiceStats(
                admitted=self._admitted,
                completed=self._completed,
                failed=self._failed,
                pending=len(self._pending),
                batches_dispatched=self._batches_dispatched,
                joined_fast_path=self._joined_fast_path,
                mean_batch_size=(
                    self._batched_total / self._batches_dispatched
                    if self._batches_dispatched
                    else 0.0
                ),
                mean_ticket_latency_s=(
                    self._latency_total_s / self._latency_count
                    if self._latency_count
                    else 0.0
                ),
                sharing=sharing,
            )

    # ------------------------------------------------------------------ #
    # Scheduler internals (single background thread)
    # ------------------------------------------------------------------ #
    def _scheduler_loop(self) -> None:
        try:
            while True:
                batch = self._collect_batch()
                if batch is None:
                    break
                self._dispatch(batch)
        finally:
            # Runs on normal shutdown AND if the loop ever dies
            # unexpectedly: queued tickets must never hang forever and the
            # worker pool must never be orphaned.
            self._fail_pending(
                ServiceClosedError("service closed without drain")
            )
            self._shutdown_pool()

    def _collect_batch(self) -> Optional[List[QueryTicket]]:
        """Block until a micro-batch is due, pop and return it.

        Returns ``None`` when the scheduler should exit: the service is
        closing and either the queue is empty or draining was declined.
        """
        policy = self.policy
        with self._lock:
            while not self._pending and not self._closing:
                self._lock.wait()
            if not self._pending or (self._closing and not self._drain_on_close):
                return None
            # The first waiting query's *arrival* anchors the delay window
            # (if a long dispatch kept the scheduler busy past it, the
            # batch goes out immediately); arrivals keep joining until the
            # batch is full or the window closes.  A closing service
            # dispatches immediately (drain fast).
            deadline = self._pending[0].enqueued_at + policy.max_delay_s
            while (
                len(self._pending) < policy.max_batch_size
                and not self._closing
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._lock.wait(remaining)
            if self._closing and not self._drain_on_close:
                # close(drain=False) landed during the delay window: these
                # queries were never in flight, so they must fail, not run.
                return None
            batch = [
                self._pending.popleft()
                for _ in range(min(policy.max_batch_size, len(self._pending)))
            ]
            self._m_queue_depth.set(len(self._pending))
            candidates = (
                [
                    ticket
                    for ticket, _ in zip(
                        self._pending, range(policy.join_scan_limit)
                    )
                ]
                if policy.join_pending and not self._closing
                else []
            )
            self._lock.notify_all()  # space freed: wake blocked submitters
        joined = self._join_pending_cluster(batch, candidates)
        if joined:
            with self._lock:
                for ticket in joined:
                    self._pending.remove(ticket)
                self._joined_fast_path += len(joined)
                self._m_queue_depth.set(len(self._pending))
                batch.extend(joined)
                self._lock.notify_all()
            self._m_joins.inc(len(joined))
        return batch

    def _join_pending_cluster(
        self, batch: List[QueryTicket], candidates: List[QueryTicket]
    ) -> List[QueryTicket]:
        """The fast path: pick queued queries whose similarity to the
        not-yet-dispatched batch clears the policy threshold.

        Scoring runs outside the lock (a k-hop BFS per novel endpoint);
        that is safe because this scheduler thread is the only consumer of
        the queue — a scored candidate can be admitted by no one else.
        """
        policy = self.policy
        budget = policy.effective_join_limit
        if not candidates or budget <= 0:
            return []
        batch_queries = [ticket.query for ticket in batch]
        joined: List[QueryTicket] = []
        for ticket in candidates:
            if len(joined) >= budget:
                break
            try:
                score = self._planner.admission_score(
                    ticket.query, batch_queries
                )
            except Exception:
                # An unscorable query (e.g. endpoints outside the graph)
                # must not kill the scheduler: leave it queued — it will
                # fail inside its own batch, resolving its ticket with the
                # real error.
                continue
            if score >= policy.join_similarity:
                joined.append(ticket)
                batch_queries.append(ticket.query)
        return joined

    def _dispatch(self, batch: List[QueryTicket]) -> None:
        """Run one micro-batch through plan→execute, resolving tickets as
        positions flush (``ordered=False``: first completion wins).

        Wrapped in the trace's root ``batch`` span: the planner's ``plan``/
        ``shard`` spans, the executor's ``ship``/``merge`` spans and the
        worker-side ``enumerate`` spans (reparented on merge) all hang off
        it, one trace per micro-batch.
        """
        with self._tracer.span(
            "batch",
            tags={"queries": len(batch), "algorithm": self.algorithm},
        ):
            self._dispatch_traced(batch)

    def _dispatch_traced(self, batch: List[QueryTicket]) -> None:
        queries = [ticket.query for ticket in batch]
        resolved = 0
        latency_sum = 0.0
        latency_count = 0
        pin = None
        try:
            # Pin the admitted version exactly once — one atomic seal of
            # the head — and thread that single snapshot through plan, pool
            # and execute.  (The old code compared ``self.graph.version``
            # against the pool and then planned against whatever the graph
            # had become by then: a mutation landing between the check and
            # the plan ran the batch against a version it never checked.)
            pin = self.graph.snapshots.pin()
            if (
                self._pool is not None
                and self._pool.graph_version != pin.version
            ):
                # The graph mutated since the pool spawned; its workers
                # hold a pickled copy of the older snapshot, so recycle it
                # — the respawn below initialises against this batch's pin.
                self._shutdown_pool()
            # Plan as if the pool were already up even before the first
            # spawn: for a long-running service the spawn is a one-time
            # cost amortized over every later micro-batch, so charging it
            # to each plan would keep "auto" sequential forever (the pool
            # only exists once a plan goes parallel — a chicken-and-egg
            # the one-shot engine path does not have).
            plan = self._planner.plan(
                queries,
                num_workers=self._num_workers,
                pool_ready=True,
                snapshot=pin,
            )
            if plan.num_workers > 1 and self._pool is None:
                # First parallel plan: open the persistent pool every later
                # micro-batch will reuse (spawn is paid exactly once).
                # Sized at the planner's max_workers — the ceiling every
                # "auto" resolution obeys (an explicit larger num_workers
                # is honoured too) — so a later, larger batch's plan can
                # never assume more parallelism than the pool has.
                self._pool = self._engine.create_pool(
                    max_workers=max(
                        2, self._planner.max_workers, plan.num_workers
                    ),
                    snapshot=pin.csr,
                )
            stream = self._engine.stream_planned(
                queries, plan, ordered=False, pool=self._pool
            )
            while True:
                try:
                    position, paths = next(stream)
                except StopIteration as stop:
                    result = stop.value
                    break
                batch[position]._resolve(paths)
                # Successful resolutions only: failed tickets used to be
                # folded in as 0.0 latency, dragging the mean toward zero
                # exactly when the service was misbehaving.
                latency = batch[position].latency_s
                if latency is not None:
                    latency_sum += latency
                    latency_count += 1
                    self._m_latency.observe(latency)
                resolved += 1
            with self._lock:
                self._completed += resolved
                self._batches_dispatched += 1
                self._batched_total += len(batch)
                self._latency_total_s += latency_sum
                self._latency_count += latency_count
                self._sharing.merge(result.sharing)
            self._m_completed.inc(resolved)
            self._m_batches.inc()
        except BaseException as error:  # noqa: BLE001 - forwarded to tickets
            failed = 0
            for ticket in batch:
                if not ticket.done():
                    ticket._fail(error)
                    failed += 1
            with self._lock:
                self._completed += resolved
                self._failed += failed
                self._batches_dispatched += 1
                self._batched_total += len(batch)
                self._latency_total_s += latency_sum
                self._latency_count += latency_count
            self._m_completed.inc(resolved)
            self._m_failed.inc(failed)
            self._m_batches.inc()
            # The scheduler itself survives a poisoned batch and keeps
            # serving subsequent micro-batches.
        finally:
            if pin is not None:
                # Refcount discipline: the sealed version is released when
                # its last pinned consumer (this batch) finishes; the
                # snapshot store drops non-head versions at zero pins.
                pin.release()

    def _fail_pending(self, error: BaseException) -> None:
        with self._lock:
            abandoned = list(self._pending)
            self._pending.clear()
            self._m_queue_depth.set(0)
            self._lock.notify_all()
        for ticket in abandoned:
            ticket._fail(error)
        with self._lock:
            # Abandoned tickets count as failures but stay out of the
            # latency mean — they were never served, so their queue time
            # says nothing about service latency.
            self._failed += len(abandoned)
        if abandoned:
            self._m_failed.inc(len(abandoned))

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __repr__(self) -> str:
        with self._lock:
            state = "closing" if self._closing else "open"
            return (
                f"IngestionService({self.algorithm!r}, {state}, "
                f"pending={len(self._pending)}, admitted={self._admitted})"
            )


def serve(
    graph: DiGraph,
    algorithm: str = "batch+",
    gamma: float = 0.5,
    num_workers: NumWorkers = "auto",
    max_batch_size: int = 32,
    max_delay_s: float = 0.02,
    max_pending: int = 1024,
    join_similarity: float = 0.6,
    join_pending: bool = True,
    cost_model: Optional[CostModel] = None,
    max_workers: Optional[int] = None,
    metrics=None,
    tracer=None,
) -> IngestionService:
    """Start an :class:`IngestionService` in one call.

    The admission-policy knobs are accepted flat; pass an explicit
    :class:`AdmissionPolicy` to the class constructor for the full set.
    ``metrics``/``tracer`` opt the whole pipeline (service, planner,
    engine, executor, snapshot store) into telemetry — see
    :mod:`repro.obs`.

    >>> from repro.graph.generators import paper_example_graph
    >>> from repro.queries.query import HCSTQuery
    >>> with serve(paper_example_graph()) as service:
    ...     tickets = service.submit_many(
    ...         [HCSTQuery(0, 11, 5), HCSTQuery(2, 13, 5)]
    ...     )
    ...     [len(t.result(timeout=30.0)) for t in tickets]
    [3, 3]
    """
    policy = AdmissionPolicy(
        max_batch_size=max_batch_size,
        max_delay_s=max_delay_s,
        max_pending=max_pending,
        join_similarity=join_similarity,
        join_pending=join_pending,
    )
    return IngestionService(
        graph,
        algorithm=algorithm,
        gamma=gamma,
        num_workers=num_workers,
        policy=policy,
        cost_model=cost_model,
        max_workers=max_workers,
        start=True,
        metrics=metrics,
        tracer=tracer,
    )
