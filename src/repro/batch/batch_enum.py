"""Algorithm 4 — ``BatchEnum`` / ``BatchEnum+``: shared batch enumeration.

Processing pipeline for a batch ``Q``:

1. **BuildIndex** — multi-source BFS distance index over all query sources
   and targets (shared with Algorithm 1).
2. **ClusterQuery** — Algorithm 2 groups queries by hop-constrained
   neighbourhood similarity.
3. **IdentifySubquery** — Algorithm 3 detects, per cluster and per
   direction, the dominating HC-s path queries and builds the query sharing
   graphs Ψ (forward) and Ψr (backward).
4. **Enumeration** — HC-s path query nodes are materialised in topological
   order of Ψ/Ψr; a node's enumeration splices in the cached results of its
   providers instead of re-exploring, and the final HC-s-t paths of every
   query are produced by the ⊕ join of its two root HC-s path results.
   Cached results are evicted as soon as their last consumer is done.

``BatchEnum+`` uses the search-order optimiser to pick each query's
forward/backward budget split before detection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.batch.cache import ResultCache
from repro.batch.clustering import cluster_queries
from repro.batch.detection import DetectionOutcome, detect_common_queries
from repro.batch.results import BatchResult, FragmentStream, SharingStats, drain
from repro.bfs.distance_index import (
    CSRDistanceIndex,
    DistanceIndex,
    UNREACHABLE,
    densify_distances,
)
from repro.enumeration.join import PathJoinPolicy, join_path_sets
from repro.enumeration.kernels import enumerate_node_paths, resolve_kernel
from repro.enumeration.paths import Path
from repro.enumeration.search_order import choose_budget_split
from repro.graph.digraph import DiGraph
from repro.queries.query import Direction, HCSTQuery, HCsPathQuery
from repro.queries.workload import QueryWorkload
from repro.utils.timer import StageTimer
from repro.utils.validation import require

#: Default frontier-expansion depth of DetectCommonQuery (see the
#: ``max_detection_depth`` parameter below).  The parallel executor uses the
#: same constant so sequential and sharded runs share identically.
DEFAULT_MAX_DETECTION_DEPTH: Optional[int] = 1


class BatchEnum:
    """The paper's batch HC-s-t path query processing algorithm.

    Parameters
    ----------
    graph:
        The data graph.
    gamma:
        Clustering threshold γ of Algorithm 2 (paper default 0.5).
    optimize_search_order:
        Enable the "+" variant's adaptive budget split.
    kernel:
        ``"python"`` (default) runs the explicit-stack node enumeration;
        ``"numpy"`` runs the byte-identical vectorized kernel of
        :mod:`repro.enumeration.kernels` (raises when numpy is absent).
        ``"auto"`` resolves to ``"python"`` here — cost-aware selection is
        the planner's job.
    """

    def __init__(
        self,
        graph: DiGraph,
        gamma: float = 0.5,
        optimize_search_order: bool = False,
        max_detection_depth: Optional[int] = DEFAULT_MAX_DETECTION_DEPTH,
        kernel: str = "python",
    ) -> None:
        require(0.0 <= gamma <= 1.0, "gamma must be within [0, 1]")
        self.graph = graph
        self.gamma = gamma
        self.optimize_search_order = optimize_search_order
        self.kernel = resolve_kernel(kernel)
        # How deep DetectCommonQuery expands the joint frontier beyond the
        # root vertices; None reproduces Algorithm 3 exactly (full depth),
        # the default of 1 keeps the detection overhead negligible on the
        # pure-Python substrate while catching the near-root sharing that
        # dominates in practice (see DESIGN.md).
        self.max_detection_depth = max_detection_depth

    @property
    def name(self) -> str:
        return "BatchEnum+" if self.optimize_search_order else "BatchEnum"

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, queries: Sequence[HCSTQuery]) -> BatchResult:
        """Process the batch and return a :class:`BatchResult`."""
        return drain(self.iter_run(queries))

    def iter_run(
        self,
        queries: Sequence[HCSTQuery],
        workload: Optional[QueryWorkload] = None,
        clusters: Optional[List[List[int]]] = None,
    ) -> FragmentStream:
        """Fragment generator: one ``{position: paths}`` yield per cluster.

        The global stages (BuildIndex, ClusterQuery) run before the first
        fragment; from then on every completed cluster is immediately
        flushable.  This is the sequential twin of the parallel executor's
        per-shard completions, so the engine's streaming front-end drains
        both through one reorder buffer.

        ``workload``/``clusters`` let a caller that already built the shared
        artefacts (the query planner) hand them over instead of rebuilding;
        the computation is identical either way, only performed once.
        """
        if workload is None:
            workload = QueryWorkload(self.graph, queries, stage_timer=StageTimer())
        stage_timer = workload.stage_timer
        result = BatchResult(
            queries=list(queries), stage_timer=stage_timer, algorithm=self.name
        )
        index = workload.index  # BuildIndex
        with stage_timer.stage("BuildIndex"):
            # Pack (or reuse) the shared CSR snapshot the enumeration reads.
            self.graph.csr_snapshot()

        if clusters is None:
            with stage_timer.stage("ClusterQuery"):
                clusters = cluster_queries(workload, self.gamma)

        sharing = SharingStats(num_clusters=len(clusters))
        for cluster in clusters:
            queries_by_position = {
                position: workload.queries[position] for position in cluster
            }
            self._process_cluster(
                queries_by_position, index, stage_timer, result, sharing
            )
            yield {
                position: result.paths_by_position[position]
                for position in sorted(cluster)
            }
        result.sharing = sharing
        return result

    # ------------------------------------------------------------------ #
    # Per-cluster processing
    # ------------------------------------------------------------------ #
    def _process_cluster(
        self,
        queries_by_position: Dict[int, HCSTQuery],
        index: DistanceIndex,
        stage_timer: StageTimer,
        result: BatchResult,
        sharing: SharingStats,
    ) -> None:
        """Process one cluster of queries against ``index``.

        Clusters are independent of one another by construction, which makes
        this the shard boundary of :mod:`repro.batch.executor`: the parallel
        mode calls this method from worker processes with a per-cluster
        index and merges the per-position results afterwards.
        """
        cluster = sorted(queries_by_position)

        forward_budgets: Dict[int, int] = {}
        backward_budgets: Dict[int, int] = {}
        if self.optimize_search_order:
            # The "+" variant rebalances each query's forward/backward hop
            # budgets, but queries with the same hop constraint inside one
            # cluster vote on a single split: mixing splits would break up
            # otherwise identical root HC-s path queries and destroy the
            # sharing the cluster was formed for.
            votes: Dict[int, Dict[int, int]] = {}
            for position, query in queries_by_position.items():
                forward, _ = choose_budget_split(query, index)
                per_k = votes.setdefault(query.k, {})
                per_k[forward] = per_k.get(forward, 0) + 1
            chosen = {
                k: max(counts.items(), key=lambda item: (item[1], item[0]))[0]
                for k, counts in votes.items()
            }
            for position, query in queries_by_position.items():
                forward = chosen[query.k]
                forward_budgets[position] = forward
                backward_budgets[position] = query.k - forward
        else:
            for position, query in queries_by_position.items():
                forward_budgets[position] = query.forward_budget
                backward_budgets[position] = query.backward_budget

        with stage_timer.stage("IdentifySubquery"):
            forward_outcome = detect_common_queries(
                self.graph,
                queries_by_position,
                Direction.FORWARD,
                index,
                forward_budgets,
                max_depth=self.max_detection_depth,
            )
            backward_outcome = detect_common_queries(
                self.graph,
                queries_by_position,
                Direction.BACKWARD,
                index,
                backward_budgets,
                max_depth=self.max_detection_depth,
            )

        sharing.num_shared_nodes += (
            forward_outcome.num_shared_nodes + backward_outcome.num_shared_nodes
        )
        sharing.num_hc_s_nodes += len(
            forward_outcome.sharing_graph.hc_s_path_nodes()
        ) + len(backward_outcome.sharing_graph.hc_s_path_nodes())

        cache = ResultCache()
        with stage_timer.stage("Enumeration"):
            self._materialize(forward_outcome, cache)
            self._materialize(backward_outcome, cache)
            self._join_cluster(
                cluster,
                queries_by_position,
                forward_outcome,
                backward_outcome,
                cache,
                result,
            )
        sharing.cache_peak_entries = max(
            sharing.cache_peak_entries, cache.peak_entries
        )
        sharing.cache_reuse_count += cache.reuse_count

    def _materialize(self, outcome: DetectionOutcome, cache: ResultCache) -> None:
        """Enumerate every HC-s path query node of one sharing graph in
        topological order, reusing cached provider results."""
        psi = outcome.sharing_graph
        for node in psi.topological_order():
            if not isinstance(node, HCsPathQuery):
                continue
            paths = self._enumerate_node(node, outcome, cache)
            consumers = psi.consumers_of(node)
            cache.put(node, paths, consumers=len(consumers))
            # This node has finished reading its providers.
            for provider in psi.providers_of(node):
                if isinstance(provider, HCsPathQuery):
                    cache.release(provider)

    def _enumerate_node(
        self,
        node: HCsPathQuery,
        outcome: DetectionOutcome,
        cache: ResultCache,
    ) -> List[Path]:
        """Enumerate all hop-constrained paths of one HC-s path query.

        The search explores flat CSR adjacency in the node's direction with
        an explicit iterator stack (deep hop budgets never touch Python's
        recursion limit).  When it is about to step onto a vertex where one
        of the node's providers is rooted — and the provider's hop budget
        covers the remaining need — the provider's cached paths are spliced
        in instead of re-exploring the subtree (Algorithm 4, Search lines
        22-23).
        """
        psi = outcome.sharing_graph
        forward = node.direction is Direction.FORWARD
        index = outcome.index
        queries_by_position = outcome.queries_by_position
        budget_by_position = outcome.budget_by_position
        served_positions = sorted(outcome.served_queries.get(node, ()))

        providers_at: Dict[int, HCsPathQuery] = {}
        for provider in psi.providers_of(node):
            if isinstance(provider, HCsPathQuery):
                best = providers_at.get(provider.vertex)
                if best is None or provider.budget > best.budget:
                    providers_at[provider.vertex] = provider

        # Admissibility (Lemma 3.1 for shared enumerations): stepping onto a
        # vertex ``v`` with ``r`` hops of this node's budget left is useful
        # iff some served query can still complete a path through ``v``.
        # That condition is ``need(v) <= r`` with ``need`` independent of the
        # current prefix, so it is memoised per vertex; duplicate queries
        # collapse to a single (endpoint, slack) constant.  Distances are
        # read from dense rows indexed directly by vertex id; a legacy dict
        # index is densified once per node so both representations share
        # this loop.
        slack_constants = outcome.slack_constants(node)
        if isinstance(index, CSRDistanceIndex):
            distance_rows = [
                (index.dense_to(e) if forward else index.dense_from(e), constant)
                for e, constant in slack_constants
            ]
        else:
            distance_rows = [
                (
                    densify_distances(
                        (index.to_target if forward else index.from_source)[e],
                        self.graph.num_vertices,
                    ),
                    constant,
                )
                for e, constant in slack_constants
            ]
        infinity = float("inf")
        need_cache: Dict[int, float] = {}

        def need(vertex: int) -> float:
            cached_need = need_cache.get(vertex)
            if cached_need is None:
                cached_need = infinity
                for row, constant in distance_rows:
                    distance = row[vertex]
                    if distance != UNREACHABLE and distance + constant < cached_need:
                        cached_need = distance + constant
                need_cache[vertex] = cached_need
            return cached_need

        # A node whose results are only consumed by the final ⊕ join (no
        # HC-s path query consumers) does not need every intermediate
        # prefix: the join only reads forward paths that end at a served
        # target or have length exactly equal to the budget, and backward
        # paths of any positive length.
        keep_all = any(
            isinstance(consumer, HCsPathQuery)
            for consumer in psi.consumers_of(node)
        )
        served_endpoints = {
            queries_by_position[position].t if forward
            else queries_by_position[position].s
            for position in served_positions
        }
        budget = node.budget

        def should_record(path_last: int, length: int) -> bool:
            if keep_all:
                return True
            if forward:
                return length == budget or path_last in served_endpoints
            return True

        if self.kernel == "numpy":
            # Providers are handed over as (budget, fetch) pairs; fetch is
            # a live cache.get closure so the reuse statistics count one
            # access per splice, exactly like the loop below.
            eligible_providers = {
                vertex: (provider.budget, (lambda p=provider: cache.get(p)))
                for vertex, provider in providers_at.items()
                if provider != node and provider in cache
            }
            offsets, targets = self.graph.csr_snapshot().flat(forward)
            return enumerate_node_paths(
                offsets,
                targets,
                node.vertex,
                budget,
                distance_rows,
                served_endpoints,
                keep_all,
                forward,
                eligible_providers,
            )
        adjacency = self.graph.csr_snapshot().adjacency_lists(forward)

        results: List[Path] = []
        if should_record(node.vertex, 0):
            results.append((node.vertex,))
        if budget == 0:
            return results

        prefix: List[int] = [node.vertex]
        on_path = {node.vertex}
        # Explicit DFS: iter_stack[d] iterates the pending neighbours of
        # prefix[d]; frames are pushed only while budget remains.
        iter_stack = [iter(adjacency[node.vertex])]

        while iter_stack:
            used = len(prefix) - 1
            remaining = budget - used
            frame = iter_stack[-1]
            for neighbor in frame:
                if neighbor in on_path:
                    continue
                if need(neighbor) > remaining:
                    continue
                provider = providers_at.get(neighbor)
                if (
                    provider is not None
                    and provider != node
                    and provider in cache
                    and provider.budget >= remaining - 1
                ):
                    current_prefix = tuple(prefix)
                    for cached in cache.get(provider):
                        extra = len(cached) - 1
                        if extra > remaining - 1:
                            continue
                        if not should_record(cached[-1], used + 1 + extra):
                            continue
                        if any(v in on_path for v in cached):
                            continue
                        results.append(current_prefix + cached)
                    continue
                prefix.append(neighbor)
                on_path.add(neighbor)
                if should_record(neighbor, used + 1):
                    results.append(tuple(prefix))
                if used + 1 < budget:
                    iter_stack.append(iter(adjacency[neighbor]))
                else:
                    prefix.pop()
                    on_path.remove(neighbor)
                break
            else:
                iter_stack.pop()
                on_path.remove(prefix.pop())
        return results

    def _join_cluster(
        self,
        cluster: List[int],
        queries_by_position: Dict[int, HCSTQuery],
        forward_outcome: DetectionOutcome,
        backward_outcome: DetectionOutcome,
        cache: ResultCache,
        result: BatchResult,
    ) -> None:
        """Produce every query's HC-s-t paths by joining its two root
        HC-s path results, then release the roots.

        Queries that are identical up to their batch position (same
        endpoints, same budgets — common in bursty real workloads) share
        one join: the joined path list is memoised per
        (forward root, backward root, budgets, target).
        """
        join_memo: Dict[Tuple, List[Path]] = {}
        for position in cluster:
            query = queries_by_position[position]
            forward_root = forward_outcome.root_by_position[position]
            backward_root = backward_outcome.root_by_position[position]
            forward_budget = forward_outcome.budget_by_position[position]
            backward_budget = backward_outcome.budget_by_position[position]
            memo_key = (
                forward_root, backward_root, forward_budget, backward_budget, query.t
            )
            paths = join_memo.get(memo_key)
            if paths is None:
                forward_paths = cache.peek(forward_root)
                backward_paths = cache.peek(backward_root)
                require(
                    forward_paths is not None and backward_paths is not None,
                    "root HC-s path results were evicted before the final join; "
                    "this indicates a consumer accounting bug",
                )
                policy = PathJoinPolicy(
                    forward_budget=forward_budget, backward_budget=backward_budget
                )
                paths = join_path_sets(forward_paths, backward_paths, query.t, policy)
                join_memo[memo_key] = paths
            result.record(position, paths)
            cache.release(forward_root)
            cache.release(backward_root)
