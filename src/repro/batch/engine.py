"""High-level facade: :class:`BatchQueryEngine`.

The engine hides the choice of algorithm behind a single ``run`` call and
is the entry point the examples and the experiment harness use.  Algorithm
names follow the paper's Section V:

=============  =====================================================
name           algorithm
=============  =====================================================
``pathenum``   PathEnum run per query with per-query indexes
``basic``      Algorithm 1 (BasicEnum)
``basic+``     Algorithm 1 with optimised search order (BasicEnum+)
``batch``      Algorithm 4 (BatchEnum)
``batch+``     Algorithm 4 with optimised search order (BatchEnum+)
``dksp``       adapted diversified top-k route planning baseline
``onepass``    adapted k-shortest-paths-with-limited-overlap baseline
=============  =====================================================

``num_workers > 1`` shards the batch across worker processes —
per cluster for ``batch``/``batch+``, per contiguous query slice for the
per-query algorithms — with results merged deterministically by batch
position (see :mod:`repro.batch.executor` for the design).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.batch.basic_enum import BasicEnum, run_pathenum_baseline
from repro.batch.batch_enum import BatchEnum
from repro.batch.results import BatchResult
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery
from repro.utils.validation import require

#: Canonical algorithm names accepted by :class:`BatchQueryEngine`.
ALGORITHMS = (
    "pathenum",
    "basic",
    "basic+",
    "batch",
    "batch+",
    "dksp",
    "onepass",
)

#: Display label each runner reports in ``BatchResult.algorithm``, keyed by
#: engine name — the single mapping shared by the empty-batch fast path and
#: the parallel executor so every run of one engine carries one label.
DISPLAY_NAMES = {
    "pathenum": "PathEnum",
    "basic": "BasicEnum",
    "basic+": "BasicEnum+",
    "batch": "BatchEnum",
    "batch+": "BatchEnum+",
    "dksp": "DkSP",
    "onepass": "OnePass",
}


class BatchQueryEngine:
    """One-call batch HC-s-t path query processing.

    Example
    -------
    >>> from repro.graph.generators import paper_example_graph
    >>> from repro.queries.query import HCSTQuery
    >>> engine = BatchQueryEngine(paper_example_graph(), algorithm="batch+")
    >>> result = engine.run([HCSTQuery(0, 11, 5), HCSTQuery(2, 13, 5)])
    >>> len(result.paths_at(0))
    3
    """

    def __init__(
        self,
        graph: DiGraph,
        algorithm: str = "batch+",
        gamma: float = 0.5,
        num_workers: int = 1,
    ) -> None:
        require(
            algorithm in ALGORITHMS,
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}",
        )
        require(0.0 <= gamma <= 1.0, "gamma must be within [0, 1]")
        require(num_workers >= 1, "num_workers must be >= 1")
        self.graph = graph
        self.algorithm = algorithm
        self.gamma = gamma
        self.num_workers = num_workers

    def run(self, queries: Sequence[HCSTQuery]) -> BatchResult:
        """Process ``queries`` with the configured algorithm.

        An empty batch is answered immediately with an empty
        :class:`BatchResult` — callers draining dynamic queues need no
        pre-check.  With ``num_workers > 1`` the batch is sharded across
        worker processes (see :mod:`repro.batch.executor`); results are
        identical to the single-process run, merged by batch position.
        """
        if not queries:
            return BatchResult(
                queries=[], algorithm=DISPLAY_NAMES[self.algorithm]
            )
        if self.num_workers > 1:
            from repro.batch.executor import run_parallel

            return run_parallel(
                self.graph,
                queries,
                algorithm=self.algorithm,
                gamma=self.gamma,
                num_workers=self.num_workers,
            )
        runner = self._runner()
        return runner(queries)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _runner(self) -> Callable[[Sequence[HCSTQuery]], BatchResult]:
        if self.algorithm == "pathenum":
            return lambda queries: run_pathenum_baseline(self.graph, queries)
        if self.algorithm == "basic":
            return BasicEnum(self.graph, optimize_search_order=False).run
        if self.algorithm == "basic+":
            return BasicEnum(self.graph, optimize_search_order=True).run
        if self.algorithm == "batch":
            return BatchEnum(
                self.graph, gamma=self.gamma, optimize_search_order=False
            ).run
        if self.algorithm == "batch+":
            return BatchEnum(
                self.graph, gamma=self.gamma, optimize_search_order=True
            ).run
        if self.algorithm == "dksp":
            from repro.baselines.dksp import run_dksp_baseline

            return lambda queries: run_dksp_baseline(self.graph, queries)
        if self.algorithm == "onepass":
            from repro.baselines.onepass import run_onepass_baseline

            return lambda queries: run_onepass_baseline(self.graph, queries)
        raise ValueError(f"unhandled algorithm {self.algorithm!r}")


def batch_enumerate(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    algorithm: str = "batch+",
    gamma: float = 0.5,
    num_workers: int = 1,
) -> BatchResult:
    """Functional one-shot wrapper around :class:`BatchQueryEngine`."""
    engine = BatchQueryEngine(
        graph, algorithm=algorithm, gamma=gamma, num_workers=num_workers
    )
    return engine.run(queries)
