"""High-level facade: :class:`BatchQueryEngine`.

The engine hides the choice of algorithm behind a single ``run`` call and
is the entry point the examples and the experiment harness use.  Algorithm
names follow the paper's Section V:

=============  =====================================================
name           algorithm
=============  =====================================================
``pathenum``   PathEnum run per query with per-query indexes
``basic``      Algorithm 1 (BasicEnum)
``basic+``     Algorithm 1 with optimised search order (BasicEnum+)
``batch``      Algorithm 4 (BatchEnum)
``batch+``     Algorithm 4 with optimised search order (BatchEnum+)
``dksp``       adapted diversified top-k route planning baseline
``onepass``    adapted k-shortest-paths-with-limited-overlap baseline
=============  =====================================================

Plan → execute pipeline
-----------------------
Every non-trivial run goes through two explicit phases:

1. **Plan** — a :class:`~repro.batch.planner.QueryPlanner` runs the cheap
   global stages once (multi-source BFS index, clustering), estimates
   per-shard enumeration costs, resolves the worker count and decides
   whether the parent-built array-backed index should be *shipped* to the
   worker pool (serialized once into the pool initializer) or rebuilt per
   worker.  The resulting :class:`~repro.batch.planner.ExecutionPlan` is a
   plain inspectable object — :meth:`BatchQueryEngine.explain` returns it
   without executing anything.
2. **Execute** — the sequential fragment generators (``num_workers`` 1) or
   the plan-driven parallel executor (:mod:`repro.batch.executor`) consume
   the plan's prebuilt artefacts; planning work is never repeated.

``num_workers`` accepts a positive integer or ``"auto"`` (the default):
``auto`` lets the plan's cost model — calibrated against
``BENCH_workers.json`` — decide whether sharding across processes clears
the pool-spawn overhead, falling back to the (always safe) sequential path
otherwise.  Validation is eager: a bad value raises in ``__init__``, not
deep inside the executor.

>>> from repro.graph.generators import paper_example_graph
>>> from repro.queries.query import HCSTQuery
>>> engine = BatchQueryEngine(paper_example_graph(), algorithm="batch+")
>>> plan = engine.explain([HCSTQuery(0, 11, 5), HCSTQuery(2, 13, 5)])
>>> plan.num_workers  # tiny workload: the cost model stays sequential
1
>>> len(plan.shards) >= 1
True

Streaming front-end
-------------------
``engine.stream(queries)`` (and the module-level :func:`stream_enumerate`)
yields ``(batch_position, paths)`` tuples as soon as the owning
shard/cluster/query completes instead of materialising a full
:class:`BatchResult` at the end; ``engine.run(queries)`` is a thin wrapper
that collects that same stream, so every algorithm in the table above
streams for free.  Two flush policies:

==================  ====================================================
``ordered=True``    positions are flushed in batch order (a reorder
                    buffer withholds position ``i`` until all positions
                    ``< i`` have been flushed) — use when the consumer
                    needs the batch's submission order.
``ordered=False``   fragments are flushed on completion with their batch
                    positions attached — prefer this when consumers can
                    handle out-of-order delivery (e.g. a result queue
                    keyed by position): on skewed batches it minimises
                    time-to-first-result because a fast cluster is never
                    held hostage by a slow, earlier-positioned one.
==================  ====================================================
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.batch.basic_enum import BasicEnum, iter_pathenum_baseline
from repro.batch.batch_enum import BatchEnum
from repro.batch.planner import (
    CostModel,
    ExecutionPlan,
    NumWorkers,
    QueryPlanner,
    validate_num_workers,
)
from repro.batch.results import (
    BatchResult,
    FragmentStream,
    ResultStream,
    drain,
)
from repro.enumeration.kernels import resolve_kernel, validate_kernel
from repro.enumeration.paths import Path
from repro.graph.digraph import DiGraph
from repro.obs.feedback import (
    COST_ACTUAL_SECONDS_TOTAL,
    COST_PREDICTED_UNITS_TOTAL,
)
from repro.obs.metrics import resolve_registry
from repro.obs.tracing import resolve_tracer
from repro.queries.query import HCSTQuery
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.executor import WorkerPool
    from repro.graph.csr import CSRGraph

#: Canonical algorithm names accepted by :class:`BatchQueryEngine`.
ALGORITHMS = (
    "pathenum",
    "basic",
    "basic+",
    "batch",
    "batch+",
    "dksp",
    "onepass",
)

#: Display label each runner reports in ``BatchResult.algorithm``, keyed by
#: engine name — the single mapping shared by the empty-batch fast path and
#: the parallel executor so every run of one engine carries one label.
DISPLAY_NAMES = {
    "pathenum": "PathEnum",
    "basic": "BasicEnum",
    "basic+": "BasicEnum+",
    "batch": "BatchEnum",
    "batch+": "BatchEnum+",
    "dksp": "DkSP",
    "onepass": "OnePass",
}

class BatchQueryEngine:
    """One-call batch HC-s-t path query processing.

    Example
    -------
    >>> from repro.graph.generators import paper_example_graph
    >>> from repro.queries.query import HCSTQuery
    >>> engine = BatchQueryEngine(paper_example_graph(), algorithm="batch+")
    >>> result = engine.run([HCSTQuery(0, 11, 5), HCSTQuery(2, 13, 5)])
    >>> len(result.paths_at(0))
    3

    Parameters
    ----------
    graph:
        The data graph.
    algorithm:
        One of :data:`ALGORITHMS`.
    gamma:
        Clustering threshold for the sharing-aware algorithms.
    num_workers:
        Positive integer, or ``"auto"`` (default) to let the query
        planner's cost model decide per batch.
    cost_model:
        Optional :class:`~repro.batch.planner.CostModel` override for the
        planner (tests and benchmarks use this to force decisions).
    max_workers:
        Cap for ``"auto"`` resolution (defaults to ``os.cpu_count()``).
    kernel:
        Enumeration substrate: ``"auto"`` (default) lets the planner route
        heavy shards to the vectorized numpy kernel when numpy is
        available (unplanned sequential runs stay pure-Python),
        ``"python"`` pins the pure-Python loops everywhere, ``"numpy"``
        forces the vectorized kernel (raises here when numpy is absent).
        Every kernel produces byte-identical results — the differential
        suite pins this.
    use_shm:
        Zero-copy transport policy for worker pools: ``"auto"`` (default)
        ships the sealed CSR (and large index payloads) through POSIX
        shared memory when the platform supports it; ``False`` pins the
        pickle transport.
    metrics / tracer:
        Telemetry opt-in (see :mod:`repro.obs`): a
        :class:`~repro.obs.metrics.MetricsRegistry` /
        :class:`~repro.obs.tracing.Tracer` to record into.  Defaults to
        the allocation-free no-op singletons, keeping the uninstrumented
        path byte-identical.  Passing a registry also instruments the
        graph's :class:`~repro.graph.snapshots.SnapshotStore` gauges.
    """

    def __init__(
        self,
        graph: DiGraph,
        algorithm: str = "batch+",
        gamma: float = 0.5,
        num_workers: NumWorkers = "auto",
        cost_model: Optional[CostModel] = None,
        max_workers: Optional[int] = None,
        kernel: str = "auto",
        use_shm="auto",
        metrics=None,
        tracer=None,
    ) -> None:
        require(
            algorithm in ALGORITHMS,
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}",
        )
        require(0.0 <= gamma <= 1.0, "gamma must be within [0, 1]")
        validate_kernel(kernel)
        self.graph = graph
        self.algorithm = algorithm
        self.gamma = gamma
        self.num_workers = validate_num_workers(num_workers)
        self.cost_model = cost_model
        self.max_workers = max_workers
        self.kernel = kernel
        self.use_shm = use_shm
        self.metrics = resolve_registry(metrics)
        self.tracer = resolve_tracer(tracer)
        if metrics is not None:
            # Workers re-instantiate engines on CSRGraph snapshots, which
            # carry no snapshot store — only instrument the live DiGraph.
            store = getattr(graph, "snapshots", None)
            if store is not None:
                store.instrument(metrics)

    # ------------------------------------------------------------------ #
    # Planning API
    # ------------------------------------------------------------------ #
    def explain(self, queries: Sequence[HCSTQuery]) -> ExecutionPlan:
        """Plan ``queries`` without executing them.

        Returns the :class:`~repro.batch.planner.ExecutionPlan` that
        ``run``/``stream`` would follow: shard assignments, the resolved
        worker count, the index ship-vs-rebuild decision and the cost
        estimates behind each choice.  ``plan.describe()`` renders it
        human-readably.
        """
        return self._plan(list(queries))

    def _plan(
        self, queries: List[HCSTQuery], pool_ready: bool = False
    ) -> ExecutionPlan:
        planner = QueryPlanner(
            self.graph,
            algorithm=self.algorithm,
            gamma=self.gamma,
            cost_model=self.cost_model,
            max_workers=self.max_workers,
            kernel=self.kernel,
            use_shm=self.use_shm,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        return planner.plan(
            queries, num_workers=self.num_workers, pool_ready=pool_ready
        )

    # ------------------------------------------------------------------ #
    # Execution API
    # ------------------------------------------------------------------ #
    def run(self, queries: Sequence[HCSTQuery]) -> BatchResult:
        """Process ``queries`` with the configured algorithm.

        A thin collect-the-stream wrapper: the same fragment pipeline that
        backs :meth:`stream` is drained to exhaustion and its
        :class:`BatchResult` returned.  An empty batch is answered
        immediately with an empty :class:`BatchResult` — callers draining
        dynamic queues need no pre-check.  When the plan shards the batch
        across worker processes (see :mod:`repro.batch.executor`) results
        are identical to the single-process run, keyed by batch position.
        """
        queries = list(queries)
        with self.tracer.span(
            "batch",
            tags={"queries": len(queries), "algorithm": self.algorithm},
        ):
            return drain(self._stream_core(queries, ordered=True))

    def stream(
        self,
        queries: Sequence[HCSTQuery],
        ordered: bool = True,
        pool: "WorkerPool | None" = None,
    ) -> Iterator[Tuple[int, List[Path]]]:
        """Yield ``(batch_position, paths)`` as completions land.

        Results are flushed as soon as the shard/cluster (or, sequentially,
        the cluster/query) owning a batch position completes, instead of
        waiting for the whole batch.  With ``ordered=True`` positions are
        released strictly in batch order; with ``ordered=False`` they are
        released on completion, each tuple carrying its position — prefer
        that on skewed batches where time-to-first-result matters more than
        delivery order.  An empty batch yields nothing.  An exception
        raised while processing any shard propagates out of the iterator;
        positions flushed before the failure have already been delivered.

        The stream reads the sealed copy-on-write snapshot of the version
        the graph had when the stream started: mutating the graph while
        the stream is in flight is **allowed** and never disturbs it — all
        positions are answered against that one snapshot, and the next
        stream/run plans against the new head (multi-version serving, see
        :mod:`repro.graph.snapshots`).

        ``pool`` is an optional persistent
        :class:`~repro.batch.executor.WorkerPool` (see :meth:`create_pool`)
        that parallel plans reuse instead of spawning a fresh process pool —
        the ingestion service drives every micro-batch through one pool.

        When the plan resolves to multiple workers and no ``pool`` is
        given, abandoning the iterator early (``break`` or ``close()``)
        cancels shards that have not started but blocks until the shards
        already running in worker processes finish — the pool is joined
        before the generator's cleanup returns, so no orphaned workers
        outlive the stream.
        """
        # Yield copies: the fragments reference the per-position lists the
        # engine is still accumulating into its BatchResult, and handing a
        # caller a live internal list invites exactly the aliasing bug
        # RA004 exists to catch.  (run()/stream_planned() keep the
        # zero-copy internal path — the service copies at the ticket
        # boundary instead.)
        stream = self._stream_core(list(queries), ordered=ordered, pool=pool)
        while True:
            try:
                position, paths = next(stream)
            except StopIteration as stop:
                return stop.value
            yield position, list(paths)

    def stream_planned(
        self,
        queries: Sequence[HCSTQuery],
        plan: ExecutionPlan,
        ordered: bool = False,
        pool: "WorkerPool | None" = None,
    ) -> ResultStream:
        """Execute a prebuilt :class:`ExecutionPlan`, streaming results.

        The reusable planning/streaming core behind :meth:`stream`, exposed
        for schedulers that plan a batch themselves (the ingestion
        service's admission policy consults the planner before dispatch, so
        re-planning inside ``stream`` would double the work): ``plan`` must
        have been built by :meth:`explain`/``QueryPlanner.plan`` for these
        exact ``queries``.  Yields ``(batch_position, paths)`` like
        :meth:`stream`; the generator's return value is the finished
        :class:`BatchResult` (sharing stats, stage timings), which
        ``run``-style callers retrieve from ``StopIteration.value``.
        """
        result = yield from self._stream_core(
            list(queries), ordered=ordered, pool=pool, plan=plan
        )
        return result

    def create_pool(
        self, max_workers: int, snapshot: "CSRGraph | None" = None
    ) -> "WorkerPool":
        """Open a persistent :class:`~repro.batch.executor.WorkerPool` bound
        to this engine's graph/algorithm/gamma, for reuse across many
        ``stream``/``run`` calls (micro-batch serving).  ``snapshot``
        optionally pins the sealed CSR the workers are initialised with
        (defaults to the graph's current head).  The caller owns the pool:
        pass it via ``stream(..., pool=...)`` and ``shutdown()`` it when
        done."""
        from repro.batch.executor import WorkerPool

        return WorkerPool(
            self.graph,
            self.algorithm,
            self.gamma,
            max_workers=max_workers,
            snapshot=snapshot,
            use_shm=self.use_shm,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _stream_core(
        self,
        queries: List[HCSTQuery],
        ordered: bool,
        pool: "WorkerPool | None" = None,
        plan: Optional[ExecutionPlan] = None,
    ) -> ResultStream:
        """The shared fragment pipeline behind :meth:`run`, :meth:`stream`
        and :meth:`stream_planned`: plan (unless one was handed in), pick a
        fragment generator (sequential runner or plan-driven parallel
        executor) and push it through the flushing core.  Every fragment is
        computed against the plan's sealed snapshot — concurrent graph
        mutation is copy-on-write and cannot reach an in-flight stream."""
        from repro.batch.executor import flush_fragments, stream_parallel

        if not queries:
            return BatchResult(
                queries=[], algorithm=DISPLAY_NAMES[self.algorithm]
            )
        if plan is None and self.num_workers == 1 and pool is None:
            # Explicit sequential request: no planning, byte-identical to
            # the pre-planner engine (the differential suites pin this).
            fragments = self._fragment_runner(self.graph.csr_snapshot())(queries)
        else:
            if plan is None:
                plan = self._plan(queries, pool_ready=pool is not None)
            if plan.num_workers <= 1:
                fragments = self._sequential_fragments(queries, plan)
            else:
                fragments = stream_parallel(
                    self.graph,
                    queries,
                    algorithm=self.algorithm,
                    gamma=self.gamma,
                    plan=plan,
                    pool=pool,
                    use_shm=self.use_shm,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )
        result = yield from flush_fragments(fragments, len(queries), ordered)
        if plan is not None and plan.num_workers <= 1 and plan.shards:
            # Predicted-vs-actual for sequentially executed plans (the
            # parallel executor records per shard); together they cover
            # every executed ExecutionPlan.
            actual_seconds = result.stage_timer.total("Enumeration")
            self.metrics.counter(COST_PREDICTED_UNITS_TOTAL).inc(
                plan.total_estimated_cost
            )
            self.metrics.counter(COST_ACTUAL_SECONDS_TOTAL).inc(actual_seconds)
            self.metrics.histogram("repro_shard_seconds").observe(actual_seconds)
        return result

    def _sequential_fragments(
        self, queries: List[HCSTQuery], plan: ExecutionPlan
    ) -> FragmentStream:
        """Sequential execution that reuses the plan's prebuilt artefacts
        (snapshot, workload index, clusters) instead of recomputing them."""
        snapshot = (
            plan.snapshot
            if plan.snapshot is not None
            else self.graph.csr_snapshot()
        )
        if self.algorithm in ("batch", "batch+"):
            return BatchEnum(
                snapshot,
                gamma=self.gamma,
                optimize_search_order=self.algorithm.endswith("+"),
                kernel=plan.kernel,
            ).iter_run(queries, workload=plan.workload, clusters=plan.clusters)
        if self.algorithm in ("basic", "basic+"):
            return BasicEnum(
                snapshot,
                optimize_search_order=self.algorithm.endswith("+"),
                kernel=plan.kernel,
            ).iter_run(queries, workload=plan.workload)
        return self._fragment_runner(snapshot, kernel=plan.kernel)(queries)

    def _fragment_runner(
        self, snapshot: "CSRGraph", kernel: Optional[str] = None
    ) -> Callable[[Sequence[HCSTQuery]], FragmentStream]:
        """The sequential fragment generator of the configured algorithm,
        bound to one sealed snapshot (live mutations cannot reach it).

        ``kernel`` is the concrete substrate a plan resolved; the unplanned
        path resolves the engine's policy cost-blind (``"auto"`` therefore
        stays pure-Python — byte-identical to the pre-kernel engine)."""
        if kernel is None:
            kernel = resolve_kernel(self.kernel)
        if self.algorithm == "pathenum":
            return lambda queries: iter_pathenum_baseline(
                snapshot, queries, kernel=kernel
            )
        if self.algorithm == "basic":
            return BasicEnum(
                snapshot, optimize_search_order=False, kernel=kernel
            ).iter_run
        if self.algorithm == "basic+":
            return BasicEnum(
                snapshot, optimize_search_order=True, kernel=kernel
            ).iter_run
        if self.algorithm == "batch":
            return BatchEnum(
                snapshot, gamma=self.gamma, optimize_search_order=False,
                kernel=kernel,
            ).iter_run
        if self.algorithm == "batch+":
            return BatchEnum(
                snapshot, gamma=self.gamma, optimize_search_order=True,
                kernel=kernel,
            ).iter_run
        if self.algorithm == "dksp":
            from repro.baselines.dksp import iter_dksp_baseline

            return lambda queries: iter_dksp_baseline(snapshot, queries)
        if self.algorithm == "onepass":
            from repro.baselines.onepass import iter_onepass_baseline

            return lambda queries: iter_onepass_baseline(snapshot, queries)
        raise ValueError(f"unhandled algorithm {self.algorithm!r}")


def batch_enumerate(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    algorithm: str = "batch+",
    gamma: float = 0.5,
    num_workers: NumWorkers = "auto",
) -> BatchResult:
    """Functional one-shot wrapper around :class:`BatchQueryEngine`."""
    engine = BatchQueryEngine(
        graph, algorithm=algorithm, gamma=gamma, num_workers=num_workers
    )
    return engine.run(queries)


def stream_enumerate(
    graph: DiGraph,
    queries: Sequence[HCSTQuery],
    algorithm: str = "batch+",
    gamma: float = 0.5,
    num_workers: NumWorkers = "auto",
    ordered: bool = True,
) -> Iterator[Tuple[int, List[Path]]]:
    """Functional wrapper around :meth:`BatchQueryEngine.stream`.

    Yields ``(batch_position, paths)`` tuples as completions land; see the
    engine docstring for the ``ordered`` flush policies.
    """
    engine = BatchQueryEngine(
        graph, algorithm=algorithm, gamma=gamma, num_workers=num_workers
    )
    return engine.stream(queries, ordered=ordered)
