"""Query model, similarity measures and workload generation."""

from repro.queries.query import HCSTQuery, HCsPathQuery, Direction
from repro.queries.similarity import (
    query_similarity,
    group_similarity,
    workload_similarity,
    QuerySimilarityMatrix,
)
from repro.queries.generation import (
    generate_random_queries,
    generate_similar_workload,
    WorkloadSpec,
)
from repro.queries.workload import QueryWorkload

__all__ = [
    "HCSTQuery",
    "HCsPathQuery",
    "Direction",
    "query_similarity",
    "group_similarity",
    "workload_similarity",
    "QuerySimilarityMatrix",
    "generate_random_queries",
    "generate_similar_workload",
    "WorkloadSpec",
    "QueryWorkload",
]
