"""Query workload container.

``QueryWorkload`` bundles a graph and a batch of HC-s-t path queries and
lazily provides the shared artefacts every batch algorithm needs: the
distance index, the pairwise similarity matrix and the average similarity
µ_Q.  Algorithms receive a workload instead of separately-threaded graph /
query / index arguments, so the index is guaranteed to be built exactly once
per batch run (and its construction time can be attributed to the
"BuildIndex" stage of the Fig. 9 decomposition).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bfs.distance_index import CSRDistanceIndex, build_index
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery
from repro.queries.similarity import QuerySimilarityMatrix
from repro.utils.timer import StageTimer
from repro.utils.validation import require, require_vertex


class QueryWorkload:
    """A graph plus a batch of queries and their lazily built shared state."""

    def __init__(
        self,
        graph: DiGraph,
        queries: Sequence[HCSTQuery],
        stage_timer: Optional[StageTimer] = None,
        index: Optional[CSRDistanceIndex] = None,
        csr: Optional[CSRGraph] = None,
    ) -> None:
        require(bool(queries), "a workload needs at least one query")
        # The workload reads the sealed snapshot of the version it was
        # admitted under (copy-on-write, RA002): later graph mutations
        # never disturb its index or similarity matrix — concurrent
        # batches simply pin different versions.
        self.csr: CSRGraph = csr if csr is not None else graph.csr_snapshot()
        for query in queries:
            require_vertex(query.s, self.csr.num_vertices, "query source")
            require_vertex(query.t, self.csr.num_vertices, "query target")
        self.graph = graph
        self.queries: List[HCSTQuery] = list(queries)
        self.stage_timer = stage_timer if stage_timer is not None else StageTimer()
        # The queries are fixed after construction, so the batch-wide
        # aggregates are computed once here instead of on every property
        # access — the planner's cost loop and the clustering stage read
        # them repeatedly.
        self.max_hop_constraint: int = max(query.k for query in self.queries)
        self.sources: List[int] = sorted({query.s for query in self.queries})
        self.targets: List[int] = sorted({query.t for query in self.queries})
        if index is not None:
            # A prebuilt (possibly shipped-from-parent) index is accepted as
            # long as it covers every query; a covering superset prunes
            # identically (Lemma 3.1 only consults this workload's own
            # endpoint distances).
            require(
                index.max_hops >= self.max_hop_constraint,
                "prebuilt index max_hops does not cover this workload",
            )
            for query in self.queries:
                require(
                    index.has_source(query.s) and index.has_target(query.t),
                    f"prebuilt index does not cover {query}",
                )
        self.graph_version: int = self.csr.version
        self._index: Optional[CSRDistanceIndex] = index
        self._similarity: Optional[QuerySimilarityMatrix] = None

    # ------------------------------------------------------------------ #
    # Shared artefacts
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> CSRDistanceIndex:
        """The batch distance index, built on first access ("BuildIndex").

        Built against — and valid for — the workload's sealed snapshot
        (:attr:`csr`, version :attr:`graph_version`).  Mutating the live
        graph afterwards does not invalidate it; a later batch builds its
        own workload against the new head.
        """
        if self._index is None:
            with self.stage_timer.stage("BuildIndex"):
                self._index = build_index(
                    self.csr,
                    self.sources,
                    self.targets,
                    self.max_hop_constraint,
                )
        return self._index

    @property
    def similarity_matrix(self) -> QuerySimilarityMatrix:
        """Pairwise µ matrix (built on first access, reuses the index)."""
        if self._similarity is None:
            index = self.index
            self._similarity = QuerySimilarityMatrix.from_queries(self.queries, index)
        return self._similarity

    def average_similarity(self) -> float:
        """µ_Q of the batch."""
        return self.similarity_matrix.average()

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __repr__(self) -> str:
        return (
            f"QueryWorkload(|Q|={len(self.queries)}, "
            f"graph={self.graph!r}, kmax={self.max_hop_constraint})"
        )
