"""Query types.

Two query notions from the paper:

* :class:`HCSTQuery` — a hop-constrained s-t simple path query ``q(s, t, k)``
  (Section II): enumerate all simple paths from ``s`` to ``t`` with at most
  ``k`` hops.
* :class:`HCsPathQuery` — a HC-s path query ``q_{v,k,G}`` (Definition 4.2):
  all hop-constrained paths starting from ``v`` with hop budget ``k`` on
  either ``G`` (forward) or ``Gr`` (backward).  These are the units of
  shared computation detected by Algorithm 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import require, require_non_negative


class Direction(enum.Enum):
    """Search direction of a HC-s path query."""

    FORWARD = "forward"    # paths on G, starting from a query source
    BACKWARD = "backward"  # paths on Gr, starting from a query target

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Direction.{self.name}"


@dataclass(frozen=True, order=True)
class HCSTQuery:
    """A hop-constrained s-t simple path query ``q(s, t, k)``.

    Attributes
    ----------
    s: source vertex.
    t: target vertex.
    k: hop constraint (paths may use at most ``k`` edges).
    """

    s: int
    t: int
    k: int

    def __post_init__(self) -> None:
        require_non_negative(self.s, "s")
        require_non_negative(self.t, "t")
        require_non_negative(self.k, "k")
        require(self.k >= 1, f"hop constraint k must be >= 1, got {self.k}")
        require(self.s != self.t, "source and target must differ (simple paths)")

    @property
    def forward_budget(self) -> int:
        """Hop budget of the forward HC-s path query: ``⌈k/2⌉``."""
        return (self.k + 1) // 2

    @property
    def backward_budget(self) -> int:
        """Hop budget of the backward HC-s path query: ``⌊k/2⌋``."""
        return self.k // 2

    def forward_subquery(self) -> "HCsPathQuery":
        """The forward HC-s path query ``q_{s, ⌈k/2⌉, G}``."""
        return HCsPathQuery(self.s, self.forward_budget, Direction.FORWARD)

    def backward_subquery(self) -> "HCsPathQuery":
        """The backward HC-s path query ``q_{t, ⌊k/2⌋, Gr}``."""
        return HCsPathQuery(self.t, self.backward_budget, Direction.BACKWARD)

    def split(self, forward_budget: int) -> tuple["HCsPathQuery", "HCsPathQuery"]:
        """Split the hop budget with an explicit forward share.

        Used by the "+" variants whose search-order optimiser may prefer an
        uneven split.  ``forward_budget + backward_budget == k`` always.
        """
        require(
            0 <= forward_budget <= self.k,
            f"forward_budget must be within [0, {self.k}], got {forward_budget}",
        )
        forward = HCsPathQuery(self.s, forward_budget, Direction.FORWARD)
        backward = HCsPathQuery(self.t, self.k - forward_budget, Direction.BACKWARD)
        return forward, backward

    def __str__(self) -> str:
        return f"q(s={self.s}, t={self.t}, k={self.k})"


@dataclass(frozen=True, order=True)
class HCsPathQuery:
    """A HC-s path query ``q_{v,k}`` on ``G`` (forward) or ``Gr`` (backward).

    The results of the query are all hop-constrained paths starting at
    ``vertex`` using at most ``budget`` hops in the given direction.
    """

    vertex: int
    budget: int
    direction: Direction

    def __post_init__(self) -> None:
        require_non_negative(self.vertex, "vertex")
        require_non_negative(self.budget, "budget")

    def dominates(self, other: "HCsPathQuery", distance: float) -> bool:
        """Definition 4.3: ``self ≺ other`` iff they share a direction and
        ``self.budget <= other.budget - dist(other.vertex, self.vertex)``.

        ``distance`` is ``dist(other.vertex, self.vertex)`` in the relevant
        direction (∞ when unreachable, in which case this returns False).
        """
        if self.direction is not other.direction:
            return False
        return self.budget <= other.budget - distance

    def __str__(self) -> str:
        arrow = "G" if self.direction is Direction.FORWARD else "Gr"
        return f"q[{self.vertex}, {self.budget}, {arrow}]"
