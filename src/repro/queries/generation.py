"""Workload generation.

Two generators:

* :func:`generate_random_queries` — the paper's default protocol (Section V,
  "Settings"): random ``(s, t)`` pairs such that ``t`` is reachable from
  ``s`` within ``k`` hops, with ``k`` drawn uniformly from a range.
* :func:`generate_similar_workload` — the Exp-1 protocol: produce a batch
  whose *average pairwise similarity* µ_Q is close to a requested target by
  mixing "anchored" queries (sources/targets drawn from a small
  neighbourhood so their hop-constrained neighbourhoods overlap heavily)
  with fully random queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bfs.distance_index import build_index_for_queries
from repro.bfs.single_source import bfs_distances
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery
from repro.queries.similarity import workload_similarity
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a generated workload (recorded with experiment output)."""

    size: int
    min_k: int
    max_k: int
    seed: int
    target_similarity: Optional[float] = None
    achieved_similarity: Optional[float] = None


def generate_random_queries(
    graph: DiGraph,
    count: int,
    min_k: int = 4,
    max_k: int = 7,
    seed: int = 0,
) -> List[HCSTQuery]:
    """Random reachable queries: ``s`` uniform, ``k`` uniform in
    ``[min_k, max_k]``, ``t`` uniform among vertices reachable from ``s``
    within ``k`` hops (excluding ``s``)."""
    require_positive(count, "count")
    require(1 <= min_k <= max_k, "need 1 <= min_k <= max_k")
    require(graph.num_vertices >= 2, "graph must have at least two vertices")
    rng = random.Random(seed)
    queries: List[HCSTQuery] = []
    attempts = 0
    max_attempts = 500 * count
    while len(queries) < count and attempts < max_attempts:
        attempts += 1
        s = rng.randrange(graph.num_vertices)
        k = rng.randint(min_k, max_k)
        reachable = bfs_distances(graph, s, max_hops=k)
        reachable.pop(s, None)
        if not reachable:
            continue
        t = rng.choice(sorted(reachable))
        queries.append(HCSTQuery(s=s, t=t, k=k))
    require(
        len(queries) == count,
        "failed to generate the requested number of reachable queries; "
        "the graph may be too sparse or disconnected",
    )
    return queries


def generate_similar_workload(
    graph: DiGraph,
    count: int,
    target_similarity: float,
    min_k: int = 4,
    max_k: int = 7,
    seed: int = 0,
    measure: bool = True,
) -> Tuple[List[HCSTQuery], WorkloadSpec]:
    """Generate a workload whose average pairwise similarity µ_Q is close to
    ``target_similarity`` (Exp-1 varies this from 0 % to 90 %).

    Strategy: a fraction ``target_similarity`` of the queries are *anchored*
    — their sources are drawn from the 1-hop out-neighbourhood of a single
    anchor source and their targets from the 1-hop in-neighbourhood of a
    single anchor target, so their Γ/Γr sets overlap almost entirely.  The
    remaining queries are independent random queries.  The achieved µ_Q is
    measured (unless ``measure=False``) and recorded in the returned spec.
    """
    require_positive(count, "count")
    require(0.0 <= target_similarity <= 1.0, "target_similarity must be in [0, 1]")
    rng = random.Random(seed)

    # The average pairwise similarity of a batch made of g groups of m
    # near-identical queries (and negligible cross-group similarity) is
    # roughly (m - 1) / (count - 1), so the group size is chosen to hit the
    # requested target.  Within a group the queries share their source and
    # draw targets from a small pool around a common anchor target, which
    # is also the realistic "burst of related queries" scenario from the
    # paper's motivating applications.
    if count == 1 or target_similarity == 0.0:
        group_size = 1
    else:
        group_size = max(1, int(round(target_similarity * (count - 1))) + 1)
    group_size = min(group_size, count)

    queries: List[HCSTQuery] = []
    while len(queries) < count:
        remaining = count - len(queries)
        size = min(group_size, remaining)
        if size <= 1:
            queries.extend(
                generate_random_queries(
                    graph, remaining, min_k=min_k, max_k=max_k,
                    seed=rng.randrange(2**30),
                )
            )
            break
        queries.extend(_group_queries(graph, size, min_k, max_k, rng))
    rng.shuffle(queries)

    achieved: Optional[float] = None
    if measure and len(queries) >= 2:
        index = build_index_for_queries(
            graph, [(q.s, q.t, q.k) for q in queries]
        )
        achieved = workload_similarity(queries, index)
    spec = WorkloadSpec(
        size=count,
        min_k=min_k,
        max_k=max_k,
        seed=seed,
        target_similarity=target_similarity,
        achieved_similarity=achieved,
    )
    return queries, spec


def _group_queries(
    graph: DiGraph,
    count: int,
    min_k: int,
    max_k: int,
    rng: random.Random,
) -> List[HCSTQuery]:
    """A group of ``count`` queries sharing one source and near-identical
    targets, so their hop-constrained neighbourhoods overlap almost fully."""
    anchor = _find_anchor_pair(graph, min_k, rng)
    require(anchor is not None, "could not find a reachable anchor pair")
    anchor_s, anchor_t = anchor

    # Targets near the anchor target that are still reachable from the
    # anchor source within the smallest hop constraint in play.
    reachable = bfs_distances(graph, anchor_s, max_hops=min_k)
    target_pool = [anchor_t] + [
        v
        for v in list(graph.out_neighbors(anchor_t)) + list(graph.in_neighbors(anchor_t))
        if v != anchor_s and v in reachable
    ]

    queries: List[HCSTQuery] = []
    while len(queries) < count:
        t = target_pool[len(queries) % len(target_pool)]
        k = rng.randint(min_k, max_k)
        queries.append(HCSTQuery(s=anchor_s, t=t, k=k))
    return queries


def _find_anchor_pair(
    graph: DiGraph, max_k: int, rng: random.Random
) -> Optional[Tuple[int, int]]:
    """Find an (s, t) pair with t several hops from s (but within max_k)."""
    best: Optional[Tuple[int, int]] = None
    best_distance = -1
    for _ in range(200):
        s = rng.randrange(graph.num_vertices)
        distances = bfs_distances(graph, s, max_hops=max_k)
        distances.pop(s, None)
        if not distances:
            continue
        # Prefer a target a few hops away so the query has interesting paths.
        t, distance = max(distances.items(), key=lambda item: (item[1], -item[0]))
        if distance > best_distance:
            best = (s, t)
            best_distance = distance
        if best_distance >= max(2, max_k - 2):
            break
    return best


def queries_to_triples(queries: Sequence[HCSTQuery]) -> List[Tuple[int, int, int]]:
    """Convert query objects to raw ``(s, t, k)`` triples."""
    return [(q.s, q.t, q.k) for q in queries]


def triples_to_queries(triples: Sequence[Tuple[int, int, int]]) -> List[HCSTQuery]:
    """Convert raw ``(s, t, k)`` triples to query objects."""
    return [HCSTQuery(s=s, t=t, k=k) for s, t, k in triples]
