"""HC-s-t path query similarity (Definitions 4.4-4.6).

The clustering phase needs a similarity measure between queries although a
query is described only by ``(s, t, k)``.  The paper uses the
*hop-constrained neighbourhoods*: ``Γ(q)`` is the set of vertices reachable
within ``k`` hops from ``s`` on ``G`` and ``Γr(q)`` the set of vertices that
can reach ``t`` within ``k`` hops (a ``k``-hop BFS from ``t`` on ``Gr``).
Two queries whose neighbourhoods overlap heavily will explore the same part
of the graph and thus very likely share HC-s path computation.

``query_similarity`` implements Definition 4.5 as the harmonic mean of the
forward and backward overlap ratios::

    ratio_f = |Γ(qA) ∩ Γ(qB)| / min(|Γ(qA)|, |Γ(qB)|)
    ratio_b = |Γr(qA) ∩ Γr(qB)| / min(|Γr(qA)|, |Γr(qB)|)
    µ(qA, qB) = 2 / (1/ratio_f + 1/ratio_b)

with µ = 0 whenever either intersection is empty (the footnote's special
case).  The measure therefore satisfies the three properties stated in the
paper: it lies in [0, 1], equals 1 when one query's results are nested in
the other's, and equals 0 when the neighbourhoods are disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.bfs.distance_index import DistanceIndex
from repro.queries.query import HCSTQuery


def neighborhoods(
    query: HCSTQuery, index: DistanceIndex
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Return ``(Γ(q), Γr(q))`` for ``query`` using the batch index.

    The index is built from the same BFS traversals, so — as the paper
    notes — no extra traversal is needed to obtain the neighbourhoods.
    """
    forward = index.forward_neighborhood(query.s, query.k)
    backward = index.backward_neighborhood(query.t, query.k)
    return forward, backward


def query_similarity(
    query_a: HCSTQuery,
    query_b: HCSTQuery,
    index: DistanceIndex,
) -> float:
    """µ(qA, qB) — Definition 4.5."""
    forward_a, backward_a = neighborhoods(query_a, index)
    forward_b, backward_b = neighborhoods(query_b, index)
    return similarity_from_neighborhoods(
        forward_a, backward_a, forward_b, backward_b
    )


def similarity_from_neighborhoods(
    forward_a: FrozenSet[int],
    backward_a: FrozenSet[int],
    forward_b: FrozenSet[int],
    backward_b: FrozenSet[int],
) -> float:
    """µ computed from pre-extracted neighbourhood sets."""
    forward_ratio = _overlap_ratio(forward_a, forward_b)
    backward_ratio = _overlap_ratio(backward_a, backward_b)
    if forward_ratio == 0.0 or backward_ratio == 0.0:
        return 0.0
    return 2.0 / (1.0 / forward_ratio + 1.0 / backward_ratio)


def _bitmask(vertices: FrozenSet[int]) -> int:
    """Encode a vertex set as an integer bitmask."""
    mask = 0
    for vertex in vertices:
        mask |= 1 << vertex
    return mask


def _similarity_from_masks(
    fwd_mask_a: int, fwd_size_a: int, fwd_mask_b: int, fwd_size_b: int,
    bwd_mask_a: int, bwd_size_a: int, bwd_mask_b: int, bwd_size_b: int,
) -> float:
    """µ from bitmask-encoded neighbourhoods (same semantics as
    :func:`similarity_from_neighborhoods`)."""
    if min(fwd_size_a, fwd_size_b) == 0 or min(bwd_size_a, bwd_size_b) == 0:
        return 0.0
    forward_intersection = (fwd_mask_a & fwd_mask_b).bit_count()
    backward_intersection = (bwd_mask_a & bwd_mask_b).bit_count()
    if forward_intersection == 0 or backward_intersection == 0:
        return 0.0
    forward_ratio = forward_intersection / min(fwd_size_a, fwd_size_b)
    backward_ratio = backward_intersection / min(bwd_size_a, bwd_size_b)
    return 2.0 / (1.0 / forward_ratio + 1.0 / backward_ratio)


def _overlap_ratio(set_a: FrozenSet[int], set_b: FrozenSet[int]) -> float:
    """``|A ∩ B| / min(|A|, |B|)`` with 0 for empty inputs."""
    if not set_a or not set_b:
        return 0.0
    smaller, larger = (set_a, set_b) if len(set_a) <= len(set_b) else (set_b, set_a)
    intersection = len(smaller & larger)
    if intersection == 0:
        return 0.0
    return intersection / len(smaller)


def group_similarity(
    group_a: Sequence[int],
    group_b: Sequence[int],
    pairwise: "QuerySimilarityMatrix",
) -> float:
    """δ(CA, CB) — Definition 4.6: average pairwise µ across the groups."""
    if not group_a or not group_b:
        return 0.0
    total = 0.0
    for i in group_a:
        for j in group_b:
            total += pairwise.get(i, j)
    return total / (len(group_a) * len(group_b))


def workload_similarity(
    queries: Sequence[HCSTQuery], index: DistanceIndex
) -> float:
    """µ_Q — the average pairwise similarity used by Exp-1 to characterise a
    query set (Section V, Exp-1)."""
    count = len(queries)
    if count < 2:
        return 0.0
    matrix = QuerySimilarityMatrix.from_queries(queries, index)
    total = 0.0
    for i in range(count):
        for j in range(count):
            if i != j:
                total += matrix.get(i, j)
    return total / (count * (count - 1))


@dataclass
class QuerySimilarityMatrix:
    """Dense pairwise µ matrix over a query batch, indexed by position."""

    values: List[List[float]]

    @classmethod
    def from_queries(
        cls, queries: Sequence[HCSTQuery], index: DistanceIndex
    ) -> "QuerySimilarityMatrix":
        """Build the pairwise µ matrix.

        The Γ/Γr sets are encoded as integer bitmasks (one bit per vertex)
        so the |Q|²/2 intersections run as C-level ``&``/``bit_count``
        operations; queries sharing an endpoint and hop constraint reuse
        the same mask.  This keeps the ClusterQuery stage small relative to
        enumeration, as the paper reports (Exp-3).
        """
        count = len(queries)
        mask_cache: Dict[Tuple[str, int, int], Tuple[int, int]] = {}

        def mask_from_distances(distances: Dict[int, int], hops: int) -> Tuple[int, int]:
            mask = 0
            size = 0
            for vertex, distance in distances.items():
                if distance <= hops:
                    mask |= 1 << vertex
                    size += 1
            return mask, size

        def masks_for(query: HCSTQuery) -> Tuple[Tuple[int, int], Tuple[int, int]]:
            forward_key = ("f", query.s, query.k)
            backward_key = ("b", query.t, query.k)
            if forward_key not in mask_cache:
                mask_cache[forward_key] = mask_from_distances(
                    index.from_source[query.s], query.k
                )
            if backward_key not in mask_cache:
                mask_cache[backward_key] = mask_from_distances(
                    index.to_target[query.t], query.k
                )
            return mask_cache[forward_key], mask_cache[backward_key]

        encoded = [masks_for(query) for query in queries]
        values = [[0.0] * count for _ in range(count)]
        for i in range(count):
            values[i][i] = 1.0
            (fwd_mask_i, fwd_size_i), (bwd_mask_i, bwd_size_i) = encoded[i]
            for j in range(i + 1, count):
                (fwd_mask_j, fwd_size_j), (bwd_mask_j, bwd_size_j) = encoded[j]
                mu = _similarity_from_masks(
                    fwd_mask_i, fwd_size_i, fwd_mask_j, fwd_size_j,
                    bwd_mask_i, bwd_size_i, bwd_mask_j, bwd_size_j,
                )
                values[i][j] = mu
                values[j][i] = mu
        return cls(values=values)

    def get(self, i: int, j: int) -> float:
        return self.values[i][j]

    @classmethod
    def from_neighborhood_sets(
        cls,
        neighborhood_pairs: Sequence[Tuple[FrozenSet[int], FrozenSet[int]]],
    ) -> "QuerySimilarityMatrix":
        """Build the matrix from explicit (Γ, Γr) pairs (used in tests)."""
        count = len(neighborhood_pairs)
        values = [[0.0] * count for _ in range(count)]
        for i in range(count):
            values[i][i] = 1.0
            for j in range(i + 1, count):
                mu = similarity_from_neighborhoods(
                    neighborhood_pairs[i][0],
                    neighborhood_pairs[i][1],
                    neighborhood_pairs[j][0],
                    neighborhood_pairs[j][1],
                )
                values[i][j] = mu
                values[j][i] = mu
        return cls(values=values)

    def average(self) -> float:
        """Average off-diagonal similarity (µ_Q)."""
        count = len(self.values)
        if count < 2:
            return 0.0
        total = sum(
            self.values[i][j] for i in range(count) for j in range(count) if i != j
        )
        return total / (count * (count - 1))

    def __len__(self) -> int:
        return len(self.values)
