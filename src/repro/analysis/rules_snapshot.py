"""RA002 — snapshot-version discipline.

Every artefact derived from a :class:`~repro.graph.digraph.DiGraph`
snapshot — the cached CSR packing, a
:class:`~repro.bfs.distance_index.CSRDistanceIndex`, an
:class:`~repro.batch.planner.ExecutionPlan` — is only valid for the
``graph.version`` it was built against (PR 5's snapshot-pinning fix turned
a silent mid-stream corruption into a ``RuntimeError``).  Two checks keep
that discipline machine-enforced:

1. **Stored snapshot artefacts must pin a version or resolve through the
   snapshot store.**  A class that stores a snapshot-derived artefact on
   ``self`` (an assignment whose right-hand side calls
   ``csr_snapshot()``, ``build_index()``, ``from_bytes()``,
   ``.plan()``/``.explain()`` or constructs a ``CSRDistanceIndex`` /
   ``CSRGraph`` / ``ExecutionPlan``) must do one of two things somewhere
   in the class body:

   - record or compare a version (any identifier containing ``version``
     — ``self.graph_version = graph.version`` is the canonical pattern,
     see ``WorkerPool`` and ``QueryWorkload``), or
   - resolve the artefact through the multi-version
     :class:`~repro.graph.snapshots.SnapshotStore` (naming
     ``SnapshotStore`` / ``PinnedSnapshot``, touching
     ``graph.snapshots``, or calling ``pin()`` / ``seal()`` /
     ``resolve()`` — the PR 7 copy-on-write pattern where a sealed,
     immutable snapshot makes explicit version comparison unnecessary).

   Holding the artefact across statements with neither means nothing can
   ever detect that the graph moved underneath it.
2. **Private ``DiGraph`` adjacency state is off limits outside**
   ``repro/graph/``.  Reading ``graph._out`` / ``graph._in`` /
   ``graph._edge_set`` / ``graph._snapshots`` / ``graph._version``
   bypasses both the sorted-adjacency invariant and the version counter;
   use the public accessors (``out_neighbors``, ``csr_snapshot()``,
   ``version``, ``snapshots``).  Accesses through ``self`` are exempt
   (other classes legitimately name their own private fields
   ``_out``/``_in`` — e.g. the query sharing graph Ψ).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Tuple

from repro.analysis.astutil import class_defs, expr_text, is_self_attribute
from repro.analysis.core import Finding, Rule, SourceModule, register

#: Private DiGraph state that must stay inside ``repro/graph/``.
PRIVATE_GRAPH_ATTRIBUTES = frozenset(
    {"_out", "_in", "_edge_set", "_csr", "_csr_version", "_version", "_snapshots"}
)

#: Calls whose result is a snapshot-derived artefact when stored on self.
SNAPSHOT_PRODUCER_CALLS = frozenset(
    {"csr_snapshot", "build_index", "from_bytes", "plan", "explain"}
)

#: Constructors of snapshot-derived artefact types.
SNAPSHOT_TYPES = frozenset({"CSRDistanceIndex", "CSRGraph", "ExecutionPlan"})

#: Names whose presence marks a class as resolving snapshots through the
#: multi-version store rather than an explicit version pin.
STORE_TYPE_NAMES = frozenset({"SnapshotStore", "PinnedSnapshot"})
STORE_ACCESS_NAMES = frozenset({"snapshots", "pin", "seal", "resolve"})


def _is_graph_package(module: SourceModule) -> bool:
    return "repro/graph/" in module.posix_path


def _called_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _snapshot_producers(value: ast.expr) -> List[ast.Call]:
    """Calls inside ``value`` that produce a snapshot-derived artefact."""
    producers = []
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            name = _called_name(node)
            if name in SNAPSHOT_PRODUCER_CALLS or name in SNAPSHOT_TYPES:
                producers.append(node)
    return producers


def _mentions_version(classdef: ast.ClassDef) -> bool:
    """Does the class body touch any ``*version*`` identifier?"""
    for node in ast.walk(classdef):
        if isinstance(node, ast.Name) and "version" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "version" in node.attr.lower():
            return True
    return False


def _resolves_via_store(classdef: ast.ClassDef) -> bool:
    """Does the class resolve snapshots through the ``SnapshotStore``?

    True when the body names ``SnapshotStore``/``PinnedSnapshot``, reads a
    ``.snapshots`` attribute, or calls ``pin()``/``seal()``/``resolve()``
    — sealed snapshots are immutable, so such classes need no explicit
    ``graph.version`` comparison.
    """
    for node in ast.walk(classdef):
        if isinstance(node, ast.Name) and node.id in STORE_TYPE_NAMES:
            return True
        if isinstance(node, ast.Attribute) and (
            node.attr in STORE_TYPE_NAMES or node.attr in STORE_ACCESS_NAMES
        ):
            return True
    return False


def _self_attribute_stores(
    classdef: ast.ClassDef,
) -> Iterator[Tuple[ast.AST, str, ast.expr]]:
    """Every ``self.<attr> = <value>`` in the class's methods."""
    for node in ast.walk(classdef):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if is_self_attribute(target):
                    yield node, target.attr, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if is_self_attribute(node.target):
                yield node, node.target.attr, node.value


@register
class SnapshotDisciplineRule(Rule):
    rule_id = "RA002"
    title = (
        "stored snapshot artefacts must pin graph.version; private DiGraph "
        "adjacency is off limits outside repro/graph/"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not _is_graph_package(module):
            yield from self._check_private_access(module)
        yield from self._check_version_pinning(module)

    def _check_private_access(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in PRIVATE_GRAPH_ATTRIBUTES
                and not is_self_attribute(node)
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "cls"
                )
            ):
                yield self.finding(
                    module,
                    node,
                    f"access to private graph state "
                    f"'{expr_text(node)}' outside repro/graph/; use the "
                    "public DiGraph API (out_neighbors/in_neighbors/"
                    "csr_snapshot/version)",
                )

    def _check_version_pinning(self, module: SourceModule) -> Iterator[Finding]:
        for classdef in class_defs(module.tree):
            stores = [
                (node, attr, producers)
                for node, attr, value in _self_attribute_stores(classdef)
                for producers in [_snapshot_producers(value)]
                if producers
            ]
            if (
                not stores
                or _mentions_version(classdef)
                or _resolves_via_store(classdef)
            ):
                continue
            for node, attr, producers in stores:
                produced = ", ".join(
                    sorted({_called_name(call) for call in producers})
                )
                yield self.finding(
                    module,
                    node,
                    f"'{classdef.name}.{attr}' stores a snapshot-derived "
                    f"artefact ({produced}) but the class never pins or "
                    "compares a graph version, nor resolves it through "
                    "the SnapshotStore; record graph.version at build "
                    "time and re-check it before reuse, or hold a "
                    "PinnedSnapshot from graph.snapshots.pin()",
                )
