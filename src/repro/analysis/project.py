"""Project index: cross-module resolution over per-file summaries.

:class:`ProjectIndex` is built once per scan from the picklable
:class:`~repro.analysis.summaries.ModuleSummary` objects the per-file
pass produced (in-parent — workers never see each other's modules).  It
answers the questions the project rules ask:

* *name resolution* — which class/function does this spelling refer to,
  given the module it appears in (local definitions, ``import x as y``
  aliases, ``from m import n`` names with relative levels)?  Modules are
  matched by dotted **suffix**, so scans rooted anywhere (absolute test
  paths, the fixture corpus) resolve the same way as ``src``-rooted ones;
* *the call graph* — ``self.method``, ``self.attr.method``,
  ``helper()``, ``module.func()``, ``localvar.method()`` and
  ``ClassName.method()`` edges, resolved to function summaries;
* *lock identity* — a held-lock spelling like ``self._snapshots.lock``
  resolved through attribute types and ``@property`` aliases to a stable
  ``(module, Class.attr)`` identity plus its reentrancy;
* *transitive facts* — the set of locks a function may acquire through
  any chain of resolved calls (RA007), and the set of resource kinds it
  transitively releases (RA008 guard resolution).

Every resolver returns ``None`` when the evidence is ambiguous or
missing; the rules treat ``None`` as "stay silent", which is what keeps
the repo-wide scan quiet on code the index cannot see through.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.summaries import (
    CallSite,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
)

#: ``(dotted module, "Class.attr" | "func.<var>")`` — stable lock identity.
LockId = Tuple[str, str]

#: ``(module path, function qualname)`` — stable function key.
FunctionKey = Tuple[str, str]

#: Class names that are unpicklable by fiat (no ``__reduce__`` marker in
#: the source, but known to hold process-local state).
KNOWN_UNPICKLABLE_CLASSES = frozenset({"Tracer"})


class ProjectIndex:
    """Cross-module symbol tables + resolved call/lock graphs."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Tuple[ModuleSummary, ...] = tuple(summaries)
        self.by_path: Dict[str, ModuleSummary] = {
            module.path: module for module in summaries
        }
        self._by_dotted: Dict[str, List[ModuleSummary]] = {}
        for module in summaries:
            self._by_dotted.setdefault(module.dotted, []).append(module)
        self._classes_by_name: Dict[
            str, List[Tuple[ModuleSummary, ClassSummary]]
        ] = {}
        self.functions: Dict[FunctionKey, Tuple[ModuleSummary, FunctionSummary]] = {}
        for module in summaries:
            for classdef in module.classes:
                self._classes_by_name.setdefault(classdef.name, []).append(
                    (module, classdef)
                )
            for function in module.functions:
                self.functions[(module.path, function.qualname)] = (
                    module,
                    function,
                )
        #: Class names provably unpicklable: raising ``__reduce__`` in the
        #: scanned source, or the known-unpicklable allowlist.
        self.unpicklable_classes: Dict[str, str] = {}
        for name in KNOWN_UNPICKLABLE_CLASSES:
            self.unpicklable_classes[name] = "holds process-local state"
        for module in summaries:
            for classdef in module.classes:
                if classdef.reduce_raises:
                    self.unpicklable_classes[classdef.name] = (
                        "its __reduce__ raises"
                    )

        self.lock_reentrant: Dict[LockId, bool] = {}
        self.resolved_calls: Dict[
            FunctionKey, List[Tuple[FunctionKey, CallSite]]
        ] = {}
        self.direct_locks: Dict[FunctionKey, Set[LockId]] = {}
        self.transitive_locks: Dict[FunctionKey, FrozenSet[LockId]] = {}
        self.transitive_release_kinds: Dict[FunctionKey, FrozenSet[str]] = {}
        self._build_graphs()

    @classmethod
    def build(cls, summaries: Sequence[ModuleSummary]) -> "ProjectIndex":
        return cls(summaries)

    # -- module / class / function resolution ---------------------------
    def resolve_module(
        self, written: str, importer: Optional[ModuleSummary] = None, level: int = 0
    ) -> Optional[ModuleSummary]:
        """Resolve a module name as written at an import site.

        Relative imports are made absolute against the importer's dotted
        name; the result is matched against scanned modules by dotted
        suffix.  Ambiguity (several scanned modules share the suffix)
        resolves to ``None``.
        """
        target = written
        if level > 0 and importer is not None:
            base = importer.dotted.split(".")
            if level > len(base):
                return None
            base = base[: len(base) - level]
            target = ".".join(base + [written]) if written else ".".join(base)
        if not target:
            return None
        exact = self._by_dotted.get(target)
        if exact is not None:
            return exact[0] if len(exact) == 1 else None
        suffix = "." + target
        matches = [
            module
            for dotted, bucket in self._by_dotted.items()
            if dotted.endswith(suffix)
            for module in bucket
        ]
        return matches[0] if len(matches) == 1 else None

    def resolve_class(
        self, module: ModuleSummary, spelling: str
    ) -> Optional[Tuple[ModuleSummary, ClassSummary]]:
        """Resolve a class spelling (``Name`` or ``alias.Name``) seen in
        ``module`` to its defining ``(module, class summary)``."""
        parts = spelling.split(".")
        if len(parts) == 2:
            alias, name = parts
            source = dict(module.import_aliases).get(alias)
            if source is None:
                return None
            target = self.resolve_module(source, module)
            if target is None:
                return None
            return self._class_in(target, name)
        if len(parts) != 1:
            return None
        name = parts[0]
        local = self._class_in(module, name)
        if local is not None:
            return local
        for imported, source, symbol, level in module.from_imports:
            if imported != name:
                continue
            target = self.resolve_module(source, module, level)
            if target is None:
                return None  # the import exists but points outside the scan
            return self._class_in(target, symbol)
        candidates = self._classes_by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def _class_in(
        self, module: ModuleSummary, name: str
    ) -> Optional[Tuple[ModuleSummary, ClassSummary]]:
        for classdef in module.classes:
            if classdef.name == name:
                return (module, classdef)
        return None

    def _function_in(
        self, module: ModuleSummary, name: str, class_name: Optional[str] = None
    ) -> Optional[Tuple[ModuleSummary, FunctionSummary]]:
        qualname = name if class_name is None else f"{class_name}.{name}"
        found = self.functions.get((module.path, qualname))
        return found

    def own_class(
        self, module: ModuleSummary, function: FunctionSummary
    ) -> Optional[ClassSummary]:
        if function.class_name is None:
            return None
        resolved = self._class_in(module, function.class_name)
        return resolved[1] if resolved is not None else None

    def resolve_call(
        self,
        module: ModuleSummary,
        function: FunctionSummary,
        parts: Tuple[str, ...],
    ) -> Optional[Tuple[ModuleSummary, FunctionSummary]]:
        """Resolve one call site to its callee's summary, or ``None``."""
        if not parts:
            return None
        if parts[0] == "self" and function.class_name is not None:
            if len(parts) == 2:
                return self._function_in(module, parts[1], function.class_name)
            if len(parts) == 3:
                own = self.own_class(module, function)
                if own is None:
                    return None
                attr_type = dict(own.attr_types).get(parts[1])
                if attr_type is None:
                    return None
                resolved = self.resolve_class(module, attr_type)
                if resolved is None:
                    return None
                target_module, target_class = resolved
                return self._function_in(
                    target_module, parts[2], target_class.name
                )
            return None
        if len(parts) == 1:
            name = parts[0]
            local = self._function_in(module, name)
            if local is not None:
                return local
            classdef = self._class_in(module, name)
            if classdef is not None:
                return self._function_in(module, "__init__", name)
            for imported, source, symbol, level in module.from_imports:
                if imported != name:
                    continue
                target = self.resolve_module(source, module, level)
                if target is None:
                    return None
                found = self._function_in(target, symbol)
                if found is not None:
                    return found
                if self._class_in(target, symbol) is not None:
                    return self._function_in(target, "__init__", symbol)
                return None
            return None
        if len(parts) == 2:
            base, name = parts
            source = dict(module.import_aliases).get(base)
            if source is not None:
                target = self.resolve_module(source, module)
                if target is None:
                    return None
                found = self._function_in(target, name)
                if found is not None:
                    return found
                if self._class_in(target, name) is not None:
                    return self._function_in(target, "__init__", name)
                return None
            local_type = dict(function.local_types).get(base)
            if local_type is not None:
                resolved = self.resolve_class(module, local_type)
                if resolved is None:
                    return None
                target_module, target_class = resolved
                return self._function_in(target_module, name, target_class.name)
            resolved = self.resolve_class(module, base)
            if resolved is not None:
                target_module, target_class = resolved
                return self._function_in(target_module, name, target_class.name)
            return None
        return None

    # -- lock resolution ------------------------------------------------
    def _class_lock(
        self, module: ModuleSummary, classdef: ClassSummary, attr: str
    ) -> Optional[Tuple[LockId, bool]]:
        lock_attrs = dict(classdef.lock_attrs)
        aliases = dict(classdef.property_aliases)
        target = attr
        if target not in lock_attrs and target in aliases:
            target = aliases[target]
        if target in lock_attrs:
            return (
                (module.dotted, f"{classdef.name}.{target}"),
                lock_attrs[target],
            )
        return None

    def resolve_lock(
        self,
        module: ModuleSummary,
        function: FunctionSummary,
        spelling: str,
    ) -> Optional[Tuple[LockId, bool]]:
        """Resolve a held/acquired lock spelling to ``(identity, reentrant)``.

        Handles ``self.<attr>`` (own class), ``self.<attr>.<attr2>``
        (through the attribute's inferred type), ``<local>.<attr>``
        (through a local variable's inferred type) and bare local lock
        variables.  Anything else — including spellings that reach
        classes outside the scan — resolves to ``None``.
        """
        parts = spelling.split(".")
        if parts[0] == "self" and function.class_name is not None:
            own = self.own_class(module, function)
            if own is None:
                return None
            if len(parts) == 2:
                return self._class_lock(module, own, parts[1])
            if len(parts) == 3:
                attr_type = dict(own.attr_types).get(parts[1])
                if attr_type is None:
                    return None
                resolved = self.resolve_class(module, attr_type)
                if resolved is None:
                    return None
                return self._class_lock(resolved[0], resolved[1], parts[2])
            return None
        if len(parts) == 1:
            local_locks = dict(function.local_locks)
            if parts[0] in local_locks:
                identity = (
                    module.dotted,
                    f"{function.qualname}.<{parts[0]}>",
                )
                return identity, local_locks[parts[0]]
            return None
        if len(parts) == 2:
            local_type = dict(function.local_types).get(parts[0])
            if local_type is None:
                return None
            resolved = self.resolve_class(module, local_type)
            if resolved is None:
                return None
            return self._class_lock(resolved[0], resolved[1], parts[1])
        return None

    # -- derived graphs -------------------------------------------------
    def _build_graphs(self) -> None:
        release_direct: Dict[FunctionKey, Set[str]] = {}
        for key, (module, function) in self.functions.items():
            edges: List[Tuple[FunctionKey, CallSite]] = []
            for call in function.calls:
                resolved = self.resolve_call(module, function, call.parts)
                if resolved is None:
                    continue
                callee_key = (resolved[0].path, resolved[1].qualname)
                edges.append((callee_key, call))
            self.resolved_calls[key] = edges
            locks: Set[LockId] = set()
            for acquire in function.lock_acquires:
                resolved_lock = self.resolve_lock(
                    module, function, acquire.spelling
                )
                if resolved_lock is not None:
                    identity, reentrant = resolved_lock
                    locks.add(identity)
                    self.lock_reentrant.setdefault(identity, reentrant)
            self.direct_locks[key] = locks
            release_direct[key] = set(function.release_kinds)

        self.transitive_locks = _fixpoint(
            self.direct_locks,
            {
                key: [callee for callee, _ in edges]
                for key, edges in self.resolved_calls.items()
            },
        )
        self.transitive_release_kinds = _fixpoint(
            release_direct,
            {
                key: [callee for callee, _ in edges]
                for key, edges in self.resolved_calls.items()
            },
        )


def _fixpoint(
    direct: Dict[FunctionKey, Set[object]],
    edges: Dict[FunctionKey, List[FunctionKey]],
) -> Dict[FunctionKey, FrozenSet[object]]:
    """Propagate set-valued facts along call edges to a fixpoint."""
    facts: Dict[FunctionKey, Set[object]] = {
        key: set(values) for key, values in direct.items()
    }
    changed = True
    while changed:
        changed = False
        for key, callees in edges.items():
            bucket = facts.setdefault(key, set())
            before = len(bucket)
            for callee in callees:
                bucket |= facts.get(callee, set())
            if len(bucket) != before:
                changed = True
    return {key: frozenset(values) for key, values in facts.items()}
