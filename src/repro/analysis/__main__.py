"""Command-line entry point: ``python -m repro.analysis <paths>``.

Exit codes: 0 — no findings; 1 — findings reported; 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import (
    DEFAULT_EXCLUDED_DIRS,
    Finding,
    all_rules,
    analyze_paths,
)


def _render_text(findings: Sequence[Finding]) -> str:
    return "\n".join(finding.render() for finding in findings)


def _render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        [
            {
                "file": finding.file,
                "line": finding.line,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in findings
        ],
        indent=2,
    )


def _render_github(findings: Sequence[Finding]) -> str:
    # GitHub workflow commands: annotate the PR diff at file:line.  The
    # message payload must stay on one line; %0A is the escaped newline.
    lines = []
    for finding in findings:
        message = finding.message.replace("%", "%25").replace(
            "\n", "%0A"
        )
        lines.append(
            f"::error file={finding.file},line={finding.line},"
            f"title={finding.rule_id}::{message}"
        )
    return "\n".join(lines)


FORMATS = {
    "text": _render_text,
    "json": _render_json,
    "github": _render_github,
}


def _parse_jobs(value: str) -> int:
    if value == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects an integer or 'auto', got {value!r}"
        )
    if jobs < 1:
        raise argparse.ArgumentTypeError("--jobs must be >= 1")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Run the repo's AST invariant rules (per-file RA001-RA006 and "
            "project-wide RA007-RA009) over Python sources and report "
            "violations as file:line: RA###: message."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (directories are walked)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all), e.g. RA001,RA004",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--no-default-excludes",
        action="store_true",
        help=(
            "also scan directories excluded by default "
            f"({', '.join(sorted(DEFAULT_EXCLUDED_DIRS))})"
        ),
    )
    parser.add_argument(
        "--jobs",
        metavar="N",
        type=_parse_jobs,
        default=1,
        help=(
            "scan files across N worker processes ('auto' = cpu count); "
            "findings are byte-identical to a sequential scan"
        ),
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATS),
        default="text",
        help=(
            "output renderer: 'text' (file:line: RA###: message), 'json' "
            "(machine-readable array), or 'github' (workflow ::error "
            "annotations)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: provide at least one path to analyze "
            "(or --list-rules)",
            file=sys.stderr,
        )
        return 2

    select: Optional[List[str]] = None
    if args.select:
        select = [part for part in args.select.split(",") if part.strip()]
    try:
        rules = all_rules(select)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    excluded = frozenset() if args.no_default_excludes else DEFAULT_EXCLUDED_DIRS
    findings = analyze_paths(
        args.paths, rules=rules, excluded_dirs=excluded, jobs=args.jobs
    )
    rendered = FORMATS[args.format](findings)
    if rendered:
        print(rendered)
    if findings:
        print(
            f"{len(findings)} finding(s) across "
            f"{len({finding.file for finding in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
