"""Command-line entry point: ``python -m repro.analysis <paths>``.

Exit codes: 0 — no findings; 1 — findings reported; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import (
    DEFAULT_EXCLUDED_DIRS,
    all_rules,
    analyze_paths,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Run the repo's AST invariant rules (RA001-RA005) over Python "
            "sources and report violations as file:line: RA###: message."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (directories are walked)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all), e.g. RA001,RA004",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--no-default-excludes",
        action="store_true",
        help=(
            "also scan directories excluded by default "
            f"({', '.join(sorted(DEFAULT_EXCLUDED_DIRS))})"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: provide at least one path to analyze "
            "(or --list-rules)",
            file=sys.stderr,
        )
        return 2

    select: Optional[List[str]] = None
    if args.select:
        select = [part for part in args.select.split(",") if part.strip()]
    try:
        rules = all_rules(select)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    excluded = frozenset() if args.no_default_excludes else DEFAULT_EXCLUDED_DIRS
    findings = analyze_paths(args.paths, rules=rules, excluded_dirs=excluded)
    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"{len(findings)} finding(s) across "
            f"{len({finding.file for finding in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
