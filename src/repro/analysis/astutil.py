"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def class_defs(tree: ast.AST) -> Iterator[ast.ClassDef]:
    """Every class definition in the module, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def methods_of(classdef: ast.ClassDef) -> Iterator[FunctionNode]:
    """The class's immediate methods (no nested classes/functions)."""
    for node in classdef.body:
        if isinstance(node, FUNCTION_NODES):
            yield node


def is_self_attribute(node: ast.AST, attr: Optional[str] = None) -> bool:
    """True for ``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def expr_text(node: ast.AST) -> str:
    """Source-ish text of an expression (best effort, for messages)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse covers all exprs we hit
        return f"<{type(node).__name__}>"


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without entering nested def/lambda/class.

    The root itself is not yielded; comprehensions are traversed (they do
    not move code to a later execution time the way a nested function
    does — their body runs where they appear lexically).
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


def assigned_name_pairs(
    assign: ast.Assign,
) -> List[Tuple[str, ast.expr]]:
    """``(name, value expression)`` pairs bound by a simple assignment.

    Handles ``x = expr`` and the pairwise tuple form
    ``a, b = expr_a, expr_b``; anything fancier yields nothing.
    """
    pairs: List[Tuple[str, ast.expr]] = []
    for target in assign.targets:
        if isinstance(target, ast.Name):
            pairs.append((target.id, assign.value))
        elif isinstance(target, (ast.Tuple, ast.List)) and isinstance(
            assign.value, (ast.Tuple, ast.List)
        ):
            if len(target.elts) == len(assign.value.elts):
                for element, value in zip(target.elts, assign.value.elts):
                    if isinstance(element, ast.Name):
                        pairs.append((element.id, value))
    return pairs


def module_level_callables(tree: ast.Module) -> Set[str]:
    """Names that resolve to module-level (hence picklable) callables:
    top-level ``def``/``class`` statements plus every imported name."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, FUNCTION_NODES + (ast.ClassDef,)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def imported_module_names(tree: ast.Module) -> Set[str]:
    """Top-level names bound to imported *modules* (``import x [as y]``)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names
