"""RA009 — transitive pool-boundary picklability.

RA003 checks the *callable* handed to ``pool.submit`` / ``initargs``
(must be module-level).  RA009 extends the check to the *payload*: every
argument flowing across the process boundary is chased through local
assignment chains and classified.  Values that provably cannot pickle:

* generator expressions and results of calling a **generator function**
  (resolved project-wide — the generator function may live in another
  module);
* lambdas passed as task arguments;
* freshly created ``threading`` primitives (locks, conditions,
  semaphores) and ``self``-attributes the class summary identifies as
  lock attributes;
* instances of classes whose ``__reduce__`` raises (``AttachedCSR``)
  or that are known process-local (``Tracer``) — whether constructed
  inline, bound to a local, or stored on ``self`` with a resolvable
  attribute type;
* ``.attach()`` results (process-local shared-memory mappings) and
  ``open(...)`` handles.

Everything else — parameters, attributes of unknown type, results of
non-generator calls — is silent: the rule only speaks when the payload
is provably wrong, so a clean scan stays meaningful.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.core import Finding, ProjectRule, register
from repro.analysis.project import ProjectIndex
from repro.analysis.summaries import FunctionSummary, ModuleSummary, SubmitPayload


@register
class PickleFlowRule(ProjectRule):
    rule_id = "RA009"
    title = (
        "values crossing the worker-pool boundary (submit args, initargs) "
        "must be picklable"
    )

    def check_project(self, index: ProjectIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fkey in sorted(index.functions):
            module, function = index.functions[fkey]
            for payload in function.submit_payloads:
                reason = self._diagnose(index, module, function, payload)
                if reason is None:
                    continue
                where = (
                    "initializer initargs"
                    if payload.role == "initargs"
                    else f"submit to {payload.receiver}"
                )
                findings.append(
                    self.project_finding(
                        module.path,
                        payload.lineno,
                        f"in {function.qualname}: '{payload.spelling}' "
                        f"crosses the pool boundary ({where}) but is "
                        f"{reason} — it cannot be pickled",
                    )
                )
        return findings

    def _diagnose(
        self,
        index: ProjectIndex,
        module: ModuleSummary,
        function: FunctionSummary,
        payload: SubmitPayload,
    ) -> Optional[str]:
        kind, _, detail = payload.verdict.partition(":")
        if kind == "definite":
            return detail
        if kind == "gencall":
            parts = tuple(detail.split("."))
            # An inline constructor of a known-unpicklable class may not
            # resolve to an ``__init__`` summary (the class can omit one);
            # the terminal name is evidence enough.
            why = index.unpicklable_classes.get(parts[-1])
            if why is not None:
                return f"a {parts[-1]} instance ({why})"
            resolved = index.resolve_call(module, function, parts)
            if resolved is None:
                return None
            callee_module, callee = resolved
            if callee.is_generator:
                return (
                    f"the result of generator function "
                    f"{callee_module.dotted}.{callee.qualname} (a generator)"
                )
            if (
                callee.name == "__init__"
                and callee.class_name in index.unpicklable_classes
            ):
                why = index.unpicklable_classes[callee.class_name]
                return f"a {callee.class_name} instance ({why})"
            return None
        if kind == "selfattr":
            own = index.own_class(module, function)
            if own is None:
                return None
            lock_attrs = dict(own.lock_attrs)
            if detail in lock_attrs:
                return f"the lock attribute self.{detail}"
            return None
        if kind == "type":
            terminal = detail.split(".")[-1]
            why = index.unpicklable_classes.get(terminal)
            if why is None:
                return None
            return f"a {terminal} instance ({why})"
        return None
