"""Repo-specific AST invariant checker (``python -m repro.analysis``).

Public API re-exported here; the rule catalog and authoring guide live in
``src/repro/analysis/README.md``.
"""

from repro.analysis.core import (
    DEFAULT_EXCLUDED_DIRS,
    PARSE_ERROR_RULE_ID,
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    all_rules,
    analyze_paths,
    analyze_source,
    iter_python_files,
    register,
)

__all__ = [
    "DEFAULT_EXCLUDED_DIRS",
    "PARSE_ERROR_RULE_ID",
    "Finding",
    "ProjectRule",
    "Rule",
    "SourceModule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "register",
]
