"""RA001 — lock discipline for ``_GUARDED_BY_LOCK`` attributes.

A class that shares mutable state between threads declares the guarded
attribute names in a class-level ``_GUARDED_BY_LOCK`` frozenset (see
:class:`repro.batch.service.IngestionService` for the canonical example)::

    class Service:
        _GUARDED_BY_LOCK = frozenset({"_pending", "_completed"})

        def __init__(self):
            self._lock = threading.Condition()
            self._pending = deque()          # construction is exempt
            self._completed = 0

        def submit(self, item):
            with self._lock:                 # every later access is guarded
                self._pending.append(item)

RA001 then flags every read or write of a declared attribute that is not
lexically inside a ``with self._lock:`` block.  Two deliberate choices:

* ``__init__`` is exempt — the object is not yet visible to other threads
  while it is being constructed.
* Entering a nested ``def``/``lambda`` resets the "lock held" state: a
  closure created under the lock may run long after the lock was released
  (callbacks are the classic leak), so an access inside one only passes if
  the closure itself takes the lock.  A false positive from an
  immediately-invoked closure can be suppressed with
  ``# repro: ignore[RA001]`` plus a justification.

This turns the comment-only "guarded by self._lock" convention into a
static race detector: a new method that touches a counter without taking
the lock fails CI instead of waiting for a lucky thread interleaving.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterable, Iterator, List

from repro.analysis.astutil import is_self_attribute, methods_of
from repro.analysis.core import Finding, Rule, SourceModule, register

#: Class-level declaration the rule looks for.
GUARD_DECLARATION = "_GUARDED_BY_LOCK"

#: The lock attribute the declaration refers to.
LOCK_ATTRIBUTE = "_lock"

#: Methods exempt from the check (object not yet shared across threads).
EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def guarded_attribute_names(classdef: ast.ClassDef) -> FrozenSet[str]:
    """The string constants of a class-level ``_GUARDED_BY_LOCK`` set."""
    for statement in classdef.body:
        targets: List[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        if not any(
            isinstance(target, ast.Name) and target.id == GUARD_DECLARATION
            for target in targets
        ):
            continue
        names = set()
        assert value is not None
        for node in ast.walk(value):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
        return frozenset(names)
    return frozenset()


def _takes_self_lock(with_node: ast.With | ast.AsyncWith) -> bool:
    return any(
        is_self_attribute(item.context_expr, LOCK_ATTRIBUTE)
        for item in with_node.items
    )


@register
class LockDisciplineRule(Rule):
    rule_id = "RA001"
    title = (
        "attributes declared in _GUARDED_BY_LOCK may only be accessed "
        "inside `with self._lock:`"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for classdef in ast.walk(module.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            guarded = guarded_attribute_names(classdef)
            if not guarded:
                continue
            for method in methods_of(classdef):
                if method.name in EXEMPT_METHODS:
                    continue
                yield from self._scan_body(
                    module, classdef, method.body, guarded, locked=False
                )

    def _scan_body(
        self,
        module: SourceModule,
        classdef: ast.ClassDef,
        nodes: Iterable[ast.AST],
        guarded: FrozenSet[str],
        locked: bool,
    ) -> Iterator[Finding]:
        for node in nodes:
            yield from self._scan_node(module, classdef, node, guarded, locked)

    def _scan_node(
        self,
        module: SourceModule,
        classdef: ast.ClassDef,
        node: ast.AST,
        guarded: FrozenSet[str],
        locked: bool,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_locked = locked or _takes_self_lock(node)
            # The context expressions themselves run before the lock is
            # held; the body runs with it.
            for item in node.items:
                yield from self._scan_node(
                    module, classdef, item.context_expr, guarded, locked
                )
            yield from self._scan_body(
                module, classdef, node.body, guarded, inner_locked
            )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callable may outlive the lock scope it was created
            # in; require it to take the lock itself.
            body = node.body if isinstance(node.body, list) else [node.body]
            yield from self._scan_body(
                module, classdef, body, guarded, locked=False
            )
            return
        if (
            isinstance(node, ast.Attribute)
            and is_self_attribute(node)
            and node.attr in guarded
            and not locked
        ):
            yield self.finding(
                module,
                node,
                f"'{classdef.name}.{node.attr}' is declared in "
                f"{GUARD_DECLARATION} but accessed outside "
                f"`with self.{LOCK_ATTRIBUTE}:`",
            )
            # Fall through: still scan the value side (self) — harmless.
        yield from self._scan_body(
            module, classdef, ast.iter_child_nodes(node), guarded, locked
        )
