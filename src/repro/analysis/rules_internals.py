"""RA004 — leaky internals.

A public method that ends in ``return self._rows`` hands the caller a
live reference to private mutable state: one ``result.append(...)`` by a
consumer and the object's invariants are gone, with the corruption
surfacing far from the mutation (this is exactly the PR 1 streaming bug —
fragments yielded the engine's internal per-position lists).

The rule flags ``return self._x`` inside a public method (name not
starting with ``_``) when ``_x`` can be shown to hold a *mutable
container*:

* somewhere in the class it is assigned a list/dict/set display, a
  comprehension, or a call to ``list``/``dict``/``set``/``deque``/
  ``defaultdict``/``Counter``/``OrderedDict``; or
* it carries a ``List[...]``/``Dict[...]``/``Set[...]``/``list``/…
  annotation.

Attributes that are never provably mutable (ints, strings, tuples,
frozensets, arbitrary objects) are left alone, as are private methods —
intra-class plumbing may share references deliberately.

Fix by returning a copy (``list(self._x)``, ``dict(self._x)``) or a
read-only view.  When sharing really is the contract — a hot-path cache
whose callers promise not to mutate — suppress with
``# repro: ignore[RA004]`` and say why (see
``CSRGraph.adjacency_lists``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Set

from repro.analysis.astutil import (
    class_defs,
    is_self_attribute,
    methods_of,
    walk_scope,
)
from repro.analysis.core import Finding, Rule, SourceModule, register

#: Constructor names whose result is a mutable container.
MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
        "bytearray",
    }
)

#: Annotation heads naming mutable container types.
MUTABLE_ANNOTATIONS = frozenset(
    {
        "list",
        "dict",
        "set",
        "List",
        "Dict",
        "Set",
        "Deque",
        "DefaultDict",
        "MutableMapping",
        "MutableSequence",
        "MutableSet",
        "bytearray",
    }
)


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in MUTABLE_CONSTRUCTORS
    return False


def _annotation_head(annotation: ast.expr) -> str:
    node: ast.expr = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _mutable_private_attributes(classdef: ast.ClassDef) -> Dict[str, int]:
    """``{attr: lineno}`` of private attrs provably holding mutable state."""
    mutable: Dict[str, int] = {}
    for node in ast.walk(classdef):
        if isinstance(node, ast.Assign):
            if _is_mutable_value(node.value):
                for target in node.targets:
                    if is_self_attribute(target) and target.attr.startswith("_"):
                        mutable.setdefault(target.attr, node.lineno)
        elif isinstance(node, ast.AnnAssign):
            if is_self_attribute(node.target) and node.target.attr.startswith("_"):
                if _annotation_head(node.annotation) in MUTABLE_ANNOTATIONS or (
                    node.value is not None and _is_mutable_value(node.value)
                ):
                    mutable.setdefault(node.target.attr, node.lineno)
    return mutable


@register
class LeakyInternalsRule(Rule):
    rule_id = "RA004"
    title = (
        "public methods must not return bare references to private "
        "mutable containers"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for classdef in class_defs(module.tree):
            mutable = _mutable_private_attributes(classdef)
            if not mutable:
                continue
            yield from self._check_class(module, classdef, set(mutable))

    def _check_class(
        self, module: SourceModule, classdef: ast.ClassDef, mutable: Set[str]
    ) -> Iterator[Finding]:
        for method in methods_of(classdef):
            if method.name.startswith("_"):
                continue
            for node in walk_scope(method):
                value = None
                verb = "returns"
                if isinstance(node, ast.Return):
                    value = node.value
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    value = node.value
                    verb = "yields"
                if (
                    value is not None
                    and is_self_attribute(value)
                    and value.attr in mutable
                ):
                    yield self.finding(
                        module,
                        node,
                        f"public method '{classdef.name}.{method.name}' "
                        f"{verb} internal mutable container "
                        f"'self.{value.attr}' by reference; return a copy "
                        "(e.g. list(...)) or suppress with a justification "
                        "if sharing is the contract",
                    )
