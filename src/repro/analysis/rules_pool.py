"""RA003 — pool-boundary picklability.

Everything submitted to a worker-process pool is pickled: the callable,
its arguments, and the pool initializer.  Lambdas, nested functions and
bound methods are not picklable, so handing one to
``ProcessPoolExecutor.submit`` / ``WorkerPool.submit`` fails at runtime —
inside a worker, with a traceback that points nowhere near the call site.
This rule catches the bug at the call site instead.

Checked, for every ``<pool-ish receiver>.submit(fn, ...)`` call where the
receiver's spelling contains ``pool`` or ``executor``:

* ``fn`` is a lambda → flagged;
* ``fn`` names a function defined *inside* an enclosing function (a
  closure) → flagged;
* ``fn`` is a local alias (``worker = some_fn`` / tuple assignment) — the
  alias is resolved; it is flagged if any binding is a lambda or nested
  function, accepted if every known binding resolves to a module-level or
  imported callable;
* ``fn`` is an attribute on anything that is not an imported module
  (``self._run``, ``obj.method``) → flagged as a bound method;
* anything the rule cannot resolve statically (parameters, call results)
  is given the benefit of the doubt.

Additionally, for *any* call carrying pool-style keywords:

* ``initializer=`` must resolve to a module-level/imported callable;
* ``initargs=`` must not contain lambdas, nested functions, nested
  classes or instances of nested classes.  Initargs are *data*, so —
  unlike the callable positions above — attribute reads are fine: a
  ``SharedCSRHandle`` pulled off ``shared.handle`` pickles because the
  handle class is module-level (that is precisely what this distinction
  protects; a handle class defined inside a function would not).

The receiver-name heuristic keeps the rule honest about what static
analysis can know: ``service.submit(query)`` (a queue, not a pool) is
never inspected.  Name genuine pool handles ``pool``/``executor`` — the
codebase already does — or suppress with ``# repro: ignore[RA003]``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.analysis.astutil import (
    FUNCTION_NODES,
    assigned_name_pairs,
    expr_text,
    imported_module_names,
    module_level_callables,
    walk_scope,
)
from repro.analysis.core import Finding, Rule, SourceModule, register

#: Substrings identifying a worker-pool receiver.
POOLISH_RECEIVERS = ("pool", "executor")


class _Scope:
    """Alias bindings, nested-def and nested-class names of one scope."""

    def __init__(self, function: ast.AST) -> None:
        self.bindings: Dict[str, List[ast.expr]] = {}
        self.nested_defs: Set[str] = set()
        self.nested_classes: Set[str] = set()
        for node in walk_scope(function):
            if isinstance(node, FUNCTION_NODES):
                self.nested_defs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.nested_classes.add(node.name)
            elif isinstance(node, ast.Assign):
                for name, value in assigned_name_pairs(node):
                    self.bindings.setdefault(name, []).append(value)


@register
class PoolBoundaryRule(Rule):
    rule_id = "RA003"
    title = (
        "callables crossing the worker-pool boundary must be module-level "
        "functions (no lambdas, closures or bound methods)"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        self._module_callables = module_level_callables(module.tree)
        self._imported_modules = imported_module_names(module.tree)
        yield from self._scan(module, module.tree, scopes=[])

    def _scan(
        self, module: SourceModule, root: ast.AST, scopes: List[_Scope]
    ) -> Iterator[Finding]:
        for node in walk_scope(root):
            if isinstance(node, FUNCTION_NODES):
                yield from self._scan(module, node, scopes + [_Scope(node)])
            elif isinstance(node, ast.ClassDef):
                # A class body is not a function scope: methods inside see
                # the enclosing function scopes, not the class's.
                yield from self._scan(module, node, scopes)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, scopes)

    def _check_call(
        self, module: SourceModule, call: ast.Call, scopes: List[_Scope]
    ) -> Iterator[Finding]:
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "submit"
            and call.args
            and self._is_poolish(call.func.value)
        ):
            problem = self._classify(call.args[0], scopes)
            if problem is not None:
                yield self.finding(
                    module,
                    call,
                    f"{expr_text(call.func)}(...) receives {problem}; worker "
                    "pools pickle their tasks — pass a module-level function",
                )
        for keyword in call.keywords:
            if keyword.arg == "initializer":
                problem = self._classify(keyword.value, scopes)
                if problem is not None:
                    yield self.finding(
                        module,
                        keyword.value,
                        f"pool initializer is {problem}; initializers run in "
                        "freshly spawned workers and must be module-level "
                        "functions",
                    )
            elif keyword.arg == "initargs":
                for node in ast.walk(keyword.value):
                    if isinstance(
                        node, (ast.Lambda, ast.Name)
                    ) and self._classify_data(node, scopes):
                        yield self.finding(
                            module,
                            node,
                            "pool initargs contain a value that cannot cross "
                            "the process boundary (lambda, nested function "
                            "or nested class); ship module-level state only",
                        )

    @staticmethod
    def _is_poolish(receiver: ast.expr) -> bool:
        text = expr_text(receiver).lower()
        return any(marker in text for marker in POOLISH_RECEIVERS)

    def _classify(
        self, node: ast.expr, scopes: List[_Scope]
    ) -> Optional[str]:
        """Why ``node`` cannot cross the pool boundary (None = no proof)."""
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Name):
            name = node.id
            for scope in reversed(scopes):
                if name in scope.nested_defs:
                    return f"nested function '{name}'"
            for scope in reversed(scopes):
                bindings = scope.bindings.get(name)
                if not bindings:
                    continue
                for value in bindings:
                    verdict = self._classify(value, scopes)
                    if verdict is not None:
                        return f"'{name}', bound to {verdict}"
                if all(
                    isinstance(value, ast.Name)
                    and value.id in self._module_callables
                    for value in bindings
                ):
                    return None
                return None  # mixed/unknown bindings: benefit of the doubt
            return None
        if isinstance(node, ast.Attribute):
            base = node.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name) and base.id in self._imported_modules:
                return None  # module attribute, e.g. operator.add
            return f"bound method or instance attribute '{expr_text(node)}'"
        return None

    def _classify_data(
        self, node: ast.expr, scopes: List[_Scope]
    ) -> Optional[str]:
        """Why ``node`` cannot be pickled as a *data* value (None = no
        proof).

        Data crossing the pool boundary (initargs) may legitimately come
        from attribute reads — a shared-memory handle off
        ``shared.handle`` pickles fine because its class is module-level.
        What provably does not pickle: lambdas, nested functions, nested
        classes, and instances of nested classes (pickle resolves the
        class by qualified name, which a function-local class lacks).
        """
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            for scope in reversed(scopes):
                if node.func.id in scope.nested_classes:
                    return f"an instance of nested class '{node.func.id}'"
            return None
        if isinstance(node, ast.Name):
            name = node.id
            for scope in reversed(scopes):
                if name in scope.nested_defs:
                    return f"nested function '{name}'"
                if name in scope.nested_classes:
                    return f"nested class '{name}'"
            for scope in reversed(scopes):
                bindings = scope.bindings.get(name)
                if not bindings:
                    continue
                for value in bindings:
                    verdict = self._classify_data(value, scopes)
                    if verdict is not None:
                        return f"'{name}', bound to {verdict}"
                return None
            return None
        return None
