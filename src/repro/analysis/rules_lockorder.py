"""RA007 — cross-module lock-order discipline.

The repo now has three lock domains (`DiGraph`/`SnapshotStore`'s RLock,
`IngestionService`'s condition, the telemetry registry/metric locks) and
they nest: snapshot sealing updates gauges, the service ticks counters.
That is fine exactly as long as (a) no non-reentrant lock is ever
re-entered on the same thread, and (b) the "acquired while holding"
relation stays acyclic — two threads taking the same pair of locks in
opposite orders is the classic deadlock, and it can only be seen by
looking at every module at once.

RA007 works on the :class:`~repro.analysis.project.ProjectIndex`:

* every lock acquisition (``with self._lock:``, ``lock.acquire()``) is
  resolved to a stable ``(module, Class.attr)`` identity with its
  reentrancy (``threading.Lock`` vs ``RLock``/``Condition``);
* held-lock sets propagate along resolved call edges — if ``f`` calls
  ``g`` while holding ``L`` and ``g`` transitively acquires ``M``, the
  order edge ``L → M`` exists even though no single function shows it;
* findings: **re-entry** of a non-reentrant lock (directly or through a
  call chain), and **one finding per lock-order cycle** (a strongly
  connected component of the order graph), anchored at a witness
  acquisition.

Spellings the index cannot resolve (locks of classes outside the scan,
dynamic attributes) contribute nothing — conservative silence.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, register
from repro.analysis.project import LockId, ProjectIndex


def _render(lock: LockId) -> str:
    dotted, attr = lock
    return f"{dotted}.{attr}" if dotted else attr


def _postorder(
    nodes: Iterable[LockId], edges: Dict[LockId, Set[LockId]]
) -> List[LockId]:
    visited: Set[LockId] = set()
    order: List[LockId] = []
    for start in sorted(nodes):
        if start in visited:
            continue
        stack: List[Tuple[LockId, bool]] = [(start, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            stack.append((node, True))
            for successor in sorted(edges.get(node, ()), reverse=True):
                if successor not in visited:
                    stack.append((successor, False))
    return order


def _sccs(
    nodes: Iterable[LockId], edges: Dict[LockId, Set[LockId]]
) -> List[List[LockId]]:
    """Strongly connected components (Kosaraju), deterministic order."""
    reversed_edges: Dict[LockId, Set[LockId]] = {}
    for source, targets in edges.items():
        for target in targets:
            reversed_edges.setdefault(target, set()).add(source)
    assigned: Set[LockId] = set()
    components: List[List[LockId]] = []
    for node in reversed(_postorder(nodes, edges)):
        if node in assigned:
            continue
        component: List[LockId] = []
        stack = [node]
        assigned.add(node)
        while stack:
            current = stack.pop()
            component.append(current)
            for predecessor in reversed_edges.get(current, ()):
                if predecessor not in assigned:
                    assigned.add(predecessor)
                    stack.append(predecessor)
        components.append(sorted(component))
    return components


@register
class LockOrderRule(ProjectRule):
    rule_id = "RA007"
    title = (
        "lock acquisition order must be acyclic across modules and "
        "non-reentrant locks must never be re-entered"
    )

    def check_project(self, index: ProjectIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        # order edge (held → acquired) → earliest witness (path, line)
        order_edges: Dict[Tuple[LockId, LockId], Tuple[str, int]] = {}

        def note_edge(
            held: LockId, acquired: LockId, path: str, line: int
        ) -> None:
            if held == acquired:
                return
            key = (held, acquired)
            if key not in order_edges or (path, line) < order_edges[key]:
                order_edges[key] = (path, line)

        reentry_seen: Set[Tuple[str, int, LockId]] = set()
        for fkey in sorted(index.functions):
            module, function = index.functions[fkey]
            for acquire in function.lock_acquires:
                resolved = index.resolve_lock(
                    module, function, acquire.spelling
                )
                if resolved is None:
                    continue
                identity, reentrant = resolved
                held_ids = [
                    resolved_held[0]
                    for spelling in acquire.held
                    for resolved_held in [
                        index.resolve_lock(module, function, spelling)
                    ]
                    if resolved_held is not None
                ]
                if identity in held_ids and not reentrant:
                    mark = (module.path, acquire.lineno, identity)
                    if mark not in reentry_seen:
                        reentry_seen.add(mark)
                        findings.append(
                            self.project_finding(
                                module.path,
                                acquire.lineno,
                                f"{function.qualname} re-acquires "
                                f"non-reentrant lock {_render(identity)} "
                                "while already holding it (self-deadlock)",
                            )
                        )
                for held in held_ids:
                    note_edge(held, identity, module.path, acquire.lineno)
            for callee_key, call in index.resolved_calls.get(fkey, ()):
                if not call.held:
                    continue
                held_ids = [
                    resolved_held[0]
                    for spelling in call.held
                    for resolved_held in [
                        index.resolve_lock(module, function, spelling)
                    ]
                    if resolved_held is not None
                ]
                callee_locks = index.transitive_locks.get(
                    callee_key, frozenset()
                )
                for held in held_ids:
                    if held in callee_locks and not index.lock_reentrant.get(
                        held, True
                    ):
                        mark = (module.path, call.lineno, held)
                        if mark not in reentry_seen:
                            reentry_seen.add(mark)
                            findings.append(
                                self.project_finding(
                                    module.path,
                                    call.lineno,
                                    f"{function.qualname} calls "
                                    f"{'.'.join(call.parts)} while holding "
                                    f"non-reentrant lock {_render(held)}, "
                                    "and the callee (transitively) acquires "
                                    "it again (self-deadlock)",
                                )
                            )
                    for acquired in callee_locks:
                        note_edge(held, acquired, module.path, call.lineno)

        adjacency: Dict[LockId, Set[LockId]] = {}
        nodes: Set[LockId] = set()
        for (held, acquired), _witness in order_edges.items():
            adjacency.setdefault(held, set()).add(acquired)
            nodes.add(held)
            nodes.add(acquired)
        for component in _sccs(nodes, adjacency):
            if len(component) < 2:
                continue
            members = set(component)
            witnesses = sorted(
                witness
                for (held, acquired), witness in order_edges.items()
                if held in members and acquired in members
            )
            path, line = witnesses[0]
            findings.append(
                self.project_finding(
                    path,
                    line,
                    "lock-order cycle (potential deadlock) between "
                    + " and ".join(_render(lock) for lock in component)
                    + ": these locks are acquired in both orders; pick one "
                    "global order (witness acquisition here)",
                )
            )
        return findings
