"""AST-based invariant checker: engine, rule registry and reporting.

The repository has a handful of load-bearing conventions that unit tests
cannot economically cover — lock discipline in the ingestion service,
snapshot-version pinning for every cached CSR-derived artefact, and
picklability of everything that crosses the worker-pool boundary.  Each of
these has already produced a shipped bug class, so they are machine-checked
on every push by this package instead of being guarded by comments alone.

Architecture
------------
The engine runs two passes:

* **Per-file pass.**  A :class:`Rule` inspects one parsed module
  (:class:`SourceModule`) and yields :class:`Finding` objects.  Rules are
  registered with the :func:`register` decorator and identified by a
  stable ``RA###`` id.
* **Project pass.**  A :class:`ProjectRule` inspects the whole scanned
  tree at once through a :class:`~repro.analysis.project.ProjectIndex`
  (per-module symbol tables, import graph, call graph, per-function
  lock/resource summaries) and yields findings that may span modules —
  lock-order cycles, resource acquires whose release lives in another
  function, unpicklable values flowing into a pool submit.

:func:`analyze_source` runs both passes over one source blob (the project
pass then sees a single-module index).  :func:`analyze_paths` maps the
per-file pass over files/directories — optionally across a process pool
(``jobs``) since files are independent — then builds the
:class:`ProjectIndex` once in-parent and runs every ``ProjectRule`` over
it.  Directories are walked recursively with a default exclusion list
(``__pycache__``, hidden directories and the intentionally-dirty
``analysis_fixtures`` corpus) so a repo-wide scan stays clean while
explicitly named files are always scanned.

Suppressions
------------
A finding is silenced by a comment on any line of the statement it is
anchored to::

    return self._rows  # repro: ignore[RA004] -- shared read-only hot-path cache

``# repro: ignore[RA001,RA004]`` silences several rules, a bare
``# repro: ignore`` silences every rule on that line.  Comments are
extracted with :mod:`tokenize`, so the marker inside a string literal is
inert; a marker on any line within ``node.lineno..node.end_lineno`` of
the anchoring statement covers a wrapped call.  Suppressions should
carry a justification after the bracket — the scanner does not enforce
the prose, reviewers do.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

#: Rule id reserved for files the engine itself cannot parse.
PARSE_ERROR_RULE_ID = "RA000"

#: Directory names skipped when *walking* a directory argument.  Explicitly
#: named files are always analyzed, which is how the test suite points the
#: engine at the intentionally-bad fixture corpus.
DEFAULT_EXCLUDED_DIRS = frozenset({"__pycache__", "analysis_fixtures"})

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]*)\])?"
)

#: ``{line: rule ids}`` suppression table; ``None`` means all rules.
SuppressionMap = Dict[int, Optional[FrozenSet[str]]]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a ``file:line``.

    ``span`` is the anchoring statement's ``(lineno, end_lineno)`` — it
    participates in suppression matching (a ``# repro: ignore`` on any
    line of a wrapped statement covers the finding) but not in equality
    or ordering, so findings stay comparable across engines that do and
    do not record spans.
    """

    file: str
    line: int
    rule_id: str
    message: str
    span: Optional[Tuple[int, int]] = field(default=None, compare=False)

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id}: {self.message}"


def _parse_suppressions(source: str) -> SuppressionMap:
    """Extract ``# repro: ignore[...]`` markers from *comment tokens*.

    Scanning raw lines would let a string literal containing the marker
    silence findings on its line; :mod:`tokenize` sees only real
    comments.  Tokenizer errors are swallowed — the caller has already
    ``ast.parse``-d the source, so the tokenizer failing here would be a
    stdlib disagreement we degrade through (no suppressions) rather than
    crash on.
    """
    suppressions: SuppressionMap = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            ids = match.group("ids")
            if ids is None:
                suppressions[token.start[0]] = None
            else:
                suppressions[token.start[0]] = frozenset(
                    part.strip().upper()
                    for part in ids.split(",")
                    if part.strip()
                )
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass
    return suppressions


def suppresses(suppressions: SuppressionMap, finding: Finding) -> bool:
    """Whether the table silences ``finding`` (span-aware)."""
    start, end = finding.span or (finding.line, finding.line)
    if end < start:  # pragma: no cover - malformed span, be permissive
        start, end = end, start
    for line in range(start, end + 1):
        if line not in suppressions:
            continue
        ids = suppressions[line]
        if ids is None or finding.rule_id.upper() in ids:
            return True
    return False


class SourceModule:
    """A parsed source file plus the metadata rules need.

    ``path`` is kept exactly as the caller supplied it (findings render it
    verbatim); ``posix_path`` is the forward-slash form rules use for
    package-scoped behaviour (e.g. RA002 exempts ``repro/graph/``).
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.posix_path = Path(path).as_posix()
        self.tree = ast.parse(source, filename=path)
        self._suppressions = _parse_suppressions(source)

    @property
    def suppressions(self) -> SuppressionMap:
        return self._suppressions

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Single-line check (kept for rule unit tests); findings go
        through :func:`suppresses` which also honours spans."""
        if line not in self._suppressions:
            return False
        ids = self._suppressions[line]
        return ids is None or rule_id.upper() in ids


class Rule:
    """Base class for one per-file invariant check.

    Subclasses set ``rule_id`` (stable ``RA###`` identifier) and ``title``
    (one-line summary shown by ``--list-rules``) and implement
    :meth:`check`, yielding a :class:`Finding` per violation.  The
    :meth:`finding` helper anchors a finding to an AST node.
    """

    rule_id: str = ""
    title: str = ""

    def check(self, module: SourceModule) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: Union[ast.AST, int], message: str
    ) -> Finding:
        if isinstance(node, int):
            line: int = node
            span: Optional[Tuple[int, int]] = None
        else:
            line = getattr(node, "lineno", 1)
            span = (line, getattr(node, "end_lineno", None) or line)
        return Finding(
            file=module.path,
            line=line,
            rule_id=self.rule_id,
            message=message,
            span=span,
        )


class ProjectRule(Rule):
    """Base class for one project-wide (interprocedural) check.

    Registered exactly like a per-file :class:`Rule`, but the engine
    calls :meth:`check_project` once per scan with the
    :class:`~repro.analysis.project.ProjectIndex` built over every
    successfully parsed module, instead of :meth:`check` per file.
    Findings must anchor ``file`` to one of the indexed module paths so
    that file's suppression comments apply.
    """

    def check(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_project(self, index) -> Iterable[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        message: str,
        span: Optional[Tuple[int, int]] = None,
    ) -> Finding:
        return Finding(
            file=path,
            line=line,
            rule_id=self.rule_id,
            message=message,
            span=span,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.rule_id
    if not re.fullmatch(r"RA\d{3}", rule_id):
        raise ValueError(f"rule id must match RA###, got {rule_id!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate every registered rule (optionally a subset by id)."""
    _load_builtin_rules()
    if select is None:
        ids = sorted(_REGISTRY)
    else:
        ids = []
        for rule_id in select:
            canonical = rule_id.strip().upper()
            if canonical not in _REGISTRY:
                raise KeyError(
                    f"unknown rule id {rule_id!r}; known: {sorted(_REGISTRY)}"
                )
            ids.append(canonical)
    return [_REGISTRY[rule_id]() for rule_id in ids]


def _load_builtin_rules() -> None:
    """Import the rule modules exactly once (registration side effect)."""
    from repro.analysis import (
        rules_generators,
        rules_internals,
        rules_lifecycle,
        rules_lock,
        rules_lockorder,
        rules_pickle_flow,
        rules_pool,
        rules_snapshot,
        rules_telemetry,
    )

    # Imported for their @register side effect; referencing them here keeps
    # the import visibly intentional (and the linter quiet).
    _ = (
        rules_generators,
        rules_internals,
        rules_lifecycle,
        rules_lock,
        rules_lockorder,
        rules_pickle_flow,
        rules_pool,
        rules_snapshot,
        rules_telemetry,
    )


def _split_rules(
    rules: Sequence[Rule],
) -> Tuple[List[Rule], List[ProjectRule]]:
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    return file_rules, project_rules


def _check_module(module: SourceModule, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if not suppresses(module.suppressions, finding):
                findings.append(finding)
    return findings


def _project_findings(
    summaries: Sequence[object],
    project_rules: Sequence["ProjectRule"],
    suppressions_by_path: Dict[str, SuppressionMap],
) -> List[Finding]:
    if not project_rules or not summaries:
        return []
    from repro.analysis.project import ProjectIndex

    index = ProjectIndex.build(summaries)
    findings: List[Finding] = []
    for rule in project_rules:
        for finding in rule.check_project(index):
            table = suppressions_by_path.get(finding.file, {})
            if not suppresses(table, finding):
                findings.append(finding)
    return findings


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one source blob.

    Both passes run; the project pass sees a single-module index, so
    project rules behave exactly as in a full scan restricted to this
    file.  Findings carrying a ``# repro: ignore[...]`` suppression are
    dropped; the remainder is returned sorted by (file, line, rule).  A
    file that fails to parse yields a single :data:`PARSE_ERROR_RULE_ID`
    finding instead of raising — a broken file must fail CI, not crash
    the analyzer.
    """
    if rules is None:
        rules = all_rules()
    file_rules, project_rules = _split_rules(rules)
    try:
        module = SourceModule(path, source)
    except SyntaxError as error:
        return [
            Finding(
                file=path,
                line=error.lineno or 1,
                rule_id=PARSE_ERROR_RULE_ID,
                message=f"could not parse file: {error.msg}",
            )
        ]
    findings = _check_module(module, file_rules)
    if project_rules:
        from repro.analysis.summaries import summarize_module

        findings.extend(
            _project_findings(
                [summarize_module(module)],
                project_rules,
                {module.path: module.suppressions},
            )
        )
    return sorted(findings)


def iter_python_files(
    paths: Iterable[Union[str, Path]],
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Yield the ``.py`` files named by ``paths``.

    Directories are walked recursively; any component named in
    ``excluded_dirs`` (or starting with a dot) prunes the subtree.  A path
    naming a file directly is always yielded, excluded directory or not.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                parts = relative.parts
                if any(
                    part in excluded_dirs or part.startswith(".")
                    for part in parts[:-1]
                ):
                    continue
                yield candidate
        else:
            yield path


@dataclass(frozen=True)
class _FileScan:
    """One file's per-file pass output (picklable, for ``jobs`` workers)."""

    path: str
    findings: Tuple[Finding, ...]
    summary: Optional[object]  # ModuleSummary; None on parse error
    suppressions: Tuple[Tuple[int, Optional[FrozenSet[str]]], ...]


def _scan_one(
    path: str, file_rules: Sequence[Rule], want_summary: bool = True
) -> _FileScan:
    source = Path(path).read_text(encoding="utf-8")
    try:
        module = SourceModule(path, source)
    except SyntaxError as error:
        finding = Finding(
            file=path,
            line=error.lineno or 1,
            rule_id=PARSE_ERROR_RULE_ID,
            message=f"could not parse file: {error.msg}",
        )
        return _FileScan(path, (finding,), None, ())
    summary: Optional[object] = None
    if want_summary:
        from repro.analysis.summaries import summarize_module

        summary = summarize_module(module)
    return _FileScan(
        path,
        tuple(sorted(_check_module(module, file_rules))),
        summary,
        tuple(sorted(module.suppressions.items())),
    )


def _scan_one_task(args: Tuple[str, Tuple[str, ...]]) -> _FileScan:
    """Worker entry point: rebuild the selected rules from the registry
    (rule instances are not shipped across the pool) and scan one file."""
    path, select = args
    file_rules, project_rules = _split_rules(all_rules(select))
    return _scan_one(path, file_rules, want_summary=bool(project_rules))


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
    jobs: Optional[int] = None,
) -> List[Finding]:
    """Analyze every Python file under ``paths`` (files or directories).

    Pass 1 (per-file rules + summary extraction) runs per file — across a
    process pool when ``jobs`` > 1, since files are independent; pass 2
    builds the :class:`~repro.analysis.project.ProjectIndex` from the
    collected summaries in-parent and runs every :class:`ProjectRule`.
    Findings are byte-identical regardless of ``jobs`` (asserted in the
    test suite): both paths run the same scan function and the result is
    fully sorted.
    """
    if rules is None:
        rules = all_rules()
    file_rules, project_rules = _split_rules(rules)
    files = [str(path) for path in iter_python_files(paths, excluded_dirs)]

    parallel = (
        jobs is not None
        and jobs > 1
        and len(files) > 1
        # Worker processes rebuild rules from the registry by id; custom
        # unregistered rule instances force the sequential path.
        and all(_REGISTRY.get(rule.rule_id) is type(rule) for rule in rules)
    )
    if parallel:
        select = tuple(rule.rule_id for rule in rules)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            scans = list(
                pool.map(
                    _scan_one_task,
                    [(path, select) for path in files],
                    chunksize=max(1, len(files) // (jobs * 4)),
                )
            )
    else:
        scans = [
            _scan_one(path, file_rules, want_summary=bool(project_rules))
            for path in files
        ]

    findings: List[Finding] = [
        finding for scan in scans for finding in scan.findings
    ]
    findings.extend(
        _project_findings(
            [scan.summary for scan in scans if scan.summary is not None],
            project_rules,
            {scan.path: dict(scan.suppressions) for scan in scans},
        )
    )
    return sorted(findings)
