"""AST-based invariant checker: engine, rule registry and reporting.

The repository has a handful of load-bearing conventions that unit tests
cannot economically cover — lock discipline in the ingestion service,
snapshot-version pinning for every cached CSR-derived artefact, and
picklability of everything that crosses the worker-pool boundary.  Each of
these has already produced a shipped bug class, so they are machine-checked
on every push by this package instead of being guarded by comments alone.

Architecture
------------
* A :class:`Rule` inspects one parsed module (:class:`SourceModule`) and
  yields :class:`Finding` objects.  Rules are registered with the
  :func:`register` decorator and identified by a stable ``RA###`` id.
* :func:`analyze_source` runs every (selected) rule over one source blob
  and filters findings through the per-line suppression comments.
* :func:`analyze_paths` maps that over files/directories; directories are
  walked recursively with a default exclusion list (``__pycache__``, hidden
  directories and the intentionally-dirty ``analysis_fixtures`` corpus) so
  a repo-wide scan stays clean while explicitly named files are always
  scanned.

Suppressions
------------
A finding is silenced by a same-line comment::

    return self._rows  # repro: ignore[RA004] -- shared read-only hot-path cache

``# repro: ignore[RA001,RA004]`` silences several rules, a bare
``# repro: ignore`` silences every rule on that line.  Suppressions should
carry a justification after the bracket — the scanner does not enforce the
prose, reviewers do.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Type, Union

#: Rule id reserved for files the engine itself cannot parse.
PARSE_ERROR_RULE_ID = "RA000"

#: Directory names skipped when *walking* a directory argument.  Explicitly
#: named files are always analyzed, which is how the test suite points the
#: engine at the intentionally-bad fixture corpus.
DEFAULT_EXCLUDED_DIRS = frozenset({"__pycache__", "analysis_fixtures"})

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\s]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a ``file:line``."""

    file: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id}: {self.message}"


class SourceModule:
    """A parsed source file plus the metadata rules need.

    ``path`` is kept exactly as the caller supplied it (findings render it
    verbatim); ``posix_path`` is the forward-slash form rules use for
    package-scoped behaviour (e.g. RA002 exempts ``repro/graph/``).
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.posix_path = Path(path).as_posix()
        self.tree = ast.parse(source, filename=path)
        self._suppressions = self._parse_suppressions(self.lines)

    @staticmethod
    def _parse_suppressions(
        lines: Sequence[str],
    ) -> Dict[int, Optional[FrozenSet[str]]]:
        """``{line: suppressed rule ids}``; ``None`` means all rules."""
        suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
        for lineno, line in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            ids = match.group("ids")
            if ids is None:
                suppressions[lineno] = None
            else:
                suppressions[lineno] = frozenset(
                    part.strip().upper()
                    for part in ids.split(",")
                    if part.strip()
                )
        return suppressions

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        if line not in self._suppressions:
            return False
        ids = self._suppressions[line]
        return ids is None or rule_id.upper() in ids


class Rule:
    """Base class for one invariant check.

    Subclasses set ``rule_id`` (stable ``RA###`` identifier) and ``title``
    (one-line summary shown by ``--list-rules``) and implement
    :meth:`check`, yielding a :class:`Finding` per violation.  The
    :meth:`finding` helper anchors a finding to an AST node.
    """

    rule_id: str = ""
    title: str = ""

    def check(self, module: SourceModule) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: Union[ast.AST, int], message: str
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            file=module.path, line=line, rule_id=self.rule_id, message=message
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.rule_id
    if not re.fullmatch(r"RA\d{3}", rule_id):
        raise ValueError(f"rule id must match RA###, got {rule_id!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate every registered rule (optionally a subset by id)."""
    _load_builtin_rules()
    if select is None:
        ids = sorted(_REGISTRY)
    else:
        ids = []
        for rule_id in select:
            canonical = rule_id.strip().upper()
            if canonical not in _REGISTRY:
                raise KeyError(
                    f"unknown rule id {rule_id!r}; known: {sorted(_REGISTRY)}"
                )
            ids.append(canonical)
    return [_REGISTRY[rule_id]() for rule_id in ids]


def _load_builtin_rules() -> None:
    """Import the rule modules exactly once (registration side effect)."""
    from repro.analysis import (
        rules_generators,
        rules_internals,
        rules_lock,
        rules_pool,
        rules_snapshot,
        rules_telemetry,
    )

    # Imported for their @register side effect; referencing them here keeps
    # the import visibly intentional (and the linter quiet).
    _ = (
        rules_generators,
        rules_internals,
        rules_lock,
        rules_pool,
        rules_snapshot,
        rules_telemetry,
    )


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one source blob.

    Findings carrying a same-line ``# repro: ignore[...]`` suppression are
    dropped; the remainder is returned sorted by (file, line, rule).  A
    file that fails to parse yields a single :data:`PARSE_ERROR_RULE_ID`
    finding instead of raising — a broken file must fail CI, not crash the
    analyzer.
    """
    if rules is None:
        rules = all_rules()
    try:
        module = SourceModule(path, source)
    except SyntaxError as error:
        return [
            Finding(
                file=path,
                line=error.lineno or 1,
                rule_id=PARSE_ERROR_RULE_ID,
                message=f"could not parse file: {error.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if not module.is_suppressed(finding.line, finding.rule_id):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(
    paths: Iterable[Union[str, Path]],
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Yield the ``.py`` files named by ``paths``.

    Directories are walked recursively; any component named in
    ``excluded_dirs`` (or starting with a dot) prunes the subtree.  A path
    naming a file directly is always yielded, excluded directory or not.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                parts = relative.parts
                if any(
                    part in excluded_dirs or part.startswith(".")
                    for part in parts[:-1]
                ):
                    continue
                yield candidate
        else:
            yield path


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    excluded_dirs: FrozenSet[str] = DEFAULT_EXCLUDED_DIRS,
) -> List[Finding]:
    """Analyze every Python file under ``paths`` (files or directories)."""
    if rules is None:
        rules = all_rules()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths, excluded_dirs=excluded_dirs):
        findings.extend(
            analyze_source(
                file_path.read_text(encoding="utf-8"),
                path=str(file_path),
                rules=rules,
            )
        )
    return sorted(findings)
