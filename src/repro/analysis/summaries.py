"""Per-module summary extraction for the project-wide analysis pass.

This module turns one parsed :class:`~repro.analysis.core.SourceModule`
into a fully *picklable* :class:`ModuleSummary` — no AST nodes survive —
so the per-file scan (including summary extraction) can run across a
process pool while the parent merges summaries into a
:class:`~repro.analysis.project.ProjectIndex` and runs the project rules
over plain data.

What a summary records, per module:

* import tables (``import x as y`` aliases and ``from m import n`` names,
  with relative-import levels) — the project index resolves them against
  the scanned tree by dotted-suffix match;
* per-class tables: lock attributes created in methods
  (``self._lock = threading.RLock()`` → reentrant), attribute types
  inferred from ``self.x = ClassName(...)`` / annotations, ``@property``
  aliases that return a ``self.<attr>`` (so ``store.lock`` resolves to
  ``SnapshotStore._lock``), and whether ``__reduce__`` raises (the class
  is then provably unpicklable, e.g. ``AttachedCSR``);
* per-function summaries: lock acquisitions with the set of locks already
  held, call sites with held-lock sets (the edges RA007 propagates
  over), local variable types, the resource-lifecycle verdicts RA008
  consumes, and the pool-submit payload candidates RA009 resolves.

The resource-lifecycle walker is a small abstract interpreter over the
statement list.  A tracked variable moves through states:

``open``
    bound to a fresh acquire (``pin()``, ``export_shm()``, ``attach()``,
    ``SharedCSR.create()``, a pool constructor, …) with no protection yet;
``protected``
    a ``try`` whose ``finally`` releases it has been entered (or it was
    acquired inside one) — if call-carrying statements ran between the
    acquire and that ``try``, a *leak-window* issue is recorded, because
    any of them raising leaks the resource;
``closed``
    released in straight-line code or managed by a ``with``;
``escaped``
    handed off — returned, yielded, passed as a call argument, stored
    into an attribute/container or aliased.  Ownership moved somewhere
    this pass cannot see, so the walker goes conservatively silent;
``owned``
    the ``__init__`` special case of escape-to-``self``: the instance now
    owns the resource, but until the constructor returns nobody can call
    its release method, so call-carrying statements after the hand-off
    must sit under a ``try`` whose handler/finally releases the resource
    (a *ctor-window* issue otherwise — guard calls like
    ``self._release_shared_graph()`` are resolved interprocedurally by
    RA008).

Everything unresolvable stays silent: the vocabulary above is explicit,
and a name the walker cannot bind participates in nothing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    FUNCTION_NODES,
    expr_text,
    walk_scope,
)

# --------------------------------------------------------------------- #
# Vocabulary
# --------------------------------------------------------------------- #

#: ``threading`` factory → reentrant?  ``Condition`` defaults to an RLock.
LOCK_FACTORIES = {
    "Lock": False,
    "RLock": True,
    "Condition": True,
    "Semaphore": False,
    "BoundedSemaphore": False,
}

#: Method name → resource kind, for acquires that bind a result variable.
ACQUIRE_METHODS = {
    "pin": "pin",
    "export_shm": "shm-export",
    "attach": "attachment",
    "create_pool": "pool",
}

#: ``<Name>.create(...)`` receivers that allocate a shared-memory segment.
SHM_CREATORS = frozenset({"SharedCSR", "SharedIndexPayload"})

#: Constructors that spawn a worker pool.
POOL_CTORS = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "WorkerPool"}
)

#: Release method → resource kinds it retires (on the resource variable).
RELEASE_METHODS = {
    "release": frozenset({"pin", "lock"}),
    "unlink": frozenset({"shm-segment", "shm-export"}),
    "close": frozenset({"attachment"}),
    "shutdown": frozenset({"pool"}),
}

#: Release method on an *owner* (any receiver) → kinds it retires for
#: every open resource of that kind (refcounted store releases).
RECEIVER_RELEASES = {
    "release_shm": frozenset({"shm-export"}),
}

#: Receiver classes whose ``.submit(...)`` is a process-pool boundary
#: (RA009 extends RA003's spelling heuristic with this type check).
POOL_CLASS_NAMES = frozenset(
    {"WorkerPool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)

#: Substrings identifying a pool receiver by spelling (RA003's heuristic).
POOLISH_SPELLINGS = ("pool", "executor")


# --------------------------------------------------------------------- #
# Summary data model (all picklable, no AST references)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LockAcquire:
    """One lock acquisition (``with <expr>:`` or ``<expr>.acquire()``)."""

    spelling: str
    lineno: int
    held: Tuple[str, ...]  # spellings of locks already held here


@dataclass(frozen=True)
class CallSite:
    """One resolvable call, with the locks held at the call."""

    parts: Tuple[str, ...]  # ("self", "seal") / ("store", "export_shm") / ("helper",)
    lineno: int
    held: Tuple[str, ...]


@dataclass(frozen=True)
class LifecycleIssue:
    """One RA008 candidate produced by the per-function walker."""

    kinds: Tuple[str, ...]
    var: str
    acquire_line: int
    line: int  # anchor
    problem: str  # "unreleased" | "leak-window" | "ctor-window"
    detail: str
    #: Guard calls (e.g. ``("self", "_release_shared_graph")``) that, if
    #: any resolves to a function transitively releasing every kind in
    #: ``kinds``, absolve the issue; unresolvable guards absolve too
    #: (conservative silence).  Empty means the issue stands on its own.
    pending_guards: Tuple[Tuple[str, ...], ...] = ()


@dataclass(frozen=True)
class SubmitPayload:
    """One RA009 candidate: a value flowing into a pool boundary."""

    lineno: int
    receiver: str
    role: str  # "argument" | "initargs"
    spelling: str
    #: ``definite:<why>`` — provably unpicklable here;
    #: ``type:<spelling>`` / ``selfattr:<attr>`` / ``gencall:<dotted>`` —
    #: symbolic, resolved against the project index.
    verdict: str


@dataclass(frozen=True)
class FunctionSummary:
    qualname: str  # "Class.method" or "function"
    class_name: Optional[str]
    name: str
    lineno: int
    is_generator: bool
    lock_acquires: Tuple[LockAcquire, ...]
    calls: Tuple[CallSite, ...]
    local_types: Tuple[Tuple[str, str], ...]  # var → class spelling
    local_locks: Tuple[Tuple[str, bool], ...]  # var → reentrant
    release_kinds: Tuple[str, ...]
    lifecycle: Tuple[LifecycleIssue, ...]
    submit_payloads: Tuple[SubmitPayload, ...]


@dataclass(frozen=True)
class ClassSummary:
    name: str
    lineno: int
    lock_attrs: Tuple[Tuple[str, bool], ...]  # attr → reentrant
    attr_types: Tuple[Tuple[str, str], ...]  # attr → class spelling
    property_aliases: Tuple[Tuple[str, str], ...]  # property → attr
    method_names: Tuple[str, ...]
    reduce_raises: bool


@dataclass(frozen=True)
class ModuleSummary:
    path: str
    dotted: str
    import_aliases: Tuple[Tuple[str, str], ...]  # local → module as written
    from_imports: Tuple[Tuple[str, str, str, int], ...]  # local, module, symbol, level
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassSummary, ...]


def module_dotted_name(path: str) -> str:
    """Best-effort dotted module name for ``path``.

    Everything up to and including the last ``src`` component is dropped
    (the repo layout), ``__init__`` is elided, suffixes stripped.  Paths
    outside a ``src`` tree keep all their parts — the project index
    resolves imports by dotted *suffix*, so absolute prefixes are
    harmless.
    """
    parts = list(Path(path).with_suffix("").parts)
    parts = [part for part in parts if part not in ("/", "\\")]
    if "src" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


# --------------------------------------------------------------------- #
# Shared small helpers
# --------------------------------------------------------------------- #
def _call_parts(func: ast.expr) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


_SCOPE_BARRIERS = FUNCTION_NODES + (ast.Lambda,)


def _walk_expr(root: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression without entering nested function scopes."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_BARRIERS):
            stack.extend(ast.iter_child_nodes(node))


def _nodes_with_parents(
    roots: Sequence[ast.AST],
) -> List[Tuple[ast.AST, Optional[ast.AST]]]:
    """One walk yielding ``(node, parent)`` pairs, nested scopes pruned.

    The statement walker needs calls, names *and* their parent context
    from the same statement; collecting them in a single pass keeps the
    per-statement cost at one traversal instead of one per question.
    """
    pairs: List[Tuple[ast.AST, Optional[ast.AST]]] = []
    stack: List[Tuple[ast.AST, Optional[ast.AST]]] = [
        (root, None) for root in roots
    ]
    while stack:
        node, parent = stack.pop()
        pairs.append((node, parent))
        if not isinstance(node, _SCOPE_BARRIERS):
            stack.extend(
                (child, node) for child in ast.iter_child_nodes(node)
            )
    return pairs


class _ImportTables:
    """Module-level import information used during extraction."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        self.from_imports: List[Tuple[str, str, str, int]] = []
        self.threading_aliases: Set[str] = set()
        self.threading_from: Dict[str, str] = {}
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.aliases[local] = alias.name
                    if alias.name == "threading":
                        self.threading_aliases.add(local)
            elif isinstance(node, ast.ImportFrom):
                source = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports.append(
                        (local, source, alias.name, node.level)
                    )
                    if source == "threading" and node.level == 0:
                        self.threading_from[local] = alias.name

    def lock_factory(self, call: ast.Call) -> Optional[bool]:
        """Reentrancy of a ``threading`` lock factory call, else None."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.threading_aliases
        ):
            return LOCK_FACTORIES.get(func.attr)
        if isinstance(func, ast.Name):
            symbol = self.threading_from.get(func.id)
            if symbol is not None:
                return LOCK_FACTORIES.get(symbol)
        return None


def _acquire_kind(
    call: ast.Call, imports: _ImportTables
) -> Optional[Tuple[str, str]]:
    """``(kind, receiver spelling)`` if ``call`` acquires a resource."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in ACQUIRE_METHODS:
            return ACQUIRE_METHODS[func.attr], expr_text(func.value)
        if func.attr == "create":
            receiver = expr_text(func.value)
            if receiver.split(".")[-1] in SHM_CREATORS:
                return "shm-segment", receiver
    parts = _call_parts(func)
    if parts is not None:
        terminal = parts[-1]
        if terminal in POOL_CTORS:
            return "pool", ".".join(parts)
        if terminal == "SharedMemory" and any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        ):
            return "shm-segment", ".".join(parts)
    return None


def _find_acquire(
    expr: ast.expr, imports: _ImportTables
) -> Optional[Tuple[str, str]]:
    for node in _walk_expr(expr):
        if isinstance(node, ast.Call):
            found = _acquire_kind(node, imports)
            if found is not None:
                return found
    return None


_READ_PARENTS = (ast.Attribute, ast.Subscript, ast.Compare, ast.BoolOp, ast.UnaryOp)


# A Name whose parent is one of these merely *reads* the value
# (attribute/subscript base, comparison, boolean test); any other Load
# occurrence — call argument, container element, alias assignment,
# return/yield value — transfers the reference somewhere the
# per-statement walker cannot follow (an escape).


# --------------------------------------------------------------------- #
# Class extraction
# --------------------------------------------------------------------- #
def _type_from_annotation(annotation: ast.expr) -> Optional[str]:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return expr_text(annotation)
    if isinstance(annotation, ast.Subscript) and isinstance(
        annotation.value, ast.Name
    ):
        if annotation.value.id == "Optional":
            return _type_from_annotation(annotation.slice)
    return None


def _summarize_class(
    classdef: ast.ClassDef, imports: _ImportTables
) -> ClassSummary:
    lock_attrs: Dict[str, bool] = {}
    attr_types: Dict[str, Optional[str]] = {}
    property_aliases: Dict[str, str] = {}
    method_names: List[str] = []
    reduce_raises = False

    def note_attr_type(attr: str, spelling: Optional[str]) -> None:
        if spelling is None:
            return
        if attr in attr_types and attr_types[attr] != spelling:
            attr_types[attr] = None  # conflicting evidence: unresolvable
        elif attr not in attr_types:
            attr_types[attr] = spelling

    for method in classdef.body:
        if not isinstance(method, FUNCTION_NODES):
            continue
        method_names.append(method.name)
        if method.name == "__reduce__" and any(
            isinstance(stmt, ast.Raise) for stmt in method.body
        ):
            reduce_raises = True
        decorated_property = any(
            isinstance(dec, ast.Name) and dec.id == "property"
            for dec in method.decorator_list
        )
        if decorated_property and method.body:
            last = method.body[-1]
            if (
                isinstance(last, ast.Return)
                and isinstance(last.value, ast.Attribute)
                and isinstance(last.value.value, ast.Name)
                and last.value.value.id == "self"
            ):
                property_aliases[method.name] = last.value.attr
        for node in walk_scope(method):
            targets: List[Tuple[str, Optional[ast.expr]]] = []
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        targets.append((target.attr, node.value))
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    annotated = _type_from_annotation(node.annotation)
                    if annotated is not None:
                        note_attr_type(target.attr, annotated)
                    targets.append((target.attr, node.value))
            for attr, value in targets:
                if not isinstance(value, ast.Call):
                    continue
                reentrant = imports.lock_factory(value)
                if reentrant is not None:
                    lock_attrs.setdefault(attr, reentrant)
                    continue
                parts = _call_parts(value.func)
                if parts is not None and parts[0] != "self":
                    note_attr_type(attr, ".".join(parts))
    return ClassSummary(
        name=classdef.name,
        lineno=classdef.lineno,
        lock_attrs=tuple(sorted(lock_attrs.items())),
        attr_types=tuple(
            sorted(
                (attr, spelling)
                for attr, spelling in attr_types.items()
                if spelling is not None
            )
        ),
        property_aliases=tuple(sorted(property_aliases.items())),
        method_names=tuple(method_names),
        reduce_raises=reduce_raises,
    )


# --------------------------------------------------------------------- #
# Function walker
# --------------------------------------------------------------------- #
class _VarState:
    __slots__ = (
        "kinds",
        "acquire_line",
        "receiver",
        "status",
        "risky",
        "partial",
        "pending_guards",
        "ctor_risky_line",
    )

    def __init__(self, kinds: Set[str], acquire_line: int, receiver: str) -> None:
        self.kinds = set(kinds)
        self.acquire_line = acquire_line
        self.receiver = receiver
        self.status = "open"
        self.risky = 0
        self.partial = False
        self.pending_guards: Set[Tuple[str, ...]] = set()
        self.ctor_risky_line: Optional[int] = None

    def copy(self) -> "_VarState":
        clone = _VarState(self.kinds, self.acquire_line, self.receiver)
        clone.status = self.status
        clone.risky = self.risky
        clone.partial = self.partial
        clone.pending_guards = set(self.pending_guards)
        clone.ctor_risky_line = self.ctor_risky_line
        return clone


class _Guard:
    """Releases promised by an enclosing ``try`` (finally + handlers)."""

    __slots__ = ("final_vars", "final_kinds", "handler_vars", "handler_kinds", "guard_calls")

    def __init__(self) -> None:
        self.final_vars: Set[str] = set()
        self.final_kinds: Set[str] = set()
        self.handler_vars: Set[str] = set()
        self.handler_kinds: Set[str] = set()
        self.guard_calls: Set[Tuple[str, ...]] = set()

    def protects(self, var: str, kinds: Set[str]) -> bool:
        return var in self.final_vars or bool(kinds & self.final_kinds)

    def guards_ctor(self, var: str, kinds: Set[str]) -> bool:
        return (
            var in self.final_vars
            or var in self.handler_vars
            or bool(kinds & (self.final_kinds | self.handler_kinds))
        )


def _releases_in(stmts: Sequence[ast.stmt]) -> Tuple[Set[str], Set[str], Set[Tuple[str, ...]]]:
    """``(released vars, receiver-released kinds, calls)`` in a suite."""
    released_vars: Set[str] = set()
    released_kinds: Set[str] = set()
    calls: Set[Tuple[str, ...]] = set()
    for stmt in stmts:
        for node in _walk_expr(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in RELEASE_METHODS and isinstance(
                    func.value, ast.Name
                ):
                    released_vars.add(func.value.id)
                if func.attr in RECEIVER_RELEASES:
                    released_kinds |= RECEIVER_RELEASES[func.attr]
            parts = _call_parts(func)
            if parts is not None:
                calls.add(parts)
    return released_vars, released_kinds, calls


class _FunctionWalker:
    def __init__(
        self,
        fn: ast.AST,
        class_name: Optional[str],
        imports: _ImportTables,
    ) -> None:
        self.fn = fn
        self.class_name = class_name
        self.imports = imports
        self.is_init = class_name is not None and fn.name == "__init__"
        self.held: List[str] = []
        self.lock_acquires: List[LockAcquire] = []
        self.calls: List[CallSite] = []
        self.local_types: Dict[str, Optional[str]] = {}
        self.local_locks: Dict[str, bool] = {}
        self.release_kinds: Set[str] = set()
        self.env: Dict[str, _VarState] = {}
        self.issues: List[LifecycleIssue] = []
        self.guards: List[_Guard] = []

    # -- top level ------------------------------------------------------
    def run(self) -> None:
        self.walk(self.fn.body)
        for var, state in sorted(self.env.items()):
            if state.status == "open":
                self._emit_unreleased(var, state, self.fn.body[-1].lineno)
            elif state.status == "owned":
                self._emit_ctor(var, state)

    def _emit_unreleased(self, var: str, state: _VarState, line: int) -> None:
        state.status = "reported"
        suffix = " on every path" if state.partial else ""
        self.issues.append(
            LifecycleIssue(
                kinds=tuple(sorted(state.kinds)),
                var=var,
                acquire_line=state.acquire_line,
                line=state.acquire_line,
                problem="unreleased",
                detail=(
                    f"'{var}' ({'/'.join(sorted(state.kinds))}) acquired here "
                    f"is not released{suffix}"
                ),
            )
        )

    def _emit_ctor(self, var: str, state: _VarState) -> None:
        state.status = "reported"
        if state.ctor_risky_line is not None:
            self.issues.append(
                LifecycleIssue(
                    kinds=tuple(sorted(state.kinds)),
                    var=var,
                    acquire_line=state.acquire_line,
                    line=state.acquire_line,
                    problem="ctor-window",
                    detail=(
                        f"'{var}' ({'/'.join(sorted(state.kinds))}) is owned by "
                        f"self, but __init__ can still fail (e.g. line "
                        f"{state.ctor_risky_line}) before anyone can release "
                        "it — guard the constructor tail with try/except that "
                        "releases on failure"
                    ),
                )
            )
        elif state.pending_guards:
            self.issues.append(
                LifecycleIssue(
                    kinds=tuple(sorted(state.kinds)),
                    var=var,
                    acquire_line=state.acquire_line,
                    line=state.acquire_line,
                    problem="ctor-window",
                    detail=(
                        f"'{var}' ({'/'.join(sorted(state.kinds))}) is owned by "
                        "self but the constructor-tail guard does not release it"
                    ),
                    pending_guards=tuple(sorted(state.pending_guards)),
                )
            )

    # -- statement dispatch ---------------------------------------------
    def walk(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, FUNCTION_NODES + (ast.ClassDef,)):
            return  # nested scopes are invisible to the walker
        if isinstance(stmt, ast.If):
            self.generic([stmt.test], stmt.lineno)
            self._branch([stmt.body, stmt.orelse])
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.generic([stmt.iter], stmt.lineno)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.generic([stmt.test], stmt.lineno)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
            return
        if isinstance(stmt, ast.Try):
            self._visit_try(stmt)
            return
        if isinstance(stmt, ast.Return):
            roots = [stmt.value] if stmt.value is not None else []
            self.generic(roots, stmt.lineno)
            for var, state in sorted(self.env.items()):
                if state.status == "open":
                    self._emit_unreleased(var, state, stmt.lineno)
            return
        # Simple statements (incl. Assign/Expr/Raise/Assert/Delete...)
        self.generic([stmt], stmt.lineno)

    def _branch(self, suites: Sequence[Sequence[ast.stmt]]) -> None:
        snapshots: List[Dict[str, _VarState]] = []
        base = {var: state.copy() for var, state in self.env.items()}
        live: List[Dict[str, _VarState]] = []
        for suite in suites:
            self.env = {var: state.copy() for var, state in base.items()}
            self.walk(suite)
            terminated = bool(suite) and isinstance(
                suite[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue)
            )
            snapshots.append(self.env)
            if not terminated:
                live.append(self.env)
        if not live:
            live = [base]
        merged: Dict[str, _VarState] = {}
        every_var = {var for env in snapshots for var in env}
        order = {"reported": 0, "escaped": 1, "protected": 2, "owned": 3, "closed": 4, "open": 5}
        for var in every_var:
            states = [env[var] for env in live if var in env]
            if not states:
                states = [env[var] for env in snapshots if var in env]
            chosen = max(states, key=lambda state: order.get(state.status, 0))
            if chosen.status == "open" and any(
                state.status == "closed" for state in states
            ):
                chosen.partial = True
            chosen.risky = max(state.risky for state in states)
            for state in states:
                chosen.pending_guards |= state.pending_guards
                if state.ctor_risky_line is not None and chosen.ctor_risky_line is None:
                    chosen.ctor_risky_line = state.ctor_risky_line
            merged[var] = chosen
        self.env = merged

    def _visit_with(self, stmt: ast.With) -> None:
        pushed = 0
        header_roots: List[ast.AST] = []
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, (ast.Name, ast.Attribute)):
                spelling = expr_text(expr)
                if (
                    isinstance(expr, ast.Name)
                    and expr.id in self.env
                    and self.env[expr.id].status in ("open", "owned")
                ):
                    # ``with pool:`` — the context manager releases it.
                    self.env[expr.id].status = "closed"
                    continue
                self.lock_acquires.append(
                    LockAcquire(spelling, stmt.lineno, tuple(self.held))
                )
                self.held.append(spelling)
                pushed += 1
                continue
            header_roots.append(expr)
            acquired = (
                _find_acquire(expr, self.imports)
                if isinstance(expr, ast.expr)
                else None
            )
            if acquired is not None and isinstance(
                item.optional_vars, ast.Name
            ):
                # ``with store.pin() as pinned:`` — with-managed, safe.
                state = _VarState({acquired[0]}, stmt.lineno, acquired[1])
                state.status = "closed"
                self.env[item.optional_vars.id] = state
        if header_roots:
            self.generic(header_roots, stmt.lineno, skip_acquires=True)
        self.walk(stmt.body)
        for _ in range(pushed):
            self.held.pop()

    def _visit_try(self, stmt: ast.Try) -> None:
        guard = _Guard()
        final_vars, final_kinds, final_calls = _releases_in(stmt.finalbody)
        guard.final_vars, guard.final_kinds = final_vars, final_kinds
        guard.guard_calls |= final_calls
        for handler in stmt.handlers:
            h_vars, h_kinds, h_calls = _releases_in(handler.body)
            guard.handler_vars |= h_vars
            guard.handler_kinds |= h_kinds
            guard.guard_calls |= h_calls
        for var, state in sorted(self.env.items()):
            if state.status == "open" and guard.protects(var, state.kinds):
                if state.risky > 0:
                    self.issues.append(
                        LifecycleIssue(
                            kinds=tuple(sorted(state.kinds)),
                            var=var,
                            acquire_line=state.acquire_line,
                            line=state.acquire_line,
                            problem="leak-window",
                            detail=(
                                f"'{var}' ({'/'.join(sorted(state.kinds))}) is "
                                f"released by the finally at line {stmt.lineno}, "
                                "but statements that can raise run between the "
                                "acquire and the try — move the acquire inside "
                                "the try (or the risky calls out) so a failure "
                                "cannot leak it"
                            ),
                        )
                    )
                state.status = "protected"
        # The guard stays active while walking handlers/finalbody too:
        # the release call a handler makes is the guard doing its job,
        # not a fresh failure window.
        self.guards.append(guard)
        self.walk(stmt.body)
        for handler in stmt.handlers:
            self.walk(handler.body)
        self.walk(stmt.orelse)
        self.walk(stmt.finalbody)
        self.guards.pop()

    # -- generic per-statement processing -------------------------------
    def generic(
        self,
        roots: Sequence[ast.AST],
        lineno: int,
        skip_acquires: bool = False,
    ) -> None:
        roots = [root for root in roots if root is not None]
        if not roots:
            return
        acquire_target: Optional[str] = None
        acquired: Optional[Tuple[str, str]] = None
        assign = roots[0] if isinstance(roots[0], (ast.Assign, ast.AnnAssign)) else None
        if assign is not None and not skip_acquires:
            if isinstance(assign, ast.Assign):
                targets = assign.targets
                value = assign.value
            else:
                targets = [assign.target]
                value = assign.value
            if (
                value is not None
                and len(targets) == 1
                and isinstance(targets[0], ast.Name)
            ):
                acquired = _find_acquire(value, self.imports)
                if acquired is not None:
                    acquire_target = targets[0].id
                # Local type / lock bindings for RA007 and RA009.
                if isinstance(value, ast.Call):
                    reentrant = self.imports.lock_factory(value)
                    if reentrant is not None:
                        self.local_locks.setdefault(targets[0].id, reentrant)
                    else:
                        parts = _call_parts(value.func)
                        if parts is not None:
                            name = targets[0].id
                            spelling = ".".join(parts)
                            if self.local_types.get(name, spelling) != spelling:
                                self.local_types[name] = None
                            else:
                                self.local_types[name] = spelling

        # One traversal answers every per-statement question below.
        pairs = _nodes_with_parents(roots)
        statement_calls: List[ast.Call] = [
            node for node, _parent in pairs if isinstance(node, ast.Call)
        ]

        # 1. releases
        for call in statement_calls:
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in RELEASE_METHODS:
                self.release_kinds |= RELEASE_METHODS[func.attr]
                if isinstance(func.value, ast.Name):
                    state = self.env.get(func.value.id)
                    if state is not None and state.kinds & RELEASE_METHODS[func.attr]:
                        state.status = "closed"
            if func.attr in RECEIVER_RELEASES:
                self.release_kinds |= RECEIVER_RELEASES[func.attr]
                for state in self.env.values():
                    if (
                        state.status in ("open", "owned")
                        and state.kinds & RECEIVER_RELEASES[func.attr]
                    ):
                        state.status = "closed"

        # 2. lock bookkeeping for explicit acquire()/release() statements
        for call in statement_calls:
            func = call.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, (ast.Name, ast.Attribute)
            ):
                spelling = expr_text(func.value)
                if func.attr == "acquire":
                    self.lock_acquires.append(
                        LockAcquire(spelling, call.lineno, tuple(self.held))
                    )
                    self.held.append(spelling)
                    if isinstance(func.value, ast.Name):
                        name = func.value.id
                        if name not in self.env:
                            self.env[name] = _VarState(
                                {"lock"}, call.lineno, spelling
                            )
                elif func.attr == "release" and spelling in self.held:
                    self.held.remove(spelling)

        # 3. escapes and ownership hand-off.  A *reference to* a release
        # method (``atexit.register(blob.close)``, storing ``pool.shutdown``
        # in a callback list) transfers release responsibility — the var
        # escapes rather than staying open.
        called_funcs = {id(call.func) for call in statement_calls}
        for node, _parent in pairs:
            if (
                isinstance(node, ast.Attribute)
                and id(node) not in called_funcs
                and isinstance(node.value, ast.Name)
                and node.attr in RELEASE_METHODS
            ):
                state = self.env.get(node.value.id)
                if (
                    state is not None
                    and state.status in ("open", "owned")
                    and state.kinds & RELEASE_METHODS[node.attr]
                ):
                    state.status = "escaped"
        hand_off: Optional[str] = None
        if assign is not None and isinstance(assign, ast.Assign):
            attr_target = any(
                isinstance(target, (ast.Attribute, ast.Subscript))
                for target in assign.targets
            )
            if (
                attr_target
                and self.is_init
                and isinstance(assign.value, ast.Name)
                and any(
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    for target in assign.targets
                )
            ):
                hand_off = assign.value.id
        for node, parent in pairs:
            if not isinstance(node, ast.Name) or not isinstance(
                node.ctx, ast.Load
            ):
                continue
            if isinstance(parent, _READ_PARENTS):
                continue
            if isinstance(parent, ast.IfExp) and node is parent.test:
                continue
            state = self.env.get(node.id)
            if state is None or state.status not in ("open", "owned"):
                continue
            if node.id == hand_off:
                state.status = "owned"
            else:
                state.status = "escaped"

        # 4. risky-call accounting (before registering a fresh acquire,
        # so a statement is never risky for the resource it creates)
        if statement_calls:
            for var, state in self.env.items():
                if var == acquire_target:
                    continue
                if state.status == "open":
                    state.risky += 1
                elif state.status == "owned":
                    covered = any(
                        g.guards_ctor(var, state.kinds) for g in self.guards
                    )
                    if covered:
                        pass
                    else:
                        guard_calls = {
                            parts
                            for g in self.guards
                            for parts in g.guard_calls
                        }
                        if guard_calls:
                            state.pending_guards |= guard_calls
                        elif state.ctor_risky_line is None:
                            state.ctor_risky_line = lineno

        # 5. record call sites for the project call graph
        for call in statement_calls:
            parts = _call_parts(call.func)
            if parts is not None:
                self.calls.append(
                    CallSite(parts, call.lineno, tuple(self.held))
                )

        # 6. register the acquire
        if acquire_target is not None and acquired is not None:
            kind, receiver = acquired
            state = _VarState({kind}, lineno, receiver)
            if any(g.protects(acquire_target, state.kinds) for g in self.guards):
                state.status = "protected"
            previous = self.env.get(acquire_target)
            if previous is not None and previous.status in ("open", "owned"):
                # Reassignment merges kinds so later releases match either.
                state.kinds |= previous.kinds
            self.env[acquire_target] = state


# --------------------------------------------------------------------- #
# Submit-payload (RA009) extraction
# --------------------------------------------------------------------- #
class _PayloadClassifier:
    def __init__(
        self,
        fn: ast.AST,
        imports: _ImportTables,
        local_types: Dict[str, Optional[str]],
        own_attr_types: Dict[str, str],
    ) -> None:
        self.imports = imports
        self.local_types = local_types
        self.own_attr_types = own_attr_types
        self.bindings: Dict[str, List[ast.expr]] = {}
        self.nested_defs: Set[str] = set()
        for node in walk_scope(fn):
            if isinstance(node, FUNCTION_NODES):
                self.nested_defs.add(node.name)
            elif isinstance(node, ast.Assign):
                for target, value in _assign_pairs(node):
                    self.bindings.setdefault(target, []).append(value)

    def classify(
        self, expr: ast.expr, role: str, depth: int = 5
    ) -> Optional[str]:
        if depth <= 0:
            return None
        if isinstance(expr, ast.Lambda):
            # In initargs RA003 already flags lambdas; as a task argument
            # it is RA009's to catch.
            return "definite:a lambda" if role == "argument" else None
        if isinstance(expr, ast.GeneratorExp):
            return "definite:a generator expression"
        if isinstance(expr, ast.Starred):
            return self.classify(expr.value, role, depth)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                verdict = self.classify(element, role, depth - 1)
                if verdict is not None:
                    return verdict
            return None
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is None:
                    continue
                verdict = self.classify(value, role, depth - 1)
                if verdict is not None:
                    return verdict
            return None
        if isinstance(expr, ast.IfExp):
            return self.classify(expr.body, role, depth - 1) or self.classify(
                expr.orelse, role, depth - 1
            )
        if isinstance(expr, ast.Call):
            if self.imports.lock_factory(expr) is not None:
                return "definite:a freshly created threading primitive"
            parts = _call_parts(expr.func)
            if parts is None:
                return None
            if parts == ("open",):
                return "definite:an open file handle"
            if parts[-1] == "attach":
                return (
                    "definite:an attached shared-memory mapping "
                    "(.attach() result)"
                )
            if len(parts) == 1 and (
                parts[0] in self.bindings or parts[0] in self.nested_defs
            ):
                return None  # calling a local alias: unresolvable result
            if parts[0] == "self":
                return None
            return "gencall:" + ".".join(parts)
        if isinstance(expr, ast.Name):
            # Chase the binding first: a definite verdict on the bound
            # expression (e.g. ``graph = handle.attach()``) beats the
            # spelling-level type recorded in ``local_types``.
            for value in self.bindings.get(expr.id, []):
                verdict = self.classify(value, role, depth - 1)
                if verdict is not None:
                    return verdict
            resolved_type = self.local_types.get(expr.id)
            if resolved_type:
                return "type:" + resolved_type
            return None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                spelling = self.own_attr_types.get(expr.attr)
                if spelling:
                    return "type:" + spelling
                return "selfattr:" + expr.attr
            return None
        return None


def _assign_pairs(assign: ast.Assign) -> List[Tuple[str, ast.expr]]:
    pairs: List[Tuple[str, ast.expr]] = []
    for target in assign.targets:
        if isinstance(target, ast.Name):
            pairs.append((target.id, assign.value))
        elif isinstance(target, (ast.Tuple, ast.List)) and isinstance(
            assign.value, (ast.Tuple, ast.List)
        ):
            if len(target.elts) == len(assign.value.elts):
                for element, value in zip(target.elts, assign.value.elts):
                    if isinstance(element, ast.Name):
                        pairs.append((element.id, value))
    return pairs


def _pool_receiver(
    receiver: ast.expr,
    local_types: Dict[str, Optional[str]],
    own_attr_types: Dict[str, str],
) -> bool:
    text = expr_text(receiver).lower()
    if any(marker in text for marker in POOLISH_SPELLINGS):
        return True
    spelling: Optional[str] = None
    if isinstance(receiver, ast.Name):
        spelling = local_types.get(receiver.id)
    elif (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
    ):
        spelling = own_attr_types.get(receiver.attr)
    if spelling is None:
        return False
    return spelling.split(".")[-1] in POOL_CLASS_NAMES


def _extract_submit_payloads(
    fn: ast.AST,
    imports: _ImportTables,
    local_types: Dict[str, Optional[str]],
    own_attr_types: Dict[str, str],
) -> List[SubmitPayload]:
    classifier = _PayloadClassifier(fn, imports, local_types, own_attr_types)
    payloads: List[SubmitPayload] = []

    def note(expr: ast.expr, receiver: str, role: str) -> None:
        verdict = classifier.classify(expr, role)
        if verdict is not None:
            payloads.append(
                SubmitPayload(
                    lineno=expr.lineno,
                    receiver=receiver,
                    role=role,
                    spelling=expr_text(expr),
                    verdict=verdict,
                )
            )

    for node in walk_scope(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "submit"
            and node.args
            and _pool_receiver(func.value, local_types, own_attr_types)
        ):
            receiver = expr_text(func.value)
            for arg in node.args[1:]:
                note(arg, receiver, "argument")
            for keyword in node.keywords:
                if keyword.arg is not None:
                    note(keyword.value, receiver, "argument")
        for keyword in node.keywords:
            if keyword.arg == "initargs":
                note(keyword.value, expr_text(func), "initargs")
    return payloads


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #
def _summarize_function(
    fn: ast.AST,
    class_name: Optional[str],
    imports: _ImportTables,
    own_attr_types: Dict[str, str],
) -> FunctionSummary:
    walker = _FunctionWalker(fn, class_name, imports)
    walker.run()
    is_generator = any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in walk_scope(fn)
    )
    local_types = {
        name: spelling
        for name, spelling in walker.local_types.items()
        if spelling is not None
    }
    payloads = _extract_submit_payloads(
        fn, imports, walker.local_types, own_attr_types
    )
    qualname = fn.name if class_name is None else f"{class_name}.{fn.name}"
    return FunctionSummary(
        qualname=qualname,
        class_name=class_name,
        name=fn.name,
        lineno=fn.lineno,
        is_generator=is_generator,
        lock_acquires=tuple(walker.lock_acquires),
        calls=tuple(walker.calls),
        local_types=tuple(sorted(local_types.items())),
        local_locks=tuple(sorted(walker.local_locks.items())),
        release_kinds=tuple(sorted(walker.release_kinds)),
        lifecycle=tuple(walker.issues),
        submit_payloads=tuple(payloads),
    )


def summarize_module(module) -> ModuleSummary:
    """Build the picklable :class:`ModuleSummary` for one parsed module."""
    tree = module.tree
    imports = _ImportTables(tree)
    classes: List[ClassSummary] = []
    functions: List[FunctionSummary] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            summary = _summarize_class(node, imports)
            classes.append(summary)
            attr_types = dict(summary.attr_types)
            for method in node.body:
                if isinstance(method, FUNCTION_NODES):
                    functions.append(
                        _summarize_function(
                            method, node.name, imports, attr_types
                        )
                    )
        elif isinstance(node, FUNCTION_NODES):
            functions.append(_summarize_function(node, None, imports, {}))
    return ModuleSummary(
        path=module.path,
        dotted=module_dotted_name(module.path),
        import_aliases=tuple(sorted(imports.aliases.items())),
        from_imports=tuple(sorted(imports.from_imports)),
        functions=tuple(functions),
        classes=tuple(classes),
    )
