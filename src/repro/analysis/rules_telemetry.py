"""RA006 — telemetry-handle discipline.

The observability layer (PR 8, ``repro.obs``) is opt-in by injection:
``BatchQueryEngine(metrics=...)`` / ``serve(metrics=...)`` thread a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.Tracer` down through the planner, executor and
snapshot store, and the default is the allocation-free
``NULL_REGISTRY``/``NULL_TRACER``.  A module-level registry breaks every
property that design buys:

* tests can no longer isolate their metrics (state leaks between cases),
* two engines in one process share counters and corrupt each other's
  cost-model feedback,
* the null-object fast path is bypassed, so *every* caller pays the
  instrumentation cost, and
* worker processes would pickle (or re-import) the global and silently
  fork its state.

Two checks keep handles injected:

1. **No module-level telemetry singletons.**  A top-level
   ``NAME = MetricsRegistry(...)`` or ``NAME = Tracer(...)`` assignment is
   flagged.  Registries live in ``main()``s, fixtures, service
   constructors — anywhere a caller can pass a fresh one in.
2. **Telemetry calls resolve to an injected handle.**  A call
   ``base.counter(...)`` / ``base.gauge(...)`` / ``base.histogram(...)``
   / ``base.span(...)`` whose receiver is a *bare name bound at module
   level* (import or top-level assignment) and not rebound anywhere in
   the enclosing function-scope chain (parameter, local assignment,
   ``with``/``for`` target, comprehension) is flagged.  Receivers that
   are attributes (``self._metrics.counter``), locals
   (``registry = resolve_registry(metrics)``) or parameters are the
   sanctioned patterns and pass.

``repro/obs/`` itself is exempt — it defines the primitives and the null
singletons, so its internals legitimately name them at module level.
The name-resolution walk prefers silence when it cannot tell (a receiver
bound neither locally nor at module level — e.g. a builtin — is never
flagged).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Set, Tuple

from repro.analysis.astutil import FUNCTION_NODES, expr_text, walk_scope
from repro.analysis.core import Finding, Rule, SourceModule, register

#: Method names that mint or use a telemetry handle on a registry/tracer.
TELEMETRY_METHODS = frozenset({"counter", "gauge", "histogram", "span"})

#: Constructors that must never be bound to a module-level name.
TELEMETRY_SINGLETON_TYPES = frozenset({"MetricsRegistry", "Tracer"})

_SCOPE_OPENERS = FUNCTION_NODES + (ast.Lambda,)


def _is_obs_package(module: SourceModule) -> bool:
    return "repro/obs/" in module.posix_path


def _target_names(target: ast.expr) -> Iterator[str]:
    """Bare names bound by an assignment/loop/with target."""
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _scope_bindings(scope: ast.AST) -> Set[str]:
    """Names bound *in* ``scope`` (parameters plus statement-level
    bindings), without descending into nested scopes.  Names declared
    ``global``/``nonlocal`` are excluded — assigning them does not create
    a scope-local binding."""
    names: Set[str] = set()
    escaped: Set[str] = set()
    if isinstance(scope, _SCOPE_OPENERS):
        args = scope.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            names.add(arg.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
    for node in walk_scope(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.comprehension):
            names.update(_target_names(node.target))
        elif isinstance(node, FUNCTION_NODES + (ast.ClassDef,)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            escaped.update(node.names)
    return names - escaped


def _telemetry_call_base(node: ast.AST) -> Tuple[ast.Call, str]:
    """``(call, receiver name)`` when ``node`` is ``name.<telemetry>()``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in TELEMETRY_METHODS
        and isinstance(node.func.value, ast.Name)
    ):
        return node, node.func.value.id
    return None, ""


@register
class TelemetryDisciplineRule(Rule):
    rule_id = "RA006"
    title = (
        "telemetry handles are injected, never module-level globals "
        "(no top-level MetricsRegistry/Tracer; counter/gauge/histogram/"
        "span receivers must be locals, parameters or attributes)"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if _is_obs_package(module):
            return
        module_names = _scope_bindings(module.tree)
        yield from self._check_singletons(module)
        yield from self._check_scope(module, module.tree, (), module_names)

    def _check_singletons(self, module: SourceModule) -> Iterator[Finding]:
        for node in walk_scope(module.tree):
            if isinstance(node, ast.Assign):
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
            else:
                continue
            for call in ast.walk(value):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id in TELEMETRY_SINGLETON_TYPES
                ):
                    yield self.finding(
                        module,
                        node,
                        f"module-level {call.func.id}() singleton; construct "
                        "registries/tracers where a caller can inject them "
                        "(engine/service constructor arguments, test "
                        "fixtures, main()) so state never leaks across "
                        "engines or tests",
                    )

    def _check_scope(
        self,
        module: SourceModule,
        scope: ast.AST,
        enclosing: Tuple[Set[str], ...],
        module_names: Set[str],
    ) -> Iterator[Finding]:
        """Flag telemetry calls whose receiver resolves to a module global.

        ``enclosing`` is the chain of function-scope binding sets visible
        here; class bodies do not extend it (their bindings are invisible
        to nested functions) and do not reset it (methods still see the
        enclosing functions' locals).
        """
        for node in walk_scope(scope):
            call, base = _telemetry_call_base(node)
            if (
                call is not None
                and not any(base in bindings for bindings in enclosing)
                and base in module_names
            ):
                yield self.finding(
                    module,
                    call,
                    f"telemetry call '{expr_text(call.func)}(...)' goes "
                    f"through module-level global '{base}'; accept the "
                    "registry/tracer as an argument (resolve_registry/"
                    "resolve_tracer) or read it off an injected attribute",
                )
            if isinstance(node, _SCOPE_OPENERS):
                yield from self._check_scope(
                    module,
                    node,
                    enclosing + (_scope_bindings(node),),
                    module_names,
                )
            elif isinstance(node, ast.ClassDef):
                yield from self._check_scope(
                    module, node, enclosing, module_names
                )
