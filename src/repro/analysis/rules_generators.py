"""RA005 — generator hygiene for held pools and locks.

A generator can be abandoned at any ``yield``: the consumer breaks out of
its loop, an exception fires downstream, or the generator is simply
garbage-collected.  Python then raises ``GeneratorExit`` *at the yield*,
and any code after it never runs.  A generator that acquired a resource —
spawned a ``ProcessPoolExecutor``/``WorkerPool``, called ``.acquire()`` on
a lock — and then yields outside ``try/finally`` therefore leaks worker
processes or deadlocks the next lock taker the moment a caller stops
iterating early (``flush_fragments`` consumers do exactly that on
``limit=``).

The rule inspects every generator function.  After a resource acquisition
is seen::

    executor = ProcessPoolExecutor(...)      # acquisition
    lock.acquire()                           # acquisition

every subsequent ``yield`` must be lexically inside a ``try`` that has a
``finally`` block (where the shutdown/release belongs).  Three escapes:

* ``with ProcessPoolExecutor(...) as pool:`` — exempt; ``GeneratorExit``
  unwinds ``with`` blocks, so cleanup is already guaranteed;
* an explicit ``.shutdown()``/``.release()``/``.close()`` statement marks
  the resource released — later yields are clean again;
* resources received as parameters are the caller's problem, not the
  generator's (see ``stream_parallel(pool=...)``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Sequence

from repro.analysis.astutil import FUNCTION_NODES, expr_text, walk_scope
from repro.analysis.core import Finding, Rule, SourceModule, register

#: Constructor names whose result must be shut down explicitly.
RESOURCE_CONSTRUCTORS = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "WorkerPool"}
)

#: Method calls that take a resource (``lock.acquire()``).
ACQUIRE_METHODS = frozenset({"acquire"})

#: Method calls that release every held resource for this rule's purposes.
RELEASE_METHODS = frozenset({"release", "shutdown", "close", "terminate"})


def _called_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _acquisitions(statement: ast.stmt) -> List[ast.Call]:
    """Resource-acquiring calls executed by ``statement`` itself."""
    if isinstance(statement, (ast.Assign, ast.AnnAssign)):
        value = statement.value
    elif isinstance(statement, ast.Expr):
        value = statement.value
    else:
        return []
    if value is None:
        return []
    calls = []
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            name = _called_name(node)
            if name in RESOURCE_CONSTRUCTORS or (
                isinstance(node.func, ast.Attribute) and name in ACQUIRE_METHODS
            ):
                calls.append(node)
    return calls


def _releases(statement: ast.stmt) -> bool:
    if not isinstance(statement, ast.Expr):
        return False
    for node in ast.walk(statement.value):
        if isinstance(node, ast.Call) and _called_name(node) in RELEASE_METHODS:
            if isinstance(node.func, ast.Attribute):
                return True
    return False


def _is_generator(function: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in walk_scope(function)
    )


def _yields_in(statement: ast.stmt) -> Iterator[ast.AST]:
    """Yield expressions lexically inside ``statement`` (own scope only),
    excluding those nested in further compound statements — callers recurse
    into those with updated protection state."""
    stack: List[ast.AST] = [statement]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            yield node
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, FUNCTION_NODES + (ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(child, ast.stmt):
                continue  # compound-statement bodies handled by _scan
            stack.append(child)


@register
class GeneratorHygieneRule(Rule):
    rule_id = "RA005"
    title = (
        "generators holding a pool or lock must yield only inside "
        "try/finally"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, FUNCTION_NODES) and _is_generator(node):
                held: List[str] = []
                yield from self._scan(
                    module, node.body, held, protected=False
                )

    def _scan(
        self,
        module: SourceModule,
        statements: Sequence[ast.stmt],
        held: List[str],
        protected: bool,
    ) -> Iterator[Finding]:
        for statement in statements:
            for call in _acquisitions(statement):
                held.append(expr_text(call))
            if _releases(statement):
                held.clear()
            if held and not protected:
                for node in _yields_in(statement):
                    yield self.finding(
                        module,
                        node,
                        f"generator yields while holding {held[-1]}; an "
                        "abandoned iterator raises GeneratorExit here and "
                        "skips the cleanup — wrap the yields in try/finally "
                        "and release there",
                    )
            yield from self._scan_children(module, statement, held, protected)

    def _scan_children(
        self,
        module: SourceModule,
        statement: ast.stmt,
        held: List[str],
        protected: bool,
    ) -> Iterator[Finding]:
        if isinstance(statement, ast.Try):
            inner = protected or bool(statement.finalbody)
            yield from self._scan(module, statement.body, held, inner)
            for handler in statement.handlers:
                yield from self._scan(module, handler.body, held, inner)
            yield from self._scan(module, statement.orelse, held, inner)
            yield from self._scan(module, statement.finalbody, held, protected)
            return
        for field in ("body", "orelse", "finalbody"):
            children = getattr(statement, field, None)
            if children and all(isinstance(c, ast.stmt) for c in children):
                yield from self._scan(module, children, held, protected)
