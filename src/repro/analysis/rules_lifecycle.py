"""RA008 — resource lifecycle: every acquire must reach a release.

The resources this repo hand-refcounts are exactly the ones whose leaks
have hurt before: snapshot pins (``store.pin()``/``release()``),
shared-memory exports and segments (``export_shm``/``release_shm``,
``SharedCSR.create``/``unlink`` — the ``/dev/shm`` hygiene fixture
exists because segments outlived tests), attachments
(``attach()``/``close()``) and worker pools (constructor/``shutdown``).

The per-file pass (``summaries._FunctionWalker``) runs a conservative
abstract interpretation over each function and records candidate
*lifecycle issues*; this rule resolves the interprocedural parts against
the :class:`~repro.analysis.project.ProjectIndex` and reports:

``unreleased``
    an acquire that reaches the end of the function (or a ``return``)
    still open on some path, without escaping to a caller/owner;
``leak-window``
    the release *is* in a ``finally``, but statements that can raise run
    between the acquire and the ``try`` — an exception there leaks the
    resource.  Move the acquire inside the try (acquires already under
    their guard are fine);
``ctor-window``
    ``__init__`` stored the resource on ``self`` (the instance owns it)
    but can still fail afterwards, before any caller could possibly call
    the release method.  A guard that calls a helper absolves the issue
    iff some resolved helper *transitively* releases the resource's kind
    (e.g. ``self._release_shared_graph()``); unresolvable helpers are
    given the benefit of the doubt.

Escapes are silent by design: a resource that is returned, yielded,
passed to a call, stored in a container or aliased has an owner this
analysis cannot see, and guessing would drown the signal in noise.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.core import Finding, ProjectRule, register
from repro.analysis.project import ProjectIndex


@register
class ResourceLifecycleRule(ProjectRule):
    rule_id = "RA008"
    title = (
        "acquired resources (pins, shm segments/exports, attachments, "
        "pools) must be released on every path"
    )

    def check_project(self, index: ProjectIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fkey in sorted(index.functions):
            module, function = index.functions[fkey]
            for issue in function.lifecycle:
                if issue.pending_guards:
                    resolved_release = False
                    unresolvable = False
                    for guard in issue.pending_guards:
                        resolved = index.resolve_call(
                            module, function, guard
                        )
                        if resolved is None:
                            unresolvable = True
                            continue
                        callee_key = (resolved[0].path, resolved[1].qualname)
                        kinds = index.transitive_release_kinds.get(
                            callee_key, frozenset()
                        )
                        if kinds & set(issue.kinds):
                            resolved_release = True
                            break
                    if resolved_release or unresolvable:
                        continue
                findings.append(
                    self.project_finding(
                        module.path,
                        issue.line,
                        f"[{issue.problem}] in {function.qualname}: "
                        f"{issue.detail}",
                    )
                )
        return findings
