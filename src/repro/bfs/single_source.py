"""Single source hop-bounded BFS.

Both the PathEnum index (Section III) and the hop-constrained neighbour
sets Γ(q) / Γr(q) (Definition 4.4) are hop-bounded BFS frontiers; this
module provides the plain single-source primitive that the multi-source
variant and the tests compare against.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.graph.digraph import DiGraph
from repro.utils.validation import require_non_negative, require_vertex


def bfs_distances(
    graph: DiGraph,
    source: int,
    max_hops: int | None = None,
    forward: bool = True,
) -> Dict[int, int]:
    """Hop distances from ``source`` to every vertex within ``max_hops``.

    Parameters
    ----------
    graph:
        The directed graph.
    source:
        Start vertex.
    max_hops:
        Stop expanding beyond this many hops (``None`` = unbounded).
    forward:
        If True traverse out-edges of ``G``; if False traverse in-edges,
        i.e. run the BFS on the reverse graph ``Gr`` without materialising
        it.

    Returns
    -------
    dict mapping reached vertex -> hop distance (``source`` maps to 0).
    Unreached vertices are absent, which callers treat as distance ∞.
    """
    require_vertex(source, graph.num_vertices, "source")
    if max_hops is not None:
        require_non_negative(max_hops, "max_hops")
    neighbors = graph.out_neighbors if forward else graph.in_neighbors
    distances: Dict[int, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        depth = distances[u]
        if max_hops is not None and depth >= max_hops:
            continue
        for v in neighbors(u):
            if v not in distances:
                distances[v] = depth + 1
                queue.append(v)
    return distances


def bfs_levels(
    graph: DiGraph,
    source: int,
    max_hops: int | None = None,
    forward: bool = True,
) -> List[List[int]]:
    """Vertices grouped by hop distance from ``source``.

    ``result[d]`` is the sorted list of vertices at exactly ``d`` hops.
    Used by the search-order optimiser to estimate per-level frontier sizes.
    """
    distances = bfs_distances(graph, source, max_hops=max_hops, forward=forward)
    if not distances:
        return []
    depth = max(distances.values())
    levels: List[List[int]] = [[] for _ in range(depth + 1)]
    for vertex, d in distances.items():
        levels[d].append(vertex)
    for level in levels:
        level.sort()
    return levels
