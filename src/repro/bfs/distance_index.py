"""The PathEnum-style distance index for a batch of queries.

For a batch ``Q`` the index stores, for every query source ``s``, the hop
distance ``dist_G(s, v)`` of every vertex reachable within the relevant hop
budget, and for every query target ``t`` the distance ``dist_G(v, t)``
(computed as a BFS from ``t`` on the reverse graph ``Gr``).  Lemma 3.1 of
the paper justifies pruning any vertex ``v`` from an enumeration whenever
``dist(s, v)`` or ``dist(v, t)`` exceeds the remaining hop budget.

The index is exactly the structure built in lines 1-2 of Algorithm 1 and
Algorithm 4 with multi-source BFS.

Two representations live here:

* :class:`CSRDistanceIndex` — the production structure: one flat
  ``array('l')`` row per indexed endpoint, keyed by CSR vertex id, with a
  large finite sentinel (:data:`UNREACHABLE`) for vertices the BFS never
  reached.  Rows support O(1) direct indexing in the enumeration hot loops
  and the whole index serialises to a compact ``bytes`` blob
  (:meth:`CSRDistanceIndex.to_bytes`) so the parallel executor can ship a
  parent-built index to worker processes once, through the pool
  initializer, instead of re-running BFS per worker.  Lookups with a vertex
  id outside the snapshot's range raise (mirroring the CSR packing assert)
  rather than silently reporting "unreachable".
* :class:`DistanceIndex` — the original dict-of-dicts structure, retained
  as the reference implementation for the differential test suite and for
  callers that build tiny throwaway indexes.

Both expose the same query API (``dist_from``/``dist_to``, neighbourhoods,
level sizes) and the same mapping attributes (``from_source``/``to_target``
— real dicts on the legacy class, zero-copy views over the flat arrays on
the CSR class), so every Lemma 3.1 pruning call sites works with either.
"""

from __future__ import annotations

import math
import struct
from array import array
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.bfs.multi_source import multi_source_bfs
from repro.graph.digraph import DiGraph
from repro.utils.validation import require, require_positive

INFINITY = math.inf

#: Typecode of the distance rows — the same signed-long typecode the CSR
#: adjacency arrays use, so one platform-word convention covers the whole
#: shipped payload.
TYPECODE = "l"

#: In-row sentinel for "the BFS never reached this vertex".  A large finite
#: int (not -1) so the hot loops can compute ``used + 1 + row[v] > k``
#: without a branch: any arithmetic involving the sentinel is astronomically
#: larger than a hop budget.  Fits a 32-bit signed long, the narrowest
#: platform ``'l'``.
UNREACHABLE = 2**31 - 1

_HEADER = struct.Struct("<8sqqqqqq")
_MAGIC = b"CSRDIDX1"


def _reachable_entries(row) -> int:
    """Number of reachable entries in one dense row.

    ``array.count`` runs at C speed; rows attached zero-copy from a shared
    memory segment are ``memoryview`` casts, which lack ``count`` and fall
    back to a generator scan (workers never take this path in the hot loop
    — they index rows, they don't size them).
    """
    try:
        return len(row) - row.count(UNREACHABLE)
    except AttributeError:
        return sum(1 for distance in row if distance != UNREACHABLE)


class _DistanceRow(MappingABC):
    """Read-only mapping view over one flat distance row.

    Behaves like the legacy per-endpoint dict: iteration, ``len`` and
    ``items()`` cover only *reachable* vertices, ``get`` returns the default
    for in-range unreachable vertices, and — unlike a dict — any vertex id
    outside the CSR snapshot's range raises ``ValueError`` instead of being
    conflated with "unreachable".
    """

    __slots__ = ("_row", "_reachable")

    def __init__(self, row: array) -> None:
        self._row = row
        self._reachable: int | None = None  # lazy count

    def _check(self, vertex: int) -> None:
        if not 0 <= vertex < len(self._row):
            raise ValueError(
                f"vertex id {vertex} is outside the indexed snapshot's "
                f"range [0, {len(self._row)})"
            )

    def __getitem__(self, vertex: int) -> int:
        self._check(vertex)
        distance = self._row[vertex]
        if distance == UNREACHABLE:
            raise KeyError(vertex)
        return distance

    def get(self, vertex: int, default=None):
        self._check(vertex)
        distance = self._row[vertex]
        return default if distance == UNREACHABLE else distance

    def __contains__(self, vertex: object) -> bool:
        if not isinstance(vertex, int) or not 0 <= vertex < len(self._row):
            return False
        return self._row[vertex] != UNREACHABLE

    def __iter__(self) -> Iterator[int]:
        for vertex, distance in enumerate(self._row):
            if distance != UNREACHABLE:
                yield vertex

    def items(self):
        return [
            (vertex, distance)
            for vertex, distance in enumerate(self._row)
            if distance != UNREACHABLE
        ]

    def values(self):
        return [d for d in self._row if d != UNREACHABLE]

    def __len__(self) -> int:
        if self._reachable is None:
            self._reachable = _reachable_entries(self._row)
        return self._reachable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_DistanceRow(|V|={len(self._row)}, reachable={len(self)})"


class _DirectionView(MappingABC):
    """Dict-like ``{endpoint: distance row}`` view of one index direction."""

    __slots__ = ("_rows",)

    def __init__(self, rows: Dict[int, array]) -> None:
        self._rows = rows

    def __getitem__(self, endpoint: int) -> _DistanceRow:
        return _DistanceRow(self._rows[endpoint])

    def __iter__(self) -> Iterator[int]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, endpoint: object) -> bool:
        return endpoint in self._rows


class CSRDistanceIndex:
    """Array-backed distance index keyed by CSR vertex ids.

    Each indexed endpoint owns one flat ``array('l')`` of length
    ``num_vertices`` holding hop distances (:data:`UNREACHABLE` where the
    truncated BFS never arrived).  ``from_source``/``to_target`` present the
    legacy mapping API as thin views; the enumeration hot loops bypass the
    views entirely via :meth:`dense_from`/:meth:`dense_to` and index the raw
    arrays directly.
    """

    __slots__ = ("num_vertices", "max_hops", "_from_rows", "_to_rows")

    def __init__(
        self,
        num_vertices: int,
        max_hops: int,
        from_rows: Dict[int, array],
        to_rows: Dict[int, array],
    ) -> None:
        self.num_vertices = num_vertices
        self.max_hops = max_hops
        self._from_rows = from_rows
        self._to_rows = to_rows

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_distance_maps(
        cls,
        num_vertices: int,
        max_hops: int,
        from_source: Dict[int, Dict[int, int]],
        to_target: Dict[int, Dict[int, int]],
    ) -> "CSRDistanceIndex":
        """Pack sparse BFS result dicts into dense rows."""

        def pack(maps: Dict[int, Dict[int, int]]) -> Dict[int, array]:
            rows: Dict[int, array] = {}
            template = array(TYPECODE, [UNREACHABLE]) * num_vertices
            for endpoint, distances in maps.items():
                row = array(TYPECODE, template)
                for vertex, distance in distances.items():
                    row[vertex] = distance
                rows[endpoint] = row
            return rows

        return cls(num_vertices, max_hops, pack(from_source), pack(to_target))

    def copy(self) -> "CSRDistanceIndex":
        """Deep copy (fresh row arrays) — the starting point for
        :meth:`apply_delta` when the original must stay frozen."""
        return CSRDistanceIndex(
            self.num_vertices,
            self.max_hops,
            {s: array(TYPECODE, row) for s, row in self._from_rows.items()},
            {t: array(TYPECODE, row) for t, row in self._to_rows.items()},
        )

    # ------------------------------------------------------------------ #
    # Incremental repair
    # ------------------------------------------------------------------ #
    def apply_delta(
        self,
        graph,
        edges_added: Iterable[Tuple[int, int]],
        edges_removed: Iterable[Tuple[int, int]],
    ) -> "CSRDistanceIndex":
        """Repair the index in place for a batch of edge mutations.

        ``graph`` is the **post-mutation** graph (a ``DiGraph`` or a sealed
        ``CSRGraph`` — anything with ``csr_snapshot()``); ``edges_added`` /
        ``edges_removed`` are the netted changes since the index was built
        (e.g. from :meth:`repro.graph.snapshots.SnapshotStore.delta`).

        Bounded-frontier re-relaxation (Ramalingam–Reps two-phase deletion
        repair plus insertion relaxation), truncated at ``max_hops`` exactly
        like :func:`build_index`'s BFS, so the repaired rows are
        **byte-identical** to a fresh rebuild against the new graph — a
        property the differential suite enforces.  Cost scales with the
        region whose distances actually changed, not with ``|V| + |E|``.

        Returns ``self`` for chaining.  Vertex-count changes cannot be
        expressed as an edge delta; rebuild instead.
        """
        require(
            graph.num_vertices == self.num_vertices,
            "apply_delta cannot span a vertex-count change "
            f"({self.num_vertices} -> {graph.num_vertices}); rebuild the index",
        )
        added = {(int(u), int(v)) for u, v in edges_added}
        removed = {(int(u), int(v)) for u, v in edges_removed}
        require(
            not (added & removed),
            "an edge appears in both edges_added and edges_removed; net the "
            "delta first",
        )
        if not added and not removed:
            return self
        csr = graph.csr_snapshot()
        fwd = csr.adjacency_lists(forward=True)
        bwd = csr.adjacency_lists(forward=False)
        for row in self._from_rows.values():
            _repair_row(row, fwd, bwd, added, removed, self.max_hops)
        if self._to_rows:
            # Backward rows are BFS distances on Gr, where edge (u, v)
            # appears as (v, u) and successor/predecessor roles swap.
            swapped_added = {(v, u) for (u, v) in added}
            swapped_removed = {(v, u) for (u, v) in removed}
            for row in self._to_rows.values():
                _repair_row(
                    row, bwd, fwd, swapped_added, swapped_removed, self.max_hops
                )
        return self

    # ------------------------------------------------------------------ #
    # Mapping-compatible attribute API
    # ------------------------------------------------------------------ #
    @property
    def from_source(self) -> _DirectionView:
        """``{s: {v: dist_G(s, v)}}`` view (reachable entries only)."""
        return _DirectionView(self._from_rows)

    @property
    def to_target(self) -> _DirectionView:
        """``{t: {v: dist_G(v, t)}}`` view (reachable entries only)."""
        return _DirectionView(self._to_rows)

    # ------------------------------------------------------------------ #
    # Dense rows (hot-loop API)
    # ------------------------------------------------------------------ #
    def dense_from(self, source: int) -> array:
        """The raw distance row of ``source`` (:data:`UNREACHABLE` holes).

        Callers index it directly — ``row[v]`` — which is the fast path the
        enumeration loops use; they must not mutate it.
        """
        row = self._from_rows.get(source)
        if row is None:
            raise KeyError(f"source {source} is not indexed")
        return row

    def dense_to(self, target: int) -> array:
        """The raw distance row of ``target`` (:data:`UNREACHABLE` holes)."""
        row = self._to_rows.get(target)
        if row is None:
            raise KeyError(f"target {target} is not indexed")
        return row

    # ------------------------------------------------------------------ #
    # Lookups (same semantics as the legacy class, plus range checking)
    # ------------------------------------------------------------------ #
    def _checked(self, row: array, vertex: int) -> float:
        if not 0 <= vertex < self.num_vertices:
            raise ValueError(
                f"vertex id {vertex} is outside the indexed snapshot's "
                f"range [0, {self.num_vertices})"
            )
        distance = row[vertex]
        return INFINITY if distance == UNREACHABLE else distance

    def dist_from(self, source: int, vertex: int) -> float:
        """``dist_G(source, vertex)`` or ``inf`` when unreachable."""
        row = self._from_rows.get(source)
        if row is None:
            raise KeyError(f"source {source} is not indexed")
        return self._checked(row, vertex)

    def dist_to(self, target: int, vertex: int) -> float:
        """``dist_G(vertex, target)`` or ``inf`` when unreachable."""
        row = self._to_rows.get(target)
        if row is None:
            raise KeyError(f"target {target} is not indexed")
        return self._checked(row, vertex)

    def has_source(self, source: int) -> bool:
        return source in self._from_rows

    def has_target(self, target: int) -> bool:
        return target in self._to_rows

    # ------------------------------------------------------------------ #
    # Hop-constrained neighbourhoods (Definition 4.4)
    # ------------------------------------------------------------------ #
    def forward_neighborhood(self, source: int, hops: int) -> FrozenSet[int]:
        """Γ — vertices reachable from ``source`` within ``hops`` hops."""
        row = self._from_rows.get(source)
        if row is None:
            raise KeyError(f"source {source} is not indexed")
        return frozenset(v for v, d in enumerate(row) if d <= hops)

    def backward_neighborhood(self, target: int, hops: int) -> FrozenSet[int]:
        """Γr — vertices that can reach ``target`` within ``hops`` hops."""
        row = self._to_rows.get(target)
        if row is None:
            raise KeyError(f"target {target} is not indexed")
        return frozenset(v for v, d in enumerate(row) if d <= hops)

    def forward_level_sizes(self, source: int, hops: int) -> List[int]:
        """Number of vertices at each exact distance 0..hops from ``source``."""
        sizes = [0] * (hops + 1)
        row = self._from_rows.get(source)
        if row is not None:
            for distance in row:
                if distance <= hops:
                    sizes[distance] += 1
        return sizes

    def backward_level_sizes(self, target: int, hops: int) -> List[int]:
        """Number of vertices at each exact distance 0..hops to ``target``."""
        sizes = [0] * (hops + 1)
        row = self._to_rows.get(target)
        if row is not None:
            for distance in row:
                if distance <= hops:
                    sizes[distance] += 1
        return sizes

    @property
    def num_rows(self) -> int:
        """Number of indexed endpoint rows (sources + targets)."""
        return len(self._from_rows) + len(self._to_rows)

    @property
    def size_in_entries(self) -> int:
        """Total number of *reachable* (vertex, distance) entries stored."""
        total = 0
        for rows in (self._from_rows, self._to_rows):
            for row in rows.values():
                total += _reachable_entries(row)
        return total

    @property
    def nbytes(self) -> int:
        """Approximate serialized payload size (rows only, no header)."""
        itemsize = array(TYPECODE).itemsize
        rows = len(self._from_rows) + len(self._to_rows)
        return rows * self.num_vertices * itemsize

    # ------------------------------------------------------------------ #
    # Serialization (worker shipping)
    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        """Serialize to a compact blob for same-host worker shipping.

        Layout: header (magic, itemsize, num_vertices, max_hops, row
        counts), then the sorted endpoint ids of both directions, then the
        raw rows in the same order.  Uses the platform's native ``'l'``
        width — the blob travels between processes on one machine, not
        across architectures.
        """
        from_ids = sorted(self._from_rows)
        to_ids = sorted(self._to_rows)
        itemsize = array(TYPECODE).itemsize
        parts = [
            _HEADER.pack(
                _MAGIC,
                itemsize,
                self.num_vertices,
                self.max_hops,
                len(from_ids),
                len(to_ids),
                0,  # reserved
            ),
            array(TYPECODE, from_ids).tobytes(),
            array(TYPECODE, to_ids).tobytes(),
        ]
        for endpoint in from_ids:
            parts.append(self._from_rows[endpoint].tobytes())
        for endpoint in to_ids:
            parts.append(self._to_rows[endpoint].tobytes())
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob, copy: bool = True) -> "CSRDistanceIndex":
        """Reconstruct an index serialized by :meth:`to_bytes`.

        ``blob`` may be ``bytes`` or any buffer (e.g. a ``memoryview`` over
        a shared-memory segment).  With ``copy=False`` the distance rows
        become zero-copy ``memoryview`` casts straight into ``blob`` — the
        read path (``dense_from``/``dense_to``/``dist_*`` and the dict
        views) is identical, but the rows are only valid while the backing
        buffer stays mapped, and such an index must not be delta-repaired
        (``apply_delta`` would write through to the shared pages).  Workers
        attaching a batch-shipped index use this to skip the per-row copy.
        """
        magic, itemsize, num_vertices, max_hops, n_from, n_to, _ = (
            _HEADER.unpack_from(blob, 0)
        )
        require(magic == _MAGIC, "not a CSRDistanceIndex payload")
        require(
            itemsize == array(TYPECODE).itemsize,
            "CSRDistanceIndex payload was serialized with a different "
            f"array itemsize ({itemsize}) than this platform uses",
        )
        view = memoryview(blob)
        cursor = _HEADER.size

        def read_array(count: int) -> array:
            nonlocal cursor
            out = array(TYPECODE)
            nbytes = count * itemsize
            out.frombytes(view[cursor:cursor + nbytes])
            cursor += nbytes
            return out

        def read_row(count: int):
            if copy:
                return read_array(count)
            nonlocal cursor
            nbytes = count * itemsize
            row = view[cursor:cursor + nbytes].cast(TYPECODE)
            cursor += nbytes
            return row

        from_ids = list(read_array(n_from))
        to_ids = list(read_array(n_to))
        from_rows = {endpoint: read_row(num_vertices) for endpoint in from_ids}
        to_rows = {endpoint: read_row(num_vertices) for endpoint in to_ids}
        return cls(num_vertices, max_hops, from_rows, to_rows)

    def __repr__(self) -> str:
        return (
            f"CSRDistanceIndex(|V|={self.num_vertices}, "
            f"sources={len(self._from_rows)}, targets={len(self._to_rows)}, "
            f"max_hops={self.max_hops})"
        )


def _repair_row(
    row: array,
    succ: List[List[int]],
    pred: List[List[int]],
    added: Set[Tuple[int, int]],
    removed: Set[Tuple[int, int]],
    max_hops: int,
) -> None:
    """Repair one truncated single-source BFS row in place.

    ``succ``/``pred`` are the **post-mutation** adjacency lists in the row's
    search direction; edges in ``added`` are filtered out of phase 1 so the
    deletion repair runs against exactly ``G_old - removed`` (call it
    ``G_mid``), then phase 2 relaxes the added edges on the full new graph.

    Phase 1a walks candidate vertices in increasing *old* distance and marks
    a vertex affected when no surviving predecessor still supports its old
    level — supports sit one level lower, so their verdicts are final by the
    time a vertex is examined.  Phase 1b resets affected rows and reassigns
    exact truncated ``G_mid`` distances with a unit-weight Dijkstra seeded
    from the unaffected boundary.  Phase 2 is decrease-only relaxation from
    the added edges, which restores exact ``G_new`` distances because any
    improved shortest path must cross an added edge.
    """
    # -- Phase 1a: find vertices whose old distance lost all support ----- #
    heap = []
    for u, v in removed:
        old_v = row[v]
        old_u = row[u]
        if (
            old_v != UNREACHABLE
            and old_v != 0
            and old_u != UNREACHABLE
            and old_u + 1 == old_v
        ):
            heappush(heap, (old_v, v))
    affected: Set[int] = set()
    visited: Set[int] = set()
    while heap:
        d, x = heappop(heap)
        if x in visited:
            continue
        visited.add(x)
        supported = False
        for w in pred[x]:
            if (w, x) in added:
                continue
            old_w = row[w]
            if old_w != UNREACHABLE and old_w + 1 == d and w not in affected:
                supported = True
                break
        if supported:
            continue
        affected.add(x)
        for y in succ[x]:
            if (x, y) in added or y in visited:
                continue
            if row[y] == d + 1:
                heappush(heap, (d + 1, y))
    # -- Phase 1b: recompute the affected region against G_mid ----------- #
    if affected:
        for x in affected:
            row[x] = UNREACHABLE
        heap = []
        for x in affected:
            for w in pred[x]:
                if (w, x) in added:
                    continue
                old_w = row[w]
                # Affected rows were just reset, so a finite row[w] means
                # w is unaffected and already holds its exact G_mid value.
                if old_w != UNREACHABLE and old_w + 1 <= max_hops:
                    heappush(heap, (old_w + 1, x))
        while heap:
            d, x = heappop(heap)
            if row[x] != UNREACHABLE:
                continue
            row[x] = d
            if d + 1 > max_hops:
                continue
            for y in succ[x]:
                if (x, y) in added:
                    continue
                if y in affected and row[y] == UNREACHABLE:
                    heappush(heap, (d + 1, y))
    # -- Phase 2: decrease-only relaxation from the added edges ---------- #
    heap = []
    for u, v in added:
        old_u = row[u]
        if old_u == UNREACHABLE:
            continue
        candidate = old_u + 1
        if candidate <= max_hops and candidate < row[v]:
            row[v] = candidate
            heappush(heap, (candidate, v))
    while heap:
        d, x = heappop(heap)
        if d > row[x]:
            continue  # stale entry; x was improved further after the push
        candidate = d + 1
        if candidate > max_hops:
            continue
        for y in succ[x]:
            if candidate < row[y]:
                row[y] = candidate
                heappush(heap, (candidate, y))


@dataclass
class DistanceIndex:
    """Legacy dict-of-dicts index (reference implementation).

    Attributes
    ----------
    from_source:
        ``{s: {v: dist_G(s, v)}}`` for every indexed source ``s``.
    to_target:
        ``{t: {v: dist_G(v, t)}}`` for every indexed target ``t`` (built on
        ``Gr``).
    max_hops:
        The hop bound the BFS traversals were truncated at.

    Production code receives :class:`CSRDistanceIndex` from
    :func:`build_index`; this class remains as the differential-testing
    reference (built via :func:`build_dict_index`) and for hand-constructed
    fixtures.
    """

    from_source: Dict[int, Dict[int, int]] = field(default_factory=dict)
    to_target: Dict[int, Dict[int, int]] = field(default_factory=dict)
    max_hops: int = 0

    # ------------------------------------------------------------------ #
    # Lookups (missing entries are treated as infinity per the paper)
    # ------------------------------------------------------------------ #
    def dist_from(self, source: int, vertex: int) -> float:
        """``dist_G(source, vertex)`` or ``inf`` when unknown/unreachable."""
        distances = self.from_source.get(source)
        if distances is None:
            raise KeyError(f"source {source} is not indexed")
        return distances.get(vertex, INFINITY)

    def dist_to(self, target: int, vertex: int) -> float:
        """``dist_G(vertex, target)`` or ``inf`` when unknown/unreachable."""
        distances = self.to_target.get(target)
        if distances is None:
            raise KeyError(f"target {target} is not indexed")
        return distances.get(vertex, INFINITY)

    def has_source(self, source: int) -> bool:
        return source in self.from_source

    def has_target(self, target: int) -> bool:
        return target in self.to_target

    # ------------------------------------------------------------------ #
    # Hop-constrained neighbourhoods (Definition 4.4)
    # ------------------------------------------------------------------ #
    def forward_neighborhood(self, source: int, hops: int) -> FrozenSet[int]:
        """Γ — vertices reachable from ``source`` within ``hops`` hops."""
        distances = self.from_source.get(source)
        if distances is None:
            raise KeyError(f"source {source} is not indexed")
        return frozenset(v for v, d in distances.items() if d <= hops)

    def backward_neighborhood(self, target: int, hops: int) -> FrozenSet[int]:
        """Γr — vertices that can reach ``target`` within ``hops`` hops."""
        distances = self.to_target.get(target)
        if distances is None:
            raise KeyError(f"target {target} is not indexed")
        return frozenset(v for v, d in distances.items() if d <= hops)

    def forward_level_sizes(self, source: int, hops: int) -> list[int]:
        """Number of vertices at each exact distance 0..hops from ``source``.

        Used by the search-order optimiser to estimate the cost of giving
        the forward search a larger share of the hop budget.
        """
        sizes = [0] * (hops + 1)
        for distance in self.from_source.get(source, {}).values():
            if distance <= hops:
                sizes[distance] += 1
        return sizes

    def backward_level_sizes(self, target: int, hops: int) -> list[int]:
        """Number of vertices at each exact distance 0..hops to ``target``."""
        sizes = [0] * (hops + 1)
        for distance in self.to_target.get(target, {}).values():
            if distance <= hops:
                sizes[distance] += 1
        return sizes

    @property
    def size_in_entries(self) -> int:
        """Total number of (vertex, distance) entries stored."""
        total = sum(len(d) for d in self.from_source.values())
        total += sum(len(d) for d in self.to_target.values())
        return total


def densify_distances(distances: MappingABC, num_vertices: int) -> List[int]:
    """Spread a sparse ``{vertex: distance}`` map over a dense list.

    Holes take :data:`UNREACHABLE`, the same sentinel convention the CSR
    rows use, so the enumeration hot loops can run one direct-indexing code
    path whether the index is array-backed or a legacy dict fixture.
    """
    row = [UNREACHABLE] * num_vertices
    for vertex, distance in distances.items():
        row[vertex] = distance
    return row


def build_index(
    graph: DiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    max_hops: int,
) -> CSRDistanceIndex:
    """Build the batch distance index with two multi-source BFS traversals.

    ``sources`` are expanded forward on ``G``; ``targets`` backward on
    ``Gr``.  Distances are truncated at ``max_hops`` — Lemma 3.1 never needs
    larger values because any vertex further away cannot appear on a result
    path.  Returns the array-backed :class:`CSRDistanceIndex`.
    """
    require_positive(max_hops, "max_hops")
    source_list = sorted(set(sources))
    target_list = sorted(set(targets))
    require(bool(source_list), "at least one source is required")
    require(bool(target_list), "at least one target is required")
    from_source = multi_source_bfs(graph, source_list, max_hops=max_hops, forward=True)
    to_target = multi_source_bfs(graph, target_list, max_hops=max_hops, forward=False)
    return CSRDistanceIndex.from_distance_maps(
        graph.num_vertices, max_hops, from_source, to_target
    )


def build_dict_index(
    graph: DiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    max_hops: int,
) -> DistanceIndex:
    """Build the legacy dict-of-dicts :class:`DistanceIndex`.

    Same BFS traversals as :func:`build_index`; retained as the reference
    representation the differential test suite pins the array-backed index
    against.
    """
    require_positive(max_hops, "max_hops")
    source_list = sorted(set(sources))
    target_list = sorted(set(targets))
    require(bool(source_list), "at least one source is required")
    require(bool(target_list), "at least one target is required")
    from_source = multi_source_bfs(graph, source_list, max_hops=max_hops, forward=True)
    to_target = multi_source_bfs(graph, target_list, max_hops=max_hops, forward=False)
    return DistanceIndex(
        from_source=from_source, to_target=to_target, max_hops=max_hops
    )


def build_index_for_queries(
    graph: DiGraph, queries: Sequence[Tuple[int, int, int]]
) -> CSRDistanceIndex:
    """Convenience wrapper taking raw ``(s, t, k)`` triples."""
    require(bool(queries), "queries must be non-empty")
    sources = [s for s, _, _ in queries]
    targets = [t for _, t, _ in queries]
    max_hops = max(k for _, _, k in queries)
    return build_index(graph, sources, targets, max_hops)
