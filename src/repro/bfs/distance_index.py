"""The PathEnum-style distance index for a batch of queries.

For a batch ``Q`` the index stores, for every query source ``s``, the hop
distance ``dist_G(s, v)`` of every vertex reachable within the relevant hop
budget, and for every query target ``t`` the distance ``dist_G(v, t)``
(computed as a BFS from ``t`` on the reverse graph ``Gr``).  Lemma 3.1 of
the paper justifies pruning any vertex ``v`` from an enumeration whenever
``dist(s, v)`` or ``dist(v, t)`` exceeds the remaining hop budget.

The index is exactly the structure built in lines 1-2 of Algorithm 1 and
Algorithm 4 with multi-source BFS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Set, Tuple

from repro.bfs.multi_source import multi_source_bfs
from repro.graph.digraph import DiGraph
from repro.utils.validation import require, require_positive

INFINITY = math.inf


@dataclass
class DistanceIndex:
    """Distances from query sources (on ``G``) and to query targets.

    Attributes
    ----------
    from_source:
        ``{s: {v: dist_G(s, v)}}`` for every indexed source ``s``.
    to_target:
        ``{t: {v: dist_G(v, t)}}`` for every indexed target ``t`` (built on
        ``Gr``).
    max_hops:
        The hop bound the BFS traversals were truncated at.
    """

    from_source: Dict[int, Dict[int, int]] = field(default_factory=dict)
    to_target: Dict[int, Dict[int, int]] = field(default_factory=dict)
    max_hops: int = 0

    # ------------------------------------------------------------------ #
    # Lookups (missing entries are treated as infinity per the paper)
    # ------------------------------------------------------------------ #
    def dist_from(self, source: int, vertex: int) -> float:
        """``dist_G(source, vertex)`` or ``inf`` when unknown/unreachable."""
        distances = self.from_source.get(source)
        if distances is None:
            raise KeyError(f"source {source} is not indexed")
        return distances.get(vertex, INFINITY)

    def dist_to(self, target: int, vertex: int) -> float:
        """``dist_G(vertex, target)`` or ``inf`` when unknown/unreachable."""
        distances = self.to_target.get(target)
        if distances is None:
            raise KeyError(f"target {target} is not indexed")
        return distances.get(vertex, INFINITY)

    def has_source(self, source: int) -> bool:
        return source in self.from_source

    def has_target(self, target: int) -> bool:
        return target in self.to_target

    # ------------------------------------------------------------------ #
    # Hop-constrained neighbourhoods (Definition 4.4)
    # ------------------------------------------------------------------ #
    def forward_neighborhood(self, source: int, hops: int) -> FrozenSet[int]:
        """Γ — vertices reachable from ``source`` within ``hops`` hops."""
        distances = self.from_source.get(source)
        if distances is None:
            raise KeyError(f"source {source} is not indexed")
        return frozenset(v for v, d in distances.items() if d <= hops)

    def backward_neighborhood(self, target: int, hops: int) -> FrozenSet[int]:
        """Γr — vertices that can reach ``target`` within ``hops`` hops."""
        distances = self.to_target.get(target)
        if distances is None:
            raise KeyError(f"target {target} is not indexed")
        return frozenset(v for v, d in distances.items() if d <= hops)

    def forward_level_sizes(self, source: int, hops: int) -> list[int]:
        """Number of vertices at each exact distance 0..hops from ``source``.

        Used by the search-order optimiser to estimate the cost of giving
        the forward search a larger share of the hop budget.
        """
        sizes = [0] * (hops + 1)
        for distance in self.from_source.get(source, {}).values():
            if distance <= hops:
                sizes[distance] += 1
        return sizes

    def backward_level_sizes(self, target: int, hops: int) -> list[int]:
        """Number of vertices at each exact distance 0..hops to ``target``."""
        sizes = [0] * (hops + 1)
        for distance in self.to_target.get(target, {}).values():
            if distance <= hops:
                sizes[distance] += 1
        return sizes

    @property
    def size_in_entries(self) -> int:
        """Total number of (vertex, distance) entries stored."""
        total = sum(len(d) for d in self.from_source.values())
        total += sum(len(d) for d in self.to_target.values())
        return total


def build_index(
    graph: DiGraph,
    sources: Iterable[int],
    targets: Iterable[int],
    max_hops: int,
) -> DistanceIndex:
    """Build the batch distance index with two multi-source BFS traversals.

    ``sources`` are expanded forward on ``G``; ``targets`` backward on
    ``Gr``.  Distances are truncated at ``max_hops`` — Lemma 3.1 never needs
    larger values because any vertex further away cannot appear on a result
    path.
    """
    require_positive(max_hops, "max_hops")
    source_list = sorted(set(sources))
    target_list = sorted(set(targets))
    require(bool(source_list), "at least one source is required")
    require(bool(target_list), "at least one target is required")
    from_source = multi_source_bfs(graph, source_list, max_hops=max_hops, forward=True)
    to_target = multi_source_bfs(graph, target_list, max_hops=max_hops, forward=False)
    return DistanceIndex(
        from_source=from_source, to_target=to_target, max_hops=max_hops
    )


def build_index_for_queries(
    graph: DiGraph, queries: Sequence[Tuple[int, int, int]]
) -> DistanceIndex:
    """Convenience wrapper taking raw ``(s, t, k)`` triples."""
    require(bool(queries), "queries must be non-empty")
    sources = [s for s, _, _ in queries]
    targets = [t for _, t, _ in queries]
    max_hops = max(k for _, _, k in queries)
    return build_index(graph, sources, targets, max_hops)
