"""Bitset multi-source BFS (Then et al., "The More the Merrier", VLDB'14).

The batch index of Algorithm 1 / Algorithm 4 needs hop distances from every
query source on ``G`` and every query target on ``Gr``.  Running one BFS
per source repeats the same frontier expansion work; the multi-source BFS
runs all of them simultaneously by keeping, per vertex, a bitset of the
sources that have already reached it ("seen") and a bitset of the sources
reaching it in the current round ("frontier").  Python integers act as
arbitrarily wide bitsets, so a single ``|``/``&``/``~`` per vertex advances
all sources at once.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.graph.digraph import DiGraph
from repro.utils.validation import require_non_negative, require_vertex


def multi_source_bfs(
    graph: DiGraph,
    sources: Sequence[int],
    max_hops: int | None = None,
    forward: bool = True,
) -> Dict[int, Dict[int, int]]:
    """Hop distances from each source in ``sources``.

    Returns ``{source: {vertex: distance}}`` with the same convention as
    :func:`repro.bfs.single_source.bfs_distances` (missing = ∞).  Duplicate
    sources are computed once and share the same result dictionary object.
    """
    if max_hops is not None:
        require_non_negative(max_hops, "max_hops")
    unique_sources: List[int] = []
    seen_sources: set[int] = set()
    for source in sources:
        require_vertex(source, graph.num_vertices, "source")
        if source not in seen_sources:
            seen_sources.add(source)
            unique_sources.append(source)
    if not unique_sources:
        return {}

    neighbors = graph.out_neighbors if forward else graph.in_neighbors
    source_bit = {source: 1 << i for i, source in enumerate(unique_sources)}
    results: Dict[int, Dict[int, int]] = {
        source: {source: 0} for source in unique_sources
    }

    # seen[v] / frontier[v]: bitsets over source indices.
    seen: Dict[int, int] = {}
    frontier: Dict[int, int] = {}
    for source in unique_sources:
        bit = source_bit[source]
        seen[source] = seen.get(source, 0) | bit
        frontier[source] = frontier.get(source, 0) | bit

    depth = 0
    while frontier:
        depth += 1
        if max_hops is not None and depth > max_hops:
            break
        next_frontier: Dict[int, int] = {}
        for u, bits in frontier.items():
            for v in neighbors(u):
                new_bits = bits & ~seen.get(v, 0)
                if new_bits:
                    seen[v] = seen.get(v, 0) | new_bits
                    next_frontier[v] = next_frontier.get(v, 0) | new_bits
        for v, bits in next_frontier.items():
            remaining = bits
            while remaining:
                lowest = remaining & -remaining
                results[unique_sources[lowest.bit_length() - 1]][v] = depth
                remaining ^= lowest
        frontier = next_frontier

    return results
