"""Breadth-first search substrate and the PathEnum-style distance index."""

from repro.bfs.single_source import bfs_distances, bfs_levels
from repro.bfs.multi_source import multi_source_bfs
from repro.bfs.distance_index import DistanceIndex, build_index

__all__ = [
    "bfs_distances",
    "bfs_levels",
    "multi_source_bfs",
    "DistanceIndex",
    "build_index",
]
