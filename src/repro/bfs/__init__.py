"""Breadth-first search substrate and the PathEnum-style distance index."""

from repro.bfs.single_source import bfs_distances, bfs_levels
from repro.bfs.multi_source import multi_source_bfs
from repro.bfs.distance_index import (
    CSRDistanceIndex,
    DistanceIndex,
    UNREACHABLE,
    build_dict_index,
    build_index,
)

__all__ = [
    "bfs_distances",
    "bfs_levels",
    "multi_source_bfs",
    "CSRDistanceIndex",
    "DistanceIndex",
    "UNREACHABLE",
    "build_dict_index",
    "build_index",
]
