"""Adapted OnePass baseline (k-shortest paths with limited overlap,
Chondrogiannis et al.).

OnePass performs a single best-first sweep that expands partial paths in
order of their current length, checking the overlap constraint on the fly.
Adapted to HC-s-t path enumeration per the paper's recipe: the overlap
constraint is ignored and complete s-t paths are emitted in non-decreasing
hop order until the hop constraint is reached.  The sweep has no
distance-to-target pruning — partial paths are abandoned only when they
exceed the hop budget — which is precisely the inefficiency Exp-6
highlights.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from repro.batch.results import (
    BatchResult,
    FragmentStream,
    drain,
    per_query_fragments,
)
from repro.enumeration.paths import Path
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery
from repro.utils.validation import require, require_vertex


def enumerate_paths_onepass(graph: DiGraph, s: int, t: int, k: int) -> List[Path]:
    """All HC-s-t simple paths via a best-first sweep over partial paths."""
    require_vertex(s, graph.num_vertices, "s")
    require_vertex(t, graph.num_vertices, "t")
    require(s != t, "source and target must differ")

    results: List[Path] = []
    # Priority queue of partial simple paths ordered by hop count (then by
    # the path tuple for determinism).
    heap: List[Tuple[int, Path]] = [(0, (s,))]
    while heap:
        hops, partial = heapq.heappop(heap)
        if hops > k:
            break
        tail = partial[-1]
        if tail == t:
            results.append(partial)
            continue
        if hops == k:
            continue
        for neighbor in graph.out_neighbors(tail):
            if neighbor in partial:
                continue
            heapq.heappush(heap, (hops + 1, partial + (neighbor,)))
    return results


def run_onepass_baseline(graph: DiGraph, queries: Sequence[HCSTQuery]) -> BatchResult:
    """Process a batch with the adapted OnePass baseline (independently per query)."""
    return drain(iter_onepass_baseline(graph, queries))


def iter_onepass_baseline(
    graph: DiGraph, queries: Sequence[HCSTQuery]
) -> FragmentStream:
    """Fragment generator: one ``{position: paths}`` yield per query."""
    return per_query_fragments(
        queries,
        lambda query: enumerate_paths_onepass(graph, query.s, query.t, query.k),
        "OnePass",
    )
