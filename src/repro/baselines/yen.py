"""Yen-style k-shortest simple path machinery.

Hop-count shortest paths with vertex/edge exclusions and the classic Yen
deviation loop.  These are the substrate for the adapted ``DkSP`` baseline:
route-planning algorithms generate paths in non-decreasing length order, so
adapting them to HC-s-t enumeration means "keep asking for the next
shortest simple path until it exceeds the hop constraint".
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.enumeration.paths import Path
from repro.graph.digraph import DiGraph
from repro.utils.validation import require, require_vertex


def shortest_path_hops(
    graph: DiGraph,
    s: int,
    t: int,
    banned_vertices: FrozenSet[int] = frozenset(),
    banned_edges: FrozenSet[Tuple[int, int]] = frozenset(),
) -> Optional[Path]:
    """Hop-count shortest simple path from ``s`` to ``t`` avoiding the
    banned vertices/edges, or ``None`` when no such path exists.

    BFS with parent pointers; ``s`` may not be banned (``t`` may — then the
    answer is ``None``).
    """
    require_vertex(s, graph.num_vertices, "s")
    require_vertex(t, graph.num_vertices, "t")
    if t in banned_vertices:
        return None
    parents: Dict[int, int] = {s: -1}
    queue = deque([s])
    while queue:
        u = queue.popleft()
        if u == t:
            break
        for v in graph.out_neighbors(u):
            if v in parents or v in banned_vertices or (u, v) in banned_edges:
                continue
            parents[v] = u
            queue.append(v)
    if t not in parents:
        return None
    path: List[int] = [t]
    while path[-1] != s:
        path.append(parents[path[-1]])
    return tuple(reversed(path))


def yen_k_shortest_paths(
    graph: DiGraph,
    s: int,
    t: int,
    max_hops: Optional[int] = None,
    limit: Optional[int] = None,
) -> Iterator[Path]:
    """Generate simple s-t paths in non-decreasing hop order (Yen, 1971).

    Generation stops when the next path would exceed ``max_hops`` hops or
    when ``limit`` paths have been produced; with both ``None`` it runs
    until the path space is exhausted.
    """
    require(s != t, "source and target must differ")
    first = shortest_path_hops(graph, s, t)
    if first is None:
        return
    if max_hops is not None and len(first) - 1 > max_hops:
        return

    produced: List[Path] = [first]
    yield first
    if limit is not None and len(produced) >= limit:
        return

    # Candidate heap entries: (hops, path) — the tie-break on the path tuple
    # keeps the generation deterministic.
    candidates: List[Tuple[int, Path]] = []
    seen_candidates: Set[Path] = {first}

    while True:
        previous = produced[-1]
        # Deviate from every prefix of the previously produced path.
        for spur_index in range(len(previous) - 1):
            spur_vertex = previous[spur_index]
            root = previous[: spur_index + 1]
            banned_edges: Set[Tuple[int, int]] = set()
            for existing in produced:
                if existing[: spur_index + 1] == root and len(existing) > spur_index + 1:
                    banned_edges.add((existing[spur_index], existing[spur_index + 1]))
            banned_vertices = frozenset(root[:-1])
            spur = shortest_path_hops(
                graph,
                spur_vertex,
                t,
                banned_vertices=banned_vertices,
                banned_edges=frozenset(banned_edges),
            )
            if spur is None:
                continue
            candidate = root[:-1] + spur
            if candidate in seen_candidates:
                continue
            seen_candidates.add(candidate)
            heapq.heappush(candidates, (len(candidate) - 1, candidate))

        if not candidates:
            return
        hops, best = heapq.heappop(candidates)
        if max_hops is not None and hops > max_hops:
            return
        produced.append(best)
        yield best
        if limit is not None and len(produced) >= limit:
            return
