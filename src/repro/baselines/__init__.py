"""Adapted k-shortest-path baselines (Exp-6 competitors).

The paper compares against two route-planning algorithms adapted to HC-s-t
path enumeration by dropping their diversity/overlap constraints and
letting them generate paths until the hop constraint is exceeded:

* ``DkSP`` [Luo et al., VLDB'22] — implemented here as Yen-style deviation
  enumeration of simple paths in non-decreasing hop order.
* ``OnePass`` [Chondrogiannis et al., VLDBJ'20] — implemented here as a
  single best-first sweep over partial simple paths ordered by hop count.

Neither uses the HC-s-t specific index pruning, which is why the paper (and
this reproduction) finds them orders of magnitude slower.
"""

from repro.baselines.yen import shortest_path_hops, yen_k_shortest_paths
from repro.baselines.dksp import enumerate_paths_dksp, run_dksp_baseline
from repro.baselines.onepass import enumerate_paths_onepass, run_onepass_baseline

__all__ = [
    "shortest_path_hops",
    "yen_k_shortest_paths",
    "enumerate_paths_dksp",
    "run_dksp_baseline",
    "enumerate_paths_onepass",
    "run_onepass_baseline",
]
