"""Adapted DkSP baseline (diversified top-k route planning, Luo et al.).

Following the paper's adaptation recipe (Section V, "Algorithms"): the
diversity/similarity constraint is dropped and the algorithm simply keeps
producing the next shortest simple path until the hop constraint is
exceeded, which for unweighted graphs is exactly Yen-style deviation
enumeration in non-decreasing hop order.  Every produced path requires a
fresh constrained shortest-path computation per deviation prefix, which is
why this baseline is dramatically slower than index-pruned enumeration.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.yen import yen_k_shortest_paths
from repro.batch.results import (
    BatchResult,
    FragmentStream,
    drain,
    per_query_fragments,
)
from repro.enumeration.paths import Path
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery


def enumerate_paths_dksp(graph: DiGraph, s: int, t: int, k: int) -> List[Path]:
    """All HC-s-t simple paths produced by the adapted DkSP procedure."""
    return list(yen_k_shortest_paths(graph, s, t, max_hops=k))


def run_dksp_baseline(graph: DiGraph, queries: Sequence[HCSTQuery]) -> BatchResult:
    """Process a batch with the adapted DkSP baseline (independently per query)."""
    return drain(iter_dksp_baseline(graph, queries))


def iter_dksp_baseline(
    graph: DiGraph, queries: Sequence[HCSTQuery]
) -> FragmentStream:
    """Fragment generator: one ``{position: paths}`` yield per query."""
    return per_query_fragments(
        queries,
        lambda query: enumerate_paths_dksp(graph, query.s, query.t, query.k),
        "DkSP",
    )
