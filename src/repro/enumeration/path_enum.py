"""PathEnum — index-based bidirectional HC-s-t path enumeration.

Re-implementation of the single-query state of the art [Sun et al.,
SIGMOD'21] as described in Section III of the batch paper:

1. Build a light-weight index holding ``dist_G(s, v)`` and ``dist_G(v, t)``
   for every vertex within the hop constraint (two hop-bounded BFS
   traversals, or a shared batch index when processing a batch).
2. Run a *forward* search from ``s`` on ``G`` with hop budget ``⌈k/2⌉`` and
   a *backward* search from ``t`` on ``Gr`` with hop budget ``⌊k/2⌋``.
   Lemma 3.1 prunes every neighbour that cannot reach the other endpoint
   within the remaining budget.
3. Concatenate the two partial-path sets with the ``⊕`` hash join and keep
   the simple concatenations.

The class can operate standalone (it builds its own per-query index) or on
top of a shared :class:`~repro.bfs.distance_index.DistanceIndex`, which is
how :class:`~repro.batch.basic_enum.BasicEnum` uses it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bfs.distance_index import (
    CSRDistanceIndex,
    DistanceIndex,
    build_index,
    densify_distances,
)
from repro.enumeration.join import PathJoinPolicy, join_path_sets
from repro.enumeration.kernels import resolve_kernel, search_paths
from repro.enumeration.paths import Path
from repro.enumeration.search_order import choose_budget_split
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery
from repro.utils.validation import require_vertex


class PathEnum:
    """Single-query HC-s-t path enumerator.

    Parameters
    ----------
    graph:
        The directed graph.
    index:
        Optional pre-built (batch) distance index covering the query's
        source and target; when omitted a per-query index is built on
        demand, which is what the standalone PathEnum baseline does.
    optimize_search_order:
        Enable the "+" search-order optimisation (adaptive forward/backward
        budget split).
    kernel:
        ``"python"`` (default) runs the explicit-stack loop; ``"numpy"``
        runs the byte-identical vectorized frontier expansion of
        :mod:`repro.enumeration.kernels` (raises here when numpy is
        absent).  ``"auto"`` resolves to ``"python"`` at this level — the
        cost-aware auto selection lives in the query planner, which
        constructs enumerators with the concrete kernel it picked.
    """

    def __init__(
        self,
        graph: DiGraph,
        index: Optional[DistanceIndex] = None,
        optimize_search_order: bool = False,
        kernel: str = "python",
    ) -> None:
        self.graph = graph
        self.index = index
        self.optimize_search_order = optimize_search_order
        self.kernel = resolve_kernel(kernel)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def enumerate(self, query: HCSTQuery) -> List[Path]:
        """Enumerate all HC-s-t simple paths of ``query``."""
        require_vertex(query.s, self.graph.num_vertices, "query source")
        require_vertex(query.t, self.graph.num_vertices, "query target")
        index = self._index_for(query)
        if index.dist_from(query.s, query.t) > query.k:
            return []

        if self.optimize_search_order:
            forward_budget, backward_budget = choose_budget_split(query, index)
        else:
            forward_budget, backward_budget = (
                query.forward_budget,
                query.backward_budget,
            )
        policy = PathJoinPolicy(
            forward_budget=forward_budget, backward_budget=backward_budget
        )

        forward_paths = self._search(
            query, index, forward=True, budget=forward_budget
        )
        backward_paths = self._search(
            query, index, forward=False, budget=backward_budget
        )
        return join_path_sets(forward_paths, backward_paths, query.t, policy)

    def count(self, query: HCSTQuery) -> int:
        """Number of HC-s-t simple paths of ``query``."""
        return len(self.enumerate(query))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _index_for(self, query: HCSTQuery) -> DistanceIndex:
        """Return an index covering the query, building one if necessary."""
        index = self.index
        if (
            index is not None
            and index.has_source(query.s)
            and index.has_target(query.t)
            and index.max_hops >= query.k
        ):
            return index
        return build_index(self.graph, [query.s], [query.t], query.k)

    def _search(
        self,
        query: HCSTQuery,
        index: DistanceIndex,
        forward: bool,
        budget: int,
    ) -> List[Path]:
        """Collect the partial paths of one direction.

        Forward direction: paths from ``s`` on ``G``; a path is collected
        when it either reaches ``t`` (complete result candidate) or has
        length exactly ``budget`` (join candidate).  Backward direction:
        paths from ``t`` on ``Gr`` of length 1..budget (join candidates).
        Pruning follows Lemma 3.1 — a neighbour is only explored when the
        hops already used plus its distance to the *other* endpoint still
        fit within ``k``.

        The search walks flat CSR adjacency with an explicit iterator
        stack, so arbitrarily large hop budgets never touch Python's
        recursion limit and the hot loop avoids per-step ``DiGraph`` method
        dispatch.  Lemma 3.1 distances come from a dense row indexed
        directly by vertex id (``UNREACHABLE`` holes are astronomically
        larger than any hop budget, so the admissibility check needs no
        branch); a legacy dict index is densified once per search so both
        representations share this loop.
        """
        k = query.k
        if forward:
            start, other_end = query.s, query.t
        else:
            start, other_end = query.t, query.s
        if isinstance(index, CSRDistanceIndex):
            row = index.dense_to(query.t) if forward else index.dense_from(query.s)
        else:
            row = densify_distances(
                index.to_target[query.t] if forward else index.from_source[query.s],
                self.graph.num_vertices,
            )

        if self.kernel == "numpy":
            offsets, targets = self.graph.csr_snapshot().flat(forward)
            return search_paths(
                offsets, targets, row, start, other_end, k, budget, forward
            )
        adjacency = self.graph.csr_snapshot().adjacency_lists(forward)

        collected: List[Path] = []
        if forward and start == other_end:  # guarded by HCSTQuery, defensive
            return collected

        prefix: List[int] = [start]
        on_path = {start}
        # iter_stack[d] iterates the unexplored neighbours of prefix[d]; a
        # frame is only pushed when the prefix may still be extended
        # (budget left and not sitting on the other endpoint).
        iter_stack = [iter(adjacency[start])] if budget > 0 else []

        while iter_stack:
            used = len(prefix) - 1
            frame = iter_stack[-1]
            for neighbor in frame:
                if neighbor in on_path:
                    continue
                if used + 1 + row[neighbor] > k:
                    continue
                prefix.append(neighbor)
                on_path.add(neighbor)
                length = used + 1
                if forward:
                    if neighbor == other_end or length == budget:
                        collected.append(tuple(prefix))
                else:
                    collected.append(tuple(prefix))
                if length < budget and neighbor != other_end:
                    iter_stack.append(iter(adjacency[neighbor]))
                else:
                    # Leaf: either out of budget or a simple s-t path never
                    # revisits the other endpoint, so backtrack in place.
                    prefix.pop()
                    on_path.remove(neighbor)
                break
            else:
                iter_stack.pop()
                on_path.remove(prefix.pop())
        return collected


def enumerate_paths(
    graph: DiGraph,
    s: int,
    t: int,
    k: int,
    optimize_search_order: bool = False,
) -> List[Path]:
    """Convenience wrapper: enumerate the HC-s-t simple paths of one query."""
    enumerator = PathEnum(graph, optimize_search_order=optimize_search_order)
    return enumerator.enumerate(HCSTQuery(s=s, t=t, k=k))
