"""Path concatenation ``⊕`` (Definition 3.1) with duplicate-free splitting.

The bidirectional algorithms obtain every HC-s-t path by concatenating a
*forward* path (from ``s`` on ``G``) with a *backward* path (from ``t`` on
``Gr``).  Joining the full cross product of both sets would report a path of
length ``L`` once for every admissible split point, so this module enforces
a deterministic split rule:

* a path of length ``L <= forward_budget`` is produced only as a forward
  path that already ends at ``t`` joined with the trivial backward path
  ``(t,)``;
* a path of length ``L > forward_budget`` is produced only by joining the
  forward prefix of length exactly ``forward_budget`` with the backward
  suffix of length ``L - forward_budget``.

Under this rule each HC-s-t simple path is emitted exactly once, which the
property tests verify against the brute-force enumerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.enumeration.paths import Path, is_simple


@dataclass(frozen=True)
class PathJoinPolicy:
    """Parameters governing one bidirectional join.

    Attributes
    ----------
    forward_budget:
        Hop budget given to the forward search (``⌈k/2⌉`` by default, but
        the "+" variants may choose another split).
    backward_budget:
        Hop budget of the backward search; ``forward_budget +
        backward_budget`` must equal the query's hop constraint ``k``.
    """

    forward_budget: int
    backward_budget: int

    @property
    def hop_constraint(self) -> int:
        return self.forward_budget + self.backward_budget


def join_path_sets(
    forward_paths: Iterable[Sequence[int]],
    backward_paths: Iterable[Sequence[int]],
    target: int,
    policy: PathJoinPolicy,
) -> List[Path]:
    """Join forward and backward path sets into complete simple paths.

    ``forward_paths`` start at the query source on ``G``; ``backward_paths``
    start at the query ``target`` on ``Gr`` (so their *last* vertex is the
    junction when re-oriented onto ``G``).  Only simple concatenations are
    returned.
    """
    results: List[Path] = []
    forward_budget = policy.forward_budget
    backward_budget = policy.backward_budget

    # Bucket backward paths by junction vertex (their last vertex on Gr).
    suffix_by_junction: Dict[int, List[Path]] = {}
    for backward in backward_paths:
        length = len(backward) - 1
        if length < 1 or length > backward_budget:
            continue
        junction = backward[-1]
        # Re-orient onto G: (t, x1, ..., junction) becomes (junction, ..., t).
        suffix = tuple(reversed(tuple(backward)))
        suffix_by_junction.setdefault(junction, []).append(suffix)

    seen: set[Path] = set()
    for forward in forward_paths:
        forward = tuple(forward)
        length = len(forward) - 1
        if length > forward_budget:
            continue
        # Case 1: the forward path already reaches t.
        if forward[-1] == target:
            if forward not in seen and is_simple(forward) and length >= 1:
                seen.add(forward)
                results.append(forward)
            continue
        # Case 2: forward prefix of length exactly forward_budget.
        if length != forward_budget:
            continue
        junction = forward[-1]
        for suffix in suffix_by_junction.get(junction, ()):  # suffix[0] == junction
            combined = forward + suffix[1:]
            if combined[-1] != target:
                continue
            if not is_simple(combined):
                continue
            if combined not in seen:
                seen.add(combined)
                results.append(combined)
    return results
