"""Reference brute-force HC-s-t simple path enumeration.

A plain recursive DFS with no index and no pruning beyond the hop budget.
It is the ground truth every other enumerator is tested against, and it
plays the role of the unoptimised enumeration cost in the Fig. 3(c)
materialisation experiment.
"""

from __future__ import annotations

from typing import List

from repro.enumeration.paths import Path
from repro.graph.digraph import DiGraph
from repro.utils.validation import require, require_non_negative, require_vertex


def enumerate_paths_brute_force(
    graph: DiGraph, s: int, t: int, k: int
) -> List[Path]:
    """All simple paths from ``s`` to ``t`` with at most ``k`` hops."""
    require_vertex(s, graph.num_vertices, "s")
    require_vertex(t, graph.num_vertices, "t")
    require_non_negative(k, "k")
    require(s != t, "source and target must differ")

    results: List[Path] = []
    prefix: List[int] = [s]
    on_path = {s}

    def extend(vertex: int, remaining: int) -> None:
        if vertex == t:
            results.append(tuple(prefix))
            return
        if remaining == 0:
            return
        for neighbor in graph.out_neighbors(vertex):
            if neighbor in on_path:
                continue
            prefix.append(neighbor)
            on_path.add(neighbor)
            extend(neighbor, remaining - 1)
            prefix.pop()
            on_path.remove(neighbor)

    extend(s, k)
    return results


def count_paths_brute_force(graph: DiGraph, s: int, t: int, k: int) -> int:
    """Number of HC-s-t simple paths (without materialising them as tuples)."""
    require_vertex(s, graph.num_vertices, "s")
    require_vertex(t, graph.num_vertices, "t")
    require_non_negative(k, "k")
    require(s != t, "source and target must differ")

    on_path = {s}

    def count_from(vertex: int, remaining: int) -> int:
        if vertex == t:
            return 1
        if remaining == 0:
            return 0
        total = 0
        for neighbor in graph.out_neighbors(vertex):
            if neighbor in on_path:
                continue
            on_path.add(neighbor)
            total += count_from(neighbor, remaining - 1)
            on_path.remove(neighbor)
        return total

    return count_from(s, k)
