"""Search-order optimisation for the "+" algorithm variants.

PathEnum's optimised variant chooses how to divide the hop budget between
the forward search on ``G`` and the backward search on ``Gr`` based on an
estimate of how much work each side will do; the paper's ``BasicEnum+`` and
``BatchEnum+`` inherit this optimisation (Section V, "Algorithms").

The estimator uses the per-level frontier sizes available from the distance
index: giving one more hop to the side whose frontier grows more slowly
reduces the number of partial paths that have to be materialised before the
join.  Any split is *correct* (the join policy adapts), so this module only
affects performance.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.bfs.distance_index import DistanceIndex
from repro.queries.query import HCSTQuery


def estimate_side_cost(level_sizes: Iterable[int]) -> float:
    """Rough cost of enumerating all prefixes down to the deepest level.

    Models the partial-path count as the running product of average
    branching per level, which over-penalises explosive frontiers — exactly
    the behaviour we want when deciding which side should receive the extra
    hop of an odd budget.
    """
    sizes = [size for size in level_sizes]
    if not sizes:
        return 0.0
    cost = 0.0
    partial_paths = 1.0
    for depth in range(1, len(sizes)):
        previous = max(sizes[depth - 1], 1)
        branching = sizes[depth] / previous if previous else 0.0
        partial_paths *= max(branching, 1.0)
        cost += partial_paths + sizes[depth]
    return cost


def choose_budget_split(
    query: HCSTQuery, index: DistanceIndex
) -> Tuple[int, int]:
    """Choose ``(forward_budget, backward_budget)`` for ``query``.

    Candidates are the balanced split and its two neighbours; the pair with
    the lowest combined estimated cost wins.  Ties fall back to the paper's
    default ``(⌈k/2⌉, ⌊k/2⌋)``.
    """
    k = query.k
    default_forward = query.forward_budget
    candidates = sorted(
        {
            default_forward,
            max(1, default_forward - 1),
            min(k - 1, default_forward + 1) if k > 1 else default_forward,
        }
    )
    best_split = (default_forward, k - default_forward)
    best_cost = float("inf")
    for forward_budget in candidates:
        backward_budget = k - forward_budget
        forward_cost = estimate_side_cost(
            index.forward_level_sizes(query.s, forward_budget)
        )
        backward_cost = estimate_side_cost(
            index.backward_level_sizes(query.t, backward_budget)
        )
        total = forward_cost + backward_cost
        if total < best_cost - 1e-12:
            best_cost = total
            best_split = (forward_budget, backward_budget)
    return best_split
