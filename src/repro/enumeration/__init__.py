"""Single-query HC-s-t path enumeration algorithms.

* :mod:`repro.enumeration.brute_force` — reference DFS enumerator used by
  tests and by the Fig. 3(c) materialisation experiment.
* :mod:`repro.enumeration.path_enum` — PathEnum [Sun et al., SIGMOD'21], the
  state-of-the-art single-query algorithm the batch approach builds on.
* :mod:`repro.enumeration.dfs_baseline` — a pruning-based DFS in the style
  of the earlier literature [11], [12], [14].
"""

from repro.enumeration.paths import (
    Path,
    is_simple,
    concatenate,
    validate_path,
)
from repro.enumeration.join import join_path_sets, PathJoinPolicy
from repro.enumeration.brute_force import enumerate_paths_brute_force
from repro.enumeration.dfs_baseline import enumerate_paths_pruned_dfs
from repro.enumeration.path_enum import PathEnum, enumerate_paths
from repro.enumeration.search_order import choose_budget_split

__all__ = [
    "Path",
    "is_simple",
    "concatenate",
    "validate_path",
    "join_path_sets",
    "PathJoinPolicy",
    "enumerate_paths_brute_force",
    "enumerate_paths_pruned_dfs",
    "PathEnum",
    "enumerate_paths",
    "choose_budget_split",
]
