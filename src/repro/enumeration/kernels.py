"""Vectorized frontier-expansion kernels for the two enumeration hot loops.

The explicit-stack searches in :meth:`repro.enumeration.path_enum.PathEnum._search`
and :meth:`repro.batch.batch_enum.BatchEnum._enumerate_node` spend their time
in Python bytecode dispatch, one vertex at a time.  This module re-expresses
both as *level-synchronous* numpy frontier expansions over the flat CSR
arrays: every partial path of the same length is extended in one shot —
neighbour gather, simple-path check, Lemma 3.1 pruning and record selection
are all array operations.

Byte-identity
-------------
Both kernels return *exactly* the list the explicit-stack implementation
produces, pinned by the differential suite in ``tests/test_kernels.py``.
The argument: the DFS iterates each adjacency row in strictly ascending
vertex order (a ``CSRGraph`` packing invariant), so its preorder emission
sequence *is* the lexicographic order of the emitted vertex tuples — a
prefix sorts before its extensions, and siblings sort by the ascending
neighbour id.  A level-synchronous expansion that collects the same set of
records and sorts the tuples once at the end therefore reproduces the DFS
output verbatim, provider splices included (a provider's cached list is
itself lexicographic by induction over the sharing graph's topological
order, and every spliced path shares the prefix that triggered the splice).

numpy is an optional dependency (the ``[kernels]`` extra): when it is not
importable every request for the ``"numpy"`` kernel raises at construction
time and ``"auto"`` resolves to ``"python"`` — the pure-Python loops remain
the default substrate and the only one exercised without the extra.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.bfs.distance_index import UNREACHABLE
from repro.enumeration.paths import Path

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Whether the numpy substrate is importable in this process.
NUMPY_AVAILABLE = _np is not None

#: Kernel names accepted by the engine/planner surface.
KERNELS = ("auto", "python", "numpy")

#: ``"auto"`` only routes a shard to the numpy kernel when its estimated
#: enumeration cost clears this many cost units: below it the per-level
#: array bookkeeping costs more than the bytecode it replaces (tiny
#: frontiers), and the pure-Python loop is also the battle-tested default
#: the rest of the suite runs on.
AUTO_MIN_COST_UNITS = 512.0

#: Admissibility sentinel for vertices no served query can reach — must
#: dominate every ``budget`` while staying far from int64 overflow when a
#: slack constant is added.
_INT_INF = 2 ** 60


def validate_kernel(kernel: str) -> str:
    """Eagerly validate a kernel request (engine/enumerator constructors).

    ``"numpy"`` is refused outright when numpy is absent so the failure
    surfaces at construction, not deep inside a worker process.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    if kernel == "numpy" and not NUMPY_AVAILABLE:
        raise ValueError(
            "kernel='numpy' requested but numpy is not importable; "
            "install the [kernels] extra or use kernel='auto'/'python'"
        )
    return kernel


def resolve_kernel(kernel: str, estimated_cost_units: float | None = None) -> str:
    """Resolve a kernel request to the concrete ``"python"``/``"numpy"``.

    ``"auto"`` picks numpy only when it is importable *and* the caller
    supplies an estimated enumeration cost above :data:`AUTO_MIN_COST_UNITS`
    — unplanned (cost-blind) paths deliberately stay on the pure-Python
    loop, so ``auto`` never changes behaviour unless a plan predicted the
    shard is heavy enough to win.
    """
    validate_kernel(kernel)
    if kernel != "auto":
        return kernel
    if (
        NUMPY_AVAILABLE
        and estimated_cost_units is not None
        and estimated_cost_units >= AUTO_MIN_COST_UNITS
    ):
        return "numpy"
    return "python"


def _as_int64(buffer) -> "_np.ndarray":
    """View/convert a flat CSR or distance buffer as an int64 ndarray.

    ``array('l')`` and shared-memory ``memoryview`` rows expose the buffer
    protocol, so this is zero-copy for both; densified legacy rows arrive
    as plain lists and are converted once per search.
    """
    return _np.asarray(buffer, dtype=_np.int64)


def _gather_neighbors(offsets, targets, frontier):
    """One CSR gather: all neighbours of every frontier path's last vertex.

    Returns ``(rep, nbrs)`` where ``nbrs[i]`` extends frontier row
    ``rep[i]``; pairs are ordered by (frontier row, ascending neighbour) —
    the DFS visit order.  Only 1-D arrays are materialised here: the 2-D
    prefix matrix is deliberately *not* built until after admissibility
    pruning, which is where the kernel's speed comes from (the prune
    typically discards the vast majority of candidate rows, so copying
    every prefix first would dominate the level).
    """
    verts = frontier[:, -1]
    starts = offsets[verts]
    counts = offsets[verts + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return None, None
    prev = _np.cumsum(counts) - counts
    idx = _np.arange(total) + _np.repeat(starts - prev, counts)
    rep = _np.repeat(_np.arange(frontier.shape[0]), counts)
    return rep, targets[idx]


def _not_on_path(frontier, rep, nbrs):
    """Mask of candidates whose neighbour is not already on their path.

    Column-wise membership test against the frontier matrix: ``L`` 1-D
    gathers instead of materialising a ``rows x L`` comparison matrix.
    Call it *after* the distance prune so ``rows`` is already small.
    """
    on = _np.zeros(nbrs.shape[0], dtype=bool)
    for col in range(frontier.shape[1]):
        on |= frontier[rep, col] == nbrs
    return ~on


def _tuples(matrix) -> List[Path]:
    """Rows of an int64 path matrix as tuples of Python ints."""
    return [tuple(row) for row in matrix.tolist()]


def search_paths(
    offsets,
    targets,
    row,
    start: int,
    other_end: int,
    k: int,
    budget: int,
    forward: bool,
) -> List[Path]:
    """numpy twin of :meth:`PathEnum._search` over flat CSR arrays.

    ``row`` is the dense Lemma 3.1 distance row toward the *other*
    endpoint (``dist(v, t)`` forward / ``dist(s, v)`` backward);
    ``UNREACHABLE`` holes prune naturally because they dwarf any budget.
    """
    collected: List[Path] = []
    if budget <= 0:
        return collected
    if forward and start == other_end:  # guarded by HCSTQuery, defensive
        return collected
    offs = _as_int64(offsets)
    tgts = _as_int64(targets)
    dist = _as_int64(row)

    frontier = _np.array([[start]], dtype=_np.int64)
    for used in range(budget):
        rep, nbrs = _gather_neighbors(offs, tgts, frontier)
        if rep is None:
            break
        # Lemma 3.1 first (one gather over every candidate), simple-path
        # check second (per surviving candidate only), prefix copies last.
        cand = _np.nonzero(dist[nbrs] <= k - used - 1)[0]
        sub_rep, sub_nbrs = rep[cand], nbrs[cand]
        ok = _not_on_path(frontier, sub_rep, sub_nbrs)
        keep_rep, keep_nbrs = sub_rep[ok], sub_nbrs[ok]
        extended = _np.concatenate(
            [frontier[keep_rep], keep_nbrs[:, None]], axis=1
        )
        length = used + 1
        lasts = extended[:, -1]
        if forward:
            recorded = extended[(lasts == other_end) | (length == budget)]
        else:
            recorded = extended
        if recorded.shape[0]:
            collected.extend(_tuples(recorded))
        if length >= budget:
            break
        # A simple s-t path never revisits the other endpoint: paths that
        # just reached it are leaves in both directions.
        frontier = extended[lasts != other_end]
        if frontier.shape[0] == 0:
            break
    collected.sort()
    return collected


def enumerate_node_paths(
    offsets,
    targets,
    root: int,
    budget: int,
    distance_rows: Sequence[Tuple[Sequence[int], int]],
    served_endpoints,
    keep_all: bool,
    forward: bool,
    providers: Mapping[int, Tuple[int, Callable[[], Sequence[Path]]]],
) -> List[Path]:
    """numpy twin of :meth:`BatchEnum._enumerate_node`.

    ``providers`` maps a provider root vertex to ``(provider_budget,
    fetch)`` where ``fetch()`` returns the provider's cached paths —
    a callable (not a prefetched list) so the result cache observes one
    ``get`` per splice, exactly like the explicit-stack loop, keeping the
    sharing statistics identical too.
    """
    offs = _as_int64(offsets)
    tgts = _as_int64(targets)
    rows = [(_as_int64(row), constant) for row, constant in distance_rows]
    served_set = set(served_endpoints)
    served_arr = _np.fromiter(served_set, dtype=_np.int64, count=len(served_set))

    def record_ok(path_last: int, length: int) -> bool:
        if keep_all:
            return True
        if forward:
            return length == budget or path_last in served_set
        return True

    results: List[Path] = []
    if record_ok(root, 0):
        results.append((root,))
    if budget == 0:
        return results

    frontier = _np.array([[root]], dtype=_np.int64)
    for used in range(budget):
        remaining = budget - used
        rep, nbrs = _gather_neighbors(offs, tgts, frontier)
        if rep is None:
            break
        # Admissibility: min over served queries of dist(v, endpoint) +
        # slack, UNREACHABLE excluded — prefix-independent, so one gather
        # per distance row covers the whole level.  Pruning runs before the
        # simple-path check and the prefix copies (see _gather_neighbors).
        need = _np.full(nbrs.shape[0], _INT_INF, dtype=_np.int64)
        for row, constant in rows:
            gathered = row[nbrs]
            need = _np.minimum(
                need,
                _np.where(gathered == UNREACHABLE, _INT_INF, gathered + constant),
            )
        cand = _np.nonzero(need <= remaining)[0]
        sub_rep, sub_nbrs = rep[cand], nbrs[cand]
        ok = _not_on_path(frontier, sub_rep, sub_nbrs)
        adm_rep, adm_nbrs = sub_rep[ok], sub_nbrs[ok]

        # Provider splice (Algorithm 4, Search lines 22-23): a provider is
        # eligible at this level iff its budget covers the remaining need;
        # the condition is uniform per vertex within a level.
        eligible = [
            vertex
            for vertex, (provider_budget, _) in providers.items()
            if provider_budget >= remaining - 1
        ]
        if eligible:
            spliced = _np.isin(
                adm_nbrs, _np.asarray(eligible, dtype=_np.int64)
            )
        else:
            spliced = _np.zeros(adm_nbrs.shape[0], dtype=bool)
        if spliced.any():
            for i in _np.nonzero(spliced)[0]:
                prefix = tuple(int(v) for v in frontier[adm_rep[i]])
                on_prefix = set(prefix)
                cached_paths = providers[int(adm_nbrs[i])][1]()
                for cached in cached_paths:
                    extra = len(cached) - 1
                    if extra > remaining - 1:
                        continue
                    if not record_ok(cached[-1], used + 1 + extra):
                        continue
                    if any(v in on_prefix for v in cached):
                        continue
                    results.append(prefix + cached)

        expand_rep, expand_nbrs = adm_rep[~spliced], adm_nbrs[~spliced]
        extended = _np.concatenate(
            [frontier[expand_rep], expand_nbrs[:, None]], axis=1
        )
        length = used + 1
        if keep_all or not forward:
            recorded = extended
        else:
            recorded = extended[
                (length == budget) | _np.isin(extended[:, -1], served_arr)
            ]
        if recorded.shape[0]:
            results.extend(_tuples(recorded))
        if length >= budget or extended.shape[0] == 0:
            break
        frontier = extended
    results.sort()
    return results
