"""Pruning-based DFS baseline.

The pre-PathEnum literature ([11], [12], [14] in the paper) enumerates
HC-s-t paths with a backtracking DFS that dynamically prunes vertices which
cannot reach the target within the remaining hop budget.  This module
implements that strategy with a single backward BFS from ``t`` providing the
lower bound ``dist(v, t)`` — the "barrier"/lower-bound pruning of Peng et
al. [14] — so the search never explores a branch that cannot produce a
result.

It is used as a mid-tier baseline in tests and ablation benchmarks: faster
than brute force, slower than PathEnum's bidirectional strategy on long hop
constraints.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bfs.single_source import bfs_distances
from repro.enumeration.paths import Path
from repro.graph.digraph import DiGraph
from repro.utils.validation import require, require_non_negative, require_vertex


def enumerate_paths_pruned_dfs(
    graph: DiGraph, s: int, t: int, k: int
) -> List[Path]:
    """All HC-s-t simple paths via DFS with distance-to-target pruning."""
    require_vertex(s, graph.num_vertices, "s")
    require_vertex(t, graph.num_vertices, "t")
    require_non_negative(k, "k")
    require(s != t, "source and target must differ")

    distance_to_target: Dict[int, int] = bfs_distances(
        graph, t, max_hops=k, forward=False
    )
    if s not in distance_to_target or distance_to_target[s] > k:
        return []

    results: List[Path] = []
    prefix: List[int] = [s]
    on_path = {s}

    def extend(vertex: int, remaining: int) -> None:
        if vertex == t:
            results.append(tuple(prefix))
            return
        if remaining == 0:
            return
        for neighbor in graph.out_neighbors(vertex):
            if neighbor in on_path:
                continue
            lower_bound = distance_to_target.get(neighbor)
            if lower_bound is None or lower_bound > remaining - 1:
                continue
            prefix.append(neighbor)
            on_path.add(neighbor)
            extend(neighbor, remaining - 1)
            prefix.pop()
            on_path.remove(neighbor)

    extend(s, k)
    return results
