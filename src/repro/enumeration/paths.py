"""Path primitives.

A path is represented as a tuple of vertex ids ``(v0, v1, ..., vh)``; its
*length* is the number of hops ``h`` (``len(path) - 1``), matching the
paper's ``|p|``.  Tuples are hashable, so path sets and hash joins come for
free, and they are cheap to slice for prefix handling.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.graph.digraph import DiGraph

Path = Tuple[int, ...]


def path_length(path: Path) -> int:
    """Number of hops ``|p|`` of a path."""
    return len(path) - 1


def is_simple(path: Sequence[int]) -> bool:
    """True when the path has no repeated vertices."""
    return len(set(path)) == len(path)


def concatenate(prefix: Sequence[int], suffix: Sequence[int]) -> Path:
    """Concatenate two paths that share exactly their junction vertex.

    ``prefix = (..., x)`` and ``suffix = (x, ...)`` produce
    ``(..., x, ...)``.  Raises ``ValueError`` when the junction vertices do
    not match; the caller is responsible for checking simplicity (the ⊕
    operator of Definition 3.1 joins first and filters duplicates later).
    """
    if not prefix or not suffix:
        raise ValueError("cannot concatenate empty paths")
    if prefix[-1] != suffix[0]:
        raise ValueError(
            f"paths do not share a junction vertex: {prefix[-1]} != {suffix[0]}"
        )
    return tuple(prefix) + tuple(suffix[1:])


def reverse_path(path: Sequence[int]) -> Path:
    """Reverse a path (used to flip backward-search paths onto ``G``)."""
    return tuple(reversed(path))


def validate_path(
    graph: DiGraph, path: Sequence[int], s: int, t: int, k: int
) -> None:
    """Raise ``AssertionError`` unless ``path`` is a valid HC-s-t simple path.

    Used by tests and by the examples' ``--verify`` mode: the path must
    start at ``s``, end at ``t``, contain no repeated vertex, follow only
    existing edges and use at most ``k`` hops.
    """
    assert len(path) >= 2, f"path too short: {path}"
    assert path[0] == s, f"path {path} does not start at {s}"
    assert path[-1] == t, f"path {path} does not end at {t}"
    assert is_simple(path), f"path {path} repeats a vertex"
    assert path_length(path) <= k, f"path {path} exceeds hop constraint {k}"
    for u, v in zip(path, path[1:]):
        assert graph.has_edge(u, v), f"edge ({u}, {v}) of path {path} is not in G"


def sort_paths(paths: Iterable[Sequence[int]]) -> List[Path]:
    """Canonical ordering of a path collection (by length, then lexicographic).

    Algorithms return paths in implementation-defined orders; tests compare
    sorted lists so ordering differences never cause false failures.
    """
    return sorted((tuple(p) for p in paths), key=lambda p: (len(p), p))
