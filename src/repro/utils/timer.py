"""Wall-clock timing helpers used by the experiment harness.

The paper reports wall-clock time of each algorithm and, for Exp-3, the
decomposition of BatchEnum+ into BuildIndex / ClusterQuery /
IdentifySubquery / Enumeration.  ``Timer`` measures one span, ``StageTimer``
accumulates named spans so a run can be decomposed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class Timer:
    """A simple wall-clock stopwatch.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(10))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class StageTimer:
    """Accumulates wall-clock time per named stage.

    Used to produce the Fig. 9 style decomposition: each stage name maps to
    the total number of seconds spent inside ``stage(name)`` blocks.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Manually credit ``seconds`` to ``name`` (used when a stage is
        timed externally)."""
        self._totals[name] = self._totals.get(name, 0.0) + seconds

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    @property
    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    @property
    def overall(self) -> float:
        return sum(self._totals.values())

    def merge(self, other: "StageTimer") -> None:
        for name, seconds in other.totals.items():
            self.add(name, seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self._totals.items()))
        return f"StageTimer({inner})"
