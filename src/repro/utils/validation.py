"""Argument validation helpers.

All public entry points of the library validate their inputs eagerly and
raise :class:`ValueError` with a message naming the offending argument, so
misuse fails loudly at the API boundary rather than deep inside an
enumeration.
"""

from __future__ import annotations

from typing import Any


def require(
    condition: bool, message: str, exception: type = ValueError
) -> None:
    """Raise ``exception(message)`` (``ValueError`` by default) unless
    ``condition`` holds."""
    if not condition:
        raise exception(message)


def require_non_negative(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_positive(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    require_non_negative(value, name)
    if value == 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_vertex(vertex: Any, num_vertices: int, name: str = "vertex") -> int:
    """Validate that ``vertex`` is a valid vertex id for a graph with
    ``num_vertices`` vertices."""
    if not isinstance(vertex, int) or isinstance(vertex, bool):
        raise ValueError(f"{name} must be an int, got {type(vertex).__name__}")
    if not 0 <= vertex < num_vertices:
        raise ValueError(
            f"{name}={vertex} is out of range for a graph with {num_vertices} vertices"
        )
    return vertex
