"""Shared utilities: timing, deterministic RNG helpers and validation."""

from repro.utils.timer import Timer, StageTimer
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_vertex,
)

__all__ = [
    "Timer",
    "StageTimer",
    "require",
    "require_non_negative",
    "require_positive",
    "require_vertex",
]
