"""Telemetry subsystem: metrics registry, span tracing, cost feedback.

Stdlib-only.  Everything defaults to the no-op :data:`NULL_REGISTRY` /
:data:`NULL_TRACER` singletons; opt in per engine or service::

    from repro.obs import MetricsRegistry, Tracer

    registry, tracer = MetricsRegistry(), Tracer()
    engine = BatchQueryEngine(graph, "batch+", metrics=registry, tracer=tracer)
    ...
    print(registry.render_prometheus())
    print(tracer.render_tree())

See ``src/repro/obs/README.md`` for the metric-name catalog.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    resolve_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    RemoteSpanRecorder,
    SpanContext,
    Tracer,
    resolve_tracer,
)
from repro.obs.feedback import cost_model_fields_from_snapshot

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "resolve_registry",
    "NULL_TRACER",
    "NullTracer",
    "RemoteSpanRecorder",
    "SpanContext",
    "Tracer",
    "resolve_tracer",
    "cost_model_fields_from_snapshot",
]
