"""Span-based tracing for the plan → shard → ship → enumerate → merge
pipeline, with cross-process reparenting.

A :class:`Tracer` hands out ``with tracer.span("plan"):`` context managers.
Each span records wall-clock start, monotonic duration, static tags and a
parent link; parentage comes from a **thread-local stack**, so the
scheduler thread's ``batch`` root automatically adopts the ``plan`` /
``ship`` / ``merge`` spans opened beneath it while submit threads trace
independently.

Worker processes cannot share the stack, so span context crosses the
process boundary as a picklable ``(trace_id, span_id)`` tuple
(:meth:`Tracer.current_context`) carried in the ``WorkerPool`` task
payload.  Inside the worker a :class:`RemoteSpanRecorder` wraps the
enumeration in spans parented to that context and returns them as plain
dicts in the result fragment's meta; the submitting process calls
:meth:`Tracer.adopt` on merge, and ``render_tree()`` shows the worker-side
``enumerate`` spans (different ``pid``) under the batch that shipped them.

Span records are dicts — JSON-able, picklable, schema::

    {"name", "trace_id", "span_id", "parent_id", "start_s",
     "duration_s", "tags", "pid"}

:data:`NULL_TRACER` is the no-op default (shared reusable context manager,
no allocation, ``current_context()`` is ``None`` so workers skip recording
entirely).  Completed spans live in a bounded deque — a long-running
service keeps the most recent traces and sheds the oldest.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

#: Picklable span context: ``(trace_id, span_id)``.
SpanContext = Tuple[str, str]

_span_ids = itertools.count(1)


def _new_span_id() -> str:
    return f"{os.getpid():x}-{next(_span_ids):x}"


def _make_record(
    name: str,
    trace_id: str,
    span_id: str,
    parent_id: Optional[str],
    start_s: float,
    duration_s: float,
    tags: Optional[Dict[str, object]],
) -> Dict[str, object]:
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_s": start_s,
        "duration_s": duration_s,
        "tags": dict(tags) if tags else {},
        "pid": os.getpid(),
    }


class Tracer:
    """Collects spans with thread-local parentage into bounded storage."""

    def __init__(self, max_spans: int = 4096) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: deque = deque(maxlen=max_spans)

    def _stack(self) -> List[SpanContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, tags: Optional[Dict[str, object]] = None):
        """Record a span around the ``with`` body.

        The span's parent is the innermost open span on *this thread*; a
        span opened with an empty stack roots a new trace.  Never hold a
        span open across a generator ``yield`` — the stack is thread-local
        state and the consumer may run other spans between resumptions
        (RA005's with-block exemption does not make it correct).
        """
        stack = self._stack()
        parent: Optional[SpanContext] = stack[-1] if stack else None
        span_id = _new_span_id()
        trace_id = parent[0] if parent is not None else span_id
        stack.append((trace_id, span_id))
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            record = _make_record(
                name,
                trace_id,
                span_id,
                parent[1] if parent is not None else None,
                start_wall,
                duration,
                tags,
            )
            with self._lock:
                self._spans.append(record)

    def current_context(self) -> Optional[SpanContext]:
        """The innermost open span on this thread, as a picklable tuple."""
        stack = self._stack()
        return stack[-1] if stack else None

    def adopt(self, records: Iterable[Dict[str, object]]) -> None:
        """Fold remote span records (e.g. a worker's) into this tracer."""
        if not records:
            return
        with self._lock:
            for record in records:
                self._spans.append(record)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def spans(self, trace_id: Optional[str] = None) -> List[Dict[str, object]]:
        with self._lock:
            records = list(self._spans)
        if trace_id is None:
            return records
        return [r for r in records if r["trace_id"] == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids, oldest first."""
        seen: Dict[str, None] = {}
        for record in self.spans():
            seen.setdefault(record["trace_id"], None)
        return list(seen)

    def latest_trace_id(self) -> Optional[str]:
        ids = self.trace_ids()
        return ids[-1] if ids else None

    def find_trace(self, span_name: str) -> Optional[str]:
        """The most recent trace containing a span called ``span_name``."""
        latest = None
        for record in self.spans():
            if record["name"] == span_name:
                latest = record["trace_id"]
        return latest

    def render_tree(self, trace_id: Optional[str] = None) -> str:
        """ASCII span tree for one trace (default: the most recent)."""
        if trace_id is None:
            trace_id = self.latest_trace_id()
        records = self.spans(trace_id) if trace_id is not None else []
        if not records:
            return "(no spans)"
        by_id = {r["span_id"]: r for r in records}
        children: Dict[Optional[str], List[dict]] = {}
        for record in records:
            parent = record["parent_id"]
            if parent is not None and parent not in by_id:
                parent = None  # orphan (parent evicted): promote to root
            children.setdefault(parent, []).append(record)
        for siblings in children.values():
            siblings.sort(key=lambda r: (r["start_s"], r["span_id"]))

        lines: List[str] = []

        def emit(record: dict, depth: int) -> None:
            tags = record["tags"]
            tag_text = (
                " [" + ", ".join(f"{k}={v}" for k, v in sorted(tags.items())) + "]"
                if tags
                else ""
            )
            lines.append(
                f"{'  ' * depth}{record['name']} "
                f"{record['duration_s'] * 1e3:.2f}ms "
                f"pid={record['pid']}{tag_text}"
            )
            for child in children.get(record["span_id"], []):
                emit(child, depth + 1)

        for root in children.get(None, []):
            emit(root, 0)
        return "\n".join(lines)


class _NullSpan:
    """Reusable no-op context manager — one shared instance, no allocation."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the default when tracing is not opted into."""

    def span(self, name: str, tags: Optional[Dict[str, object]] = None):
        return _NULL_SPAN

    def current_context(self) -> None:
        return None

    def adopt(self, records: Iterable[Dict[str, object]]) -> None:
        pass

    def spans(self, trace_id: Optional[str] = None) -> List[Dict[str, object]]:
        return []

    def trace_ids(self) -> List[str]:
        return []

    def latest_trace_id(self) -> None:
        return None

    def find_trace(self, span_name: str) -> None:
        return None

    def render_tree(self, trace_id: Optional[str] = None) -> str:
        return "(no spans)"

    def __repr__(self) -> str:
        return "NullTracer()"


#: The shared no-op tracer every uninstrumented component holds.
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: Optional[object]) -> object:
    """``tracer`` if given, else the no-op singleton."""
    return tracer if tracer is not None else NULL_TRACER


class RemoteSpanRecorder:
    """Worker-side span collection, parented to a shipped ``SpanContext``.

    Lives inside pool workers where no :class:`Tracer` exists.  With a
    ``None`` context (tracing off, or a one-shot pool without payload
    context) every ``span()`` is the shared no-op and ``records`` stays
    empty — the fragment meta ships no span data.  Otherwise each span
    becomes a plain-dict record parented to the submitting batch's open
    span, returned with the result fragment and re-homed into the real
    tracer via :meth:`Tracer.adopt`.
    """

    __slots__ = ("context", "records")

    def __init__(self, context: Optional[SpanContext]) -> None:
        self.context = context
        self.records: List[Dict[str, object]] = []

    @contextmanager
    def _recording_span(self, name: str, tags: Optional[Dict[str, object]]):
        trace_id, parent_id = self.context  # type: ignore[misc]
        start_wall = time.time()
        start = time.perf_counter()
        try:
            yield
        finally:
            self.records.append(
                _make_record(
                    name,
                    trace_id,
                    _new_span_id(),
                    parent_id,
                    start_wall,
                    time.perf_counter() - start,
                    tags,
                )
            )

    def span(self, name: str, tags: Optional[Dict[str, object]] = None):
        if self.context is None:
            return _NULL_SPAN
        return self._recording_span(name, tags)
