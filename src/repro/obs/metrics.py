"""Process-wide metrics registry: counters, gauges and mergeable histograms.

The registry is the numeric half of the telemetry subsystem (spans live in
:mod:`repro.obs.tracing`).  Three metric kinds, all stdlib-only and safe to
update from any thread:

* :class:`Counter` — monotonically increasing float total (``.inc()``).
* :class:`Gauge` — a point-in-time level (``.set()`` / ``.add()``), e.g.
  the ingestion service's pending-queue depth.
* :class:`Histogram` — bucketed distribution over **fixed log-spaced
  bounds** (:data:`DEFAULT_BUCKET_BOUNDS`).  Because every process buckets
  against the same bounds, two snapshots merge by adding bucket counts —
  quantiles survive aggregation across workers/replicas, which a stored
  mean never does.  ``percentile()`` interpolates p50/p95/p99 from the
  buckets; the exact maximum is tracked on the side.

Exports
-------
``registry.snapshot()`` returns a plain JSON-able dict (sorted keys, round
trips through ``json``), ``MetricsRegistry.from_snapshot``/``merge_snapshot``
rebuild or aggregate registries from snapshots, and
``registry.render_prometheus()`` emits the Prometheus text exposition
format — the contract a future HTTP ``/metrics`` endpoint serves verbatim.
The metric-name catalog lives in ``src/repro/obs/README.md``.

The no-op path
--------------
Instrumented code never branches on "is telemetry on": it holds a registry
injected at construction time, and the default is :data:`NULL_REGISTRY` —
a :class:`NullRegistry` whose factory methods return shared no-op
singletons, so the uninstrumented hot path costs one attribute lookup and
one empty method call, allocating nothing.  Rule RA006 of
``python -m repro.analysis`` enforces the injection discipline: repo code
may only reach a registry through an injected attribute/parameter, never a
module-level global, which is what makes the no-op default verifiable.

Thread-safety: every metric guards its state with its own ``Lock`` —
increments are never lost, even under free-threaded (GIL-less) builds
where ``+=`` on a shared attribute is a genuine read-modify-write race.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.utils.validation import require

#: Fixed log-spaced histogram bucket upper bounds: half-decade steps from
#: one microsecond to one hundred (seconds, bytes×1e-6, cost units — the
#: scale is the caller's).  Fixed bounds are what make snapshots from
#: different processes mergeable by bucket-count addition.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 2.0) for exponent in range(-12, 5)
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

LabelValues = Tuple[Tuple[str, str], ...]


def _canonical_labels(labels: Optional[Mapping[str, str]]) -> LabelValues:
    if not labels:
        return ()
    canonical = []
    for key in sorted(labels):
        require(
            _LABEL_NAME_RE.match(key) is not None,
            f"invalid label name {key!r}",
        )
        canonical.append((key, str(labels[key])))
    return tuple(canonical)


def _series_key(name: str, labels: LabelValues) -> str:
    """The snapshot/Prometheus series identity: ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{_escape_label(value)}"' for key, value in labels)
    return f"{name}{{{inner}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelValues = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        require(amount >= 0.0, f"counters only go up (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level that can move both ways."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelValues = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Bucketed distribution over fixed bounds, plus exact max.

    ``counts[i]`` holds observations with ``value <= bounds[i]`` (and above
    the previous bound); ``counts[-1]`` is the overflow (+Inf) bucket.
    """

    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_sum",
                 "_count", "_max")

    def __init__(
        self,
        name: str,
        labels: LabelValues = (),
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
    ) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        require(len(bounds) >= 1, "a histogram needs at least one bound")
        require(
            all(a < b for a, b in zip(bounds, bounds[1:])),
            "histogram bounds must be strictly increasing",
        )
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        bucket = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[bucket] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    def percentile(self, fraction: float) -> float:
        """Estimated quantile, linearly interpolated inside its bucket.

        The overflow bucket reports the tracked exact maximum (the bucket
        has no upper bound to interpolate against).
        """
        require(0.0 <= fraction <= 1.0, "fraction must be within [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            maximum = self._max
        if total == 0:
            return 0.0
        rank = fraction * total
        cumulative = 0
        for bucket, count in enumerate(counts):
            if count == 0:
                continue
            cumulative += count
            if cumulative >= rank:
                if bucket == len(self.bounds):
                    return maximum
                lower = self.bounds[bucket - 1] if bucket > 0 else 0.0
                upper = min(self.bounds[bucket], maximum)
                if upper <= lower:
                    return upper
                within = (rank - (cumulative - count)) / count
                return lower + (upper - lower) * within
        return maximum

    def quantiles(self) -> Dict[str, float]:
        """The standard reporting tuple: p50/p95/p99/max."""
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.max,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named, labelled metrics with get-or-create identity.

    ``counter``/``gauge``/``histogram`` return the same object for the same
    ``(name, labels)`` pair, so instrumented classes may either prefetch
    handles at construction time (the hot-path idiom) or resolve by name at
    the call site (fine for per-batch events).  Registering one name as two
    different kinds raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, str, LabelValues], Metric] = {}

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #
    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._get_or_create("counter", Counter, name, labels)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._get_or_create("gauge", Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS,
    ) -> Histogram:
        metric = self._get_or_create(
            "histogram", Histogram, name, labels, bounds=bounds
        )
        require(
            metric.bounds == tuple(float(b) for b in bounds),
            f"histogram {name!r} already registered with different bounds",
        )
        return metric

    def _get_or_create(self, kind, factory, name, labels, **kwargs) -> Metric:
        require(_NAME_RE.match(name) is not None, f"invalid metric name {name!r}")
        label_values = _canonical_labels(labels)
        key = (kind, name, label_values)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                for other_kind, other_name, _ in self._metrics:
                    require(
                        not (other_name == name and other_kind != kind),
                        f"metric {name!r} already registered as {other_kind}",
                    )
                metric = factory(name, label_values, **kwargs)
                self._metrics[key] = metric
            return metric

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, dict]:
        """JSON-able point-in-time state (sorted keys, merge-friendly)."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        with self._lock:
            metrics = list(self._metrics.items())
        for (kind, name, label_values), metric in metrics:
            key = _series_key(name, label_values)
            if kind == "counter":
                counters[key] = metric.value
            elif kind == "gauge":
                gauges[key] = metric.value
            else:
                with metric._lock:
                    histograms[key] = {
                        "bounds": list(metric.bounds),
                        "counts": list(metric._counts),
                        "sum": metric._sum,
                        "count": metric._count,
                        "max": metric._max,
                    }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def merge_snapshot(self, snapshot: Mapping[str, dict]) -> None:
        """Fold another process's :meth:`snapshot` into this registry.

        Counters and gauges add (a fleet's queue depth is the sum of its
        replicas'); histograms add bucket-wise — legal because bounds are
        fixed — and keep the elementwise max.
        """
        for key, value in snapshot.get("counters", {}).items():
            name, labels = _parse_series_key(key)
            self.counter(name, labels).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = _parse_series_key(key)
            self.gauge(name, labels).add(value)
        for key, payload in snapshot.get("histograms", {}).items():
            name, labels = _parse_series_key(key)
            histogram = self.histogram(
                name, labels, bounds=tuple(payload["bounds"])
            )
            counts = payload["counts"]
            require(
                len(counts) == len(histogram._counts),
                f"histogram {key!r} bucket count mismatch on merge",
            )
            with histogram._lock:
                for bucket, count in enumerate(counts):
                    histogram._counts[bucket] += count
                histogram._sum += payload["sum"]
                histogram._count += payload["count"]
                histogram._max = max(histogram._max, payload["max"])

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, dict]) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format of the current state."""
        snapshot = self.snapshot()
        lines: List[str] = []
        typed: set = set()

        def type_line(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for key, value in snapshot["counters"].items():
            type_line(_series_name(key), "counter")
            lines.append(f"{key} {_format_value(value)}")
        for key, value in snapshot["gauges"].items():
            type_line(_series_name(key), "gauge")
            lines.append(f"{key} {_format_value(value)}")
        for key, payload in snapshot["histograms"].items():
            name, labels = _parse_series_key(key)
            type_line(name, "histogram")
            cumulative = 0
            for bound, count in zip(payload["bounds"], payload["counts"]):
                cumulative += count
                series = _series_key(
                    f"{name}_bucket",
                    _canonical_labels({**labels, "le": _format_value(bound)}),
                )
                lines.append(f"{series} {cumulative}")
            infinity = _series_key(
                f"{name}_bucket", _canonical_labels({**labels, "le": "+Inf"})
            )
            lines.append(f"{infinity} {payload['count']}")
            label_values = _canonical_labels(labels)
            lines.append(
                f"{_series_key(name + '_sum', label_values)} "
                f"{_format_value(payload['sum'])}"
            )
            lines.append(
                f"{_series_key(name + '_count', label_values)} "
                f"{payload['count']}"
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry({len(self._metrics)} series)"


def _series_name(key: str) -> str:
    return key.split("{", 1)[0]


_SERIES_KEY_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def _parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    name, brace, rest = key.partition("{")
    if not brace:
        return name, {}
    labels = {
        match.group("key"): match.group("value")
        for match in _SERIES_KEY_RE.finditer(rest[:-1])
    }
    return name, labels


# --------------------------------------------------------------------- #
# The no-op default
# --------------------------------------------------------------------- #
class NullCounter:
    __slots__ = ()
    name = "null"
    labels: LabelValues = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()
    name = "null"
    labels: LabelValues = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    name = "null"
    labels: LabelValues = ()
    bounds = DEFAULT_BUCKET_BOUNDS
    count = 0
    sum = 0.0
    max = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, fraction: float) -> float:
        return 0.0

    def quantiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Allocation-free stand-in: every factory returns a shared no-op.

    The default value of every ``metrics=`` parameter in the engine,
    planner, executor and service — instrumentation points cost an
    attribute lookup plus an empty call, and the uninstrumented result
    stream is byte-identical to pre-telemetry behaviour
    (``benchmarks/bench_obs.py`` pins this).
    """

    def counter(self, name: str, labels=None) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, labels=None) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, labels=None, bounds=DEFAULT_BUCKET_BOUNDS) -> NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot) -> None:
        pass

    def render_prometheus(self) -> str:
        return ""

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The shared no-op registry every uninstrumented component holds.
NULL_REGISTRY = NullRegistry()


def resolve_registry(metrics: Optional[object]) -> object:
    """``metrics`` if given, else the no-op singleton (the one-line idiom
    every instrumented constructor uses)."""
    return metrics if metrics is not None else NULL_REGISTRY
