"""Cost-model feedback: the metric names the planner/executor record and
the recalibration math :meth:`CostModel.from_observed` consumes.

The contract is intentionally narrow: the instrumented pipeline records
four predicted-resource / actual-seconds counter pairs, and
:func:`cost_model_fields_from_snapshot` turns any registry snapshot
(local, merged-across-processes, or loaded from JSON) into constructor
overrides for :class:`~repro.batch.planner.CostModel`.  A field is only
recalibrated when both sides of its pair carry signal (> 0), so a
snapshot from a sequential-only deployment recalibrates
``seconds_per_cost_unit`` and leaves the ship/delta constants at their
benchmark-fitted defaults.

The constants live here (not at the call sites) because they are shared
by the writers in ``repro.batch`` and this reader — every other metric
name in the catalog (``src/repro/obs/README.md``) appears exactly once in
the code and stays a literal at its instrumentation point.
"""

from __future__ import annotations

from typing import Dict, Mapping

# Predicted/actual enumeration cost, recorded once per executed shard
# (parallel) or per executed plan (sequential planned path).
COST_PREDICTED_UNITS_TOTAL = "repro_cost_predicted_units_total"
COST_ACTUAL_SECONDS_TOTAL = "repro_cost_actual_seconds_total"

# Full index builds: multi-source BFS entries produced and wall seconds.
INDEX_BUILD_ENTRIES_TOTAL = "repro_index_build_entries_total"
INDEX_BUILD_SECONDS_TOTAL = "repro_index_build_seconds_total"

# Incremental delta repair: (changed edge x index row) work units and wall
# seconds of apply_delta.
INDEX_DELTA_EDGE_ROWS_TOTAL = "repro_index_delta_edge_rows_total"
INDEX_DELTA_SECONDS_TOTAL = "repro_index_delta_seconds_total"

# Index shipping: serialized payload bytes and worker-side deserialize
# seconds (the per-batch task-payload path; initializer shipping happens
# once per pool and is excluded).
SHIP_BYTES_TOTAL = "repro_executor_ship_bytes_total"
SHIP_SECONDS_TOTAL = "repro_executor_ship_seconds_total"

# Shared-memory index transport: payload bytes placed in the segment and
# the wall seconds spent on the shm path (parent-side segment create+copy
# plus worker-side attach) — the near-zero counterpart of the pickle pair
# above; SHIP_BYTES_TOTAL stays ~0 while batches ship via shm.
SHM_BYTES_TOTAL = "repro_executor_shm_bytes_total"
SHM_SECONDS_TOTAL = "repro_executor_shm_seconds_total"

# Which index strategy the planner resolved, labelled
# {strategy="built"|"cached"|"delta"|"none"}.  The additional
# {strategy="shm"} series marks plans whose index payload travels through
# a shared-memory segment instead of the task pickle (a transport decision
# recorded next to, not instead of, the resolution series).
PLAN_INDEX_STRATEGY_TOTAL = "repro_plan_index_strategy_total"

#: counter-pair -> CostModel field recalibrated as actual / predicted.
_FEEDBACK_RATES = (
    ("seconds_per_cost_unit", COST_ACTUAL_SECONDS_TOTAL, COST_PREDICTED_UNITS_TOTAL),
    ("seconds_per_index_entry", INDEX_BUILD_SECONDS_TOTAL, INDEX_BUILD_ENTRIES_TOTAL),
    ("seconds_per_delta_edge", INDEX_DELTA_SECONDS_TOTAL, INDEX_DELTA_EDGE_ROWS_TOTAL),
    ("seconds_per_shipped_byte", SHIP_SECONDS_TOTAL, SHIP_BYTES_TOTAL),
    ("seconds_per_shm_byte", SHM_SECONDS_TOTAL, SHM_BYTES_TOTAL),
)


def cost_model_fields_from_snapshot(
    snapshot: Mapping[str, dict],
) -> Dict[str, float]:
    """CostModel field overrides derivable from a registry snapshot.

    Returns only the fields whose predicted/actual counter pair both carry
    signal; the caller keeps defaults (or explicit overrides) for the rest.
    """
    counters = snapshot.get("counters", {})
    fields: Dict[str, float] = {}
    for field, seconds_name, units_name in _FEEDBACK_RATES:
        seconds = float(counters.get(seconds_name, 0.0))
        units = float(counters.get(units_name, 0.0))
        if seconds > 0.0 and units > 0.0:
            fields[field] = seconds / units
    return fields
