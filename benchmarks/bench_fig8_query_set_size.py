"""Fig. 8 — processing time when varying the query set size |Q| (Exp-2)."""

import pytest

from benchmarks.conftest import bench_random_workload
from repro.batch.engine import BatchQueryEngine

SIZES = (20, 40, 60)
ALGORITHMS = ("pathenum", "basic", "basic+", "batch", "batch+")
DATASETS = ("EP", "LJ")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8_time_vs_query_set_size(benchmark, dataset, size, algorithm):
    graph, queries = bench_random_workload(dataset, count=size)
    engine = BatchQueryEngine(graph, algorithm=algorithm, gamma=0.5)
    benchmark.group = f"fig8-{dataset}-Q{size}"
    result = benchmark.pedantic(engine.run, args=(list(queries),), rounds=1, iterations=1)
    benchmark.extra_info["paths"] = result.total_paths()
