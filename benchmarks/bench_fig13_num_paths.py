"""Fig. 13 — average number of HC-s-t paths per query when varying k (Exp-7)."""

import pytest

from repro.batch.batch_enum import BatchEnum
from repro.experiments.datasets import load_dataset
from repro.queries.generation import generate_random_queries

HOPS = (3, 4, 5)
DATASETS = ("EP", "BK")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("k", HOPS)
def test_fig13_average_paths_vs_k(benchmark, dataset, k):
    graph = load_dataset(dataset)
    queries = generate_random_queries(graph, 10, min_k=k, max_k=k, seed=0)
    algorithm = BatchEnum(graph, gamma=0.5, optimize_search_order=True)
    benchmark.group = f"fig13-{dataset}"
    result = benchmark.pedantic(algorithm.run, args=(queries,), rounds=1, iterations=1)
    average_paths = result.total_paths() / len(queries)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["average_paths"] = round(average_paths, 1)
    assert average_paths >= 0.0
