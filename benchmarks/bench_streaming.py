"""Time-to-first-result harness for the streaming front-end.

Builds a deliberately *skewed multi-cluster* workload — several disjoint
graph communities of very different enumeration cost, one query cluster per
community — and measures, per ``num_workers`` setting:

* ``run()``'s total wall time (the blocking batch API),
* ``stream(ordered=False)``'s time to its first yielded result and total
  drain time,
* ``stream(ordered=True)``'s time to first result (the reorder buffer may
  hold early completions until position 0's cluster lands).

The point of the streaming front-end is the recorded gap: with
``ordered=False`` the first finished cluster reaches the consumer while the
slowest cluster is still enumerating, so ``first_result_s`` is a fraction
of ``run_wall_s``.  Every streamed run is also verified to return exactly
``run()``'s paths per batch position.

Writes a ``BENCH_streaming.json`` artifact next to the repo root so
successive PRs can track the trajectory.  Standalone by design::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import List, Tuple

from repro.batch.engine import BatchQueryEngine
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries
from repro.queries.query import HCSTQuery

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

#: (vertices, edges, hop constraint) per community — the last community is
#: much denser and deeper than the first, so its cluster dominates the
#: batch's wall time while the early clusters finish quickly.
COMMUNITIES = (
    (40, 120, 3),
    (60, 260, 4),
    (90, 500, 5),
    (130, 1040, 6),
)
QUERIES_PER_COMMUNITY = 4
WORKER_COUNTS = (1, 2, 4)
ALGORITHM = "batch+"


def build_workload(
    communities=COMMUNITIES, seed: int = 0
) -> Tuple[DiGraph, List[HCSTQuery]]:
    """Disjoint union of random communities with per-community queries.

    Queries never cross a community boundary and communities share no
    vertices, so ``ClusterQuery`` is guaranteed to produce at least one
    cluster per community — the multi-cluster shape streaming exploits.
    """
    edges: List[Tuple[int, int]] = []
    queries: List[HCSTQuery] = []
    offset = 0
    for index, (num_vertices, num_edges, k) in enumerate(communities):
        community = random_directed_gnm(num_vertices, num_edges, seed=seed + index)
        edges.extend((offset + u, offset + v) for u, v in community.edges())
        for query in generate_random_queries(
            community, QUERIES_PER_COMMUNITY, min_k=k, max_k=k, seed=seed + index
        ):
            queries.append(HCSTQuery(offset + query.s, offset + query.t, query.k))
        offset += num_vertices
    graph = DiGraph.from_edges(edges, num_vertices=offset)
    # Interleave the communities' queries so batch order does not coincide
    # with cluster completion order (that is what ordered=False is for).
    interleaved = []
    for position in range(QUERIES_PER_COMMUNITY):
        for community_index in range(len(communities)):
            interleaved.append(
                queries[community_index * QUERIES_PER_COMMUNITY + position]
            )
    return graph, interleaved


def _time_stream(engine, queries, ordered):
    """Drain a stream, timing the first yield and the full drain."""
    start = time.perf_counter()
    first_result_s = None
    collected = {}
    for position, paths in engine.stream(queries, ordered=ordered):
        if first_result_s is None:
            first_result_s = time.perf_counter() - start
        collected[position] = paths
    total_s = time.perf_counter() - start
    return first_result_s, total_s, collected


def run(quick: bool = False) -> dict:
    communities = COMMUNITIES[:2] if quick else COMMUNITIES
    worker_counts = WORKER_COUNTS[:2] if quick else WORKER_COUNTS
    graph, queries = build_workload(communities)
    print(f"workload: {graph}, {len(queries)} queries, {len(communities)} communities")

    records = []
    for num_workers in worker_counts:
        engine = BatchQueryEngine(graph, algorithm=ALGORITHM, num_workers=num_workers)

        start = time.perf_counter()
        reference = engine.run(queries)
        run_wall_s = time.perf_counter() - start

        unordered_first_s, unordered_total_s, unordered = _time_stream(
            engine, queries, ordered=False
        )
        ordered_first_s, ordered_total_s, ordered = _time_stream(
            engine, queries, ordered=True
        )
        assert unordered == reference.paths_by_position, "stream(ordered=False) != run()"
        assert ordered == reference.paths_by_position, "stream(ordered=True) != run()"

        record = {
            "algorithm": ALGORITHM,
            "num_workers": num_workers,
            "num_queries": len(queries),
            "num_clusters": reference.sharing.num_clusters,
            "total_paths": reference.total_paths(),
            "run_wall_s": round(run_wall_s, 6),
            "stream_unordered_first_result_s": round(unordered_first_s, 6),
            "stream_unordered_total_s": round(unordered_total_s, 6),
            "stream_ordered_first_result_s": round(ordered_first_s, 6),
            "stream_ordered_total_s": round(ordered_total_s, 6),
            "first_result_before_run_completes": unordered_first_s < run_wall_s,
        }
        records.append(record)
        print(
            f"  workers={num_workers}: run {run_wall_s:.4f}s | "
            f"first result (unordered) {unordered_first_s:.4f}s | "
            f"first result (ordered) {ordered_first_s:.4f}s | "
            f"{record['num_clusters']} clusters"
        )

    artifact = {
        "benchmark": "streaming_time_to_first_result",
        "algorithm": ALGORITHM,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "records": records,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return artifact


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sweep")
    args = parser.parse_args()
    artifact = run(quick=args.quick)
    # Only gate on the time-to-first-result property for the full sweep:
    # the --quick workload is small enough that a noisy shared runner's
    # pool-spawn jitter could flip the comparison, and CI runs --quick.
    if not args.quick:
        assert all(
            record["first_result_before_run_completes"]
            for record in artifact["records"]
        ), "streaming failed to beat the blocking run to a first result"


if __name__ == "__main__":
    main()
