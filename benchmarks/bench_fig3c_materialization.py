"""Fig. 3(c) — per-query enumeration time vs. scanning materialised results.

Two benchmark groups per dataset: ``enumerate`` times the BasicEnum+
per-query enumeration, ``materialized-scan`` times a scan over the already
materialised result paths.  The paper reports a gap of roughly three orders
of magnitude; the reproduced ratio is recorded in ``extra_info``.
"""

import pytest

from benchmarks.conftest import BENCH_DATASETS, bench_random_workload
from repro.batch.basic_enum import BasicEnum


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig3c_enumerate(benchmark, dataset):
    graph, queries = bench_random_workload(dataset)
    algorithm = BasicEnum(graph, optimize_search_order=True)
    result = benchmark.pedantic(algorithm.run, args=(list(queries),), rounds=1, iterations=1)
    benchmark.extra_info["paths"] = result.total_paths()
    benchmark.extra_info["queries"] = len(queries)


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig3c_materialized_scan(benchmark, dataset):
    graph, queries = bench_random_workload(dataset)
    result = BasicEnum(graph, optimize_search_order=True).run(list(queries))
    materialized = [result.paths_at(position) for position in range(len(queries))]

    def scan():
        visited = 0
        for paths in materialized:
            for path in paths:
                for _vertex in path:
                    visited += 1
        return visited

    visited = benchmark.pedantic(scan, rounds=3, iterations=1)
    benchmark.extra_info["scanned_vertices"] = visited
