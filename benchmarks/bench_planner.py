"""Planner harness: ship-vs-rebuild index economics and auto worker count.

Two claims of the plan/execute split are measured on the skewed
multi-cluster workload (shared with ``bench_streaming.py``):

1. **Index shipping beats per-worker rebuild** — serializing the
   parent-built array-backed :class:`CSRDistanceIndex` once
   (``to_bytes``/``from_bytes``, the exact payload the pool initializer
   ships) costs less than re-running the per-cluster multi-source BFS that
   every worker used to perform.
2. **``num_workers="auto"`` is never materially slower than the best fixed
   setting** — the cost model may not always pick the absolute winner, but
   it must stay within 10% of the best of {1, os.cpu_count()}.

Writes a ``BENCH_planner.json`` artifact next to the repo root so
successive PRs can track the trajectory.  Standalone by design::

    PYTHONPATH=src python benchmarks/bench_planner.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from bench_streaming import COMMUNITIES, build_workload

from repro.batch.engine import BatchQueryEngine
from repro.bfs.distance_index import CSRDistanceIndex, build_index

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_planner.json"
ALGORITHM = "batch+"


def measure_index_economics(graph, queries, plan) -> dict:
    """Time the parent build, the ship round-trip and the per-worker
    rebuilds the pre-planner executor used to perform."""
    sources = sorted({q.s for q in queries})
    targets = sorted({q.t for q in queries})
    max_hops = max(q.k for q in queries)

    start = time.perf_counter()
    index = build_index(graph, sources, targets, max_hops)
    parent_build_s = time.perf_counter() - start

    start = time.perf_counter()
    payload = index.to_bytes()
    clone = CSRDistanceIndex.from_bytes(payload)
    ship_round_trip_s = time.perf_counter() - start
    assert clone.size_in_entries == index.size_in_entries

    # What the old executor did: one BFS per cluster, inside the workers.
    rebuild_s = 0.0
    for shard in plan.shards:
        shard_queries = [queries[p] for p in shard.positions]
        start = time.perf_counter()
        build_index(
            graph,
            sorted({q.s for q in shard_queries}),
            sorted({q.t for q in shard_queries}),
            max(q.k for q in shard_queries),
        )
        rebuild_s += time.perf_counter() - start

    return {
        "parent_build_s": round(parent_build_s, 6),
        "ship_round_trip_s": round(ship_round_trip_s, 6),
        "per_worker_rebuild_s": round(rebuild_s, 6),
        "payload_bytes": len(payload),
        "index_entries": index.size_in_entries,
        "num_shards": plan.num_shards,
        "ship_beats_rebuild": ship_round_trip_s < rebuild_s,
        "planner_chose_ship": plan.ship_index
        or plan.estimated_index_ship_seconds
        < plan.estimated_index_rebuild_seconds,
    }


def measure_worker_settings(graph, queries, repeats: int = 5) -> list:
    """Wall time of auto vs the fixed worker counts auto must not lose to.

    One warm-up run packs the graph's cached CSR snapshot so no setting
    pays it alone; repeats are interleaved round-robin across the settings
    (so a noise spike on a shared machine hits all of them, not whichever
    was measured at that moment) and each setting reports its minimum —
    the least noisy estimator of the true cost.
    """
    cpu_count = os.cpu_count() or 1
    settings = [("auto", "auto"), ("fixed-1", 1)]
    if cpu_count > 1:
        settings.append((f"fixed-{cpu_count}", cpu_count))

    reference_counts = (
        BatchQueryEngine(graph, algorithm=ALGORITHM, num_workers=1)
        .run(queries)
        .counts()
    )  # warm-up + ground truth
    engines = {
        label: BatchQueryEngine(graph, algorithm=ALGORITHM, num_workers=workers)
        for label, workers in settings
    }
    walls = {label: float("inf") for label, _ in settings}
    results = {}
    for _ in range(repeats):
        for label, _ in settings:
            start = time.perf_counter()
            results[label] = engines[label].run(queries)
            walls[label] = min(walls[label], time.perf_counter() - start)

    records = []
    for label, num_workers in settings:
        result = results[label]
        assert result.counts() == reference_counts, (
            f"{label} diverged from reference"
        )
        plan = engines[label].explain(queries)
        records.append(
            {
                "setting": label,
                "num_workers": num_workers,
                "resolved_workers": plan.num_workers,
                "wall_seconds": round(walls[label], 6),
                "total_paths": result.total_paths(),
                "num_clusters": result.sharing.num_clusters,
            }
        )
        print(
            f"  {label:<8} resolved={plan.num_workers} "
            f"wall={walls[label]:8.4f}s paths={result.total_paths()}"
        )
    return records


def run(quick: bool = False) -> dict:
    communities = COMMUNITIES[:2] if quick else COMMUNITIES
    graph, queries = build_workload(communities)
    print(f"workload: {graph}, {len(queries)} queries, {len(communities)} communities")

    plan = BatchQueryEngine(graph, algorithm=ALGORITHM, num_workers=2).explain(
        queries
    )
    index_economics = measure_index_economics(graph, queries, plan)
    print(
        f"  index: parent build {index_economics['parent_build_s']:.4f}s | "
        f"ship {index_economics['ship_round_trip_s']:.4f}s | "
        f"rebuild {index_economics['per_worker_rebuild_s']:.4f}s | "
        f"{index_economics['payload_bytes']} bytes"
    )
    worker_records = measure_worker_settings(graph, queries)

    auto_wall = next(
        r["wall_seconds"] for r in worker_records if r["setting"] == "auto"
    )
    best_fixed = min(
        r["wall_seconds"] for r in worker_records if r["setting"] != "auto"
    )
    artifact = {
        "benchmark": "bench_planner",
        "algorithm": ALGORITHM,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "index_economics": index_economics,
        "worker_settings": worker_records,
        "auto_wall_seconds": auto_wall,
        "best_fixed_wall_seconds": best_fixed,
        "auto_within_10pct_of_best_fixed": auto_wall <= best_fixed * 1.10,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return artifact


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small workload")
    args = parser.parse_args()
    artifact = run(quick=args.quick)
    # Gate only the full sweep (CI runs --quick; a noisy shared runner's
    # timer jitter on a sub-100ms workload should not fail the build).
    if not args.quick:
        assert artifact["index_economics"]["ship_beats_rebuild"], (
            "shipping the index was not faster than per-worker rebuild"
        )
        assert artifact["auto_within_10pct_of_best_fixed"], (
            "num_workers='auto' was more than 10% slower than the best "
            "fixed setting"
        )


if __name__ == "__main__":
    main()
