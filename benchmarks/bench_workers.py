"""Single- vs multi-worker wall-time harness (perf trajectory artifact).

Runs the Fig. 11 synthetic scalability workloads through
:class:`~repro.batch.engine.BatchQueryEngine` at several ``num_workers``
settings, verifies that every parallel run returns exactly the
single-process results, and writes a ``BENCH_workers.json`` artifact next
to this file so successive PRs can track the parallel executor's overhead
and speedup.

Each record also carries the planner's ``estimated_cost_units`` for its
workload, which is what lets
:meth:`repro.batch.planner.CostModel.from_benchmark` calibrate both the
pool-spawn overhead (extra wall time of the multi-worker runs) and the
seconds-per-cost-unit rate against the executor actually in the tree.

Standalone by design (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_workers.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.batch.engine import BatchQueryEngine
from repro.batch.planner import QueryPlanner
from repro.experiments.datasets import load_dataset
from repro.graph.sampling import sample_vertices
from repro.queries.generation import generate_random_queries

DATASETS = ("TW", "FS")
FRACTIONS = (0.4, 1.0)
ALGORITHMS = ("basic+", "batch+")
WORKER_COUNTS = (1, 2, 4)
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_workers.json"


def _workload(dataset: str, fraction: float):
    graph = sample_vertices(load_dataset(dataset), fraction, seed=0)
    queries = generate_random_queries(graph, 15, min_k=3, max_k=4, seed=0)
    return graph, queries


def run(quick: bool = False) -> dict:
    datasets = DATASETS[:1] if quick else DATASETS
    fractions = FRACTIONS[:1] if quick else FRACTIONS
    records = []
    for dataset in datasets:
        for fraction in fractions:
            graph, queries = _workload(dataset, fraction)
            baseline_paths = None
            for algorithm in ALGORITHMS:
                plan = QueryPlanner(graph, algorithm=algorithm).plan(
                    queries, num_workers=1
                )
                cost_units = round(plan.total_estimated_cost, 3)
                for num_workers in WORKER_COUNTS:
                    engine = BatchQueryEngine(
                        graph,
                        algorithm=algorithm,
                        gamma=0.5,
                        num_workers=num_workers,
                    )
                    start = time.perf_counter()
                    result = engine.run(queries)
                    wall = time.perf_counter() - start
                    counts = result.counts()
                    if baseline_paths is None:
                        baseline_paths = counts
                    assert counts == baseline_paths, (
                        f"{algorithm}/num_workers={num_workers} diverged from "
                        f"the baseline result counts"
                    )
                    records.append(
                        {
                            "dataset": dataset,
                            "fraction": fraction,
                            "algorithm": algorithm,
                            "num_workers": num_workers,
                            "wall_seconds": round(wall, 6),
                            "estimated_cost_units": cost_units,
                            "total_paths": result.total_paths(),
                            "num_clusters": result.sharing.num_clusters,
                            "graph_vertices": graph.num_vertices,
                            "graph_edges": graph.num_edges,
                        }
                    )
                    print(
                        f"{dataset} x{fraction:>4} {algorithm:<7} "
                        f"workers={num_workers} {wall:8.3f}s "
                        f"paths={result.total_paths()}"
                    )
    return {
        "benchmark": "bench_workers",
        "python": platform.python_version(),
        "worker_counts": list(WORKER_COUNTS),
        "records": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="one dataset, one fraction"
    )
    parser.add_argument(
        "--output", type=Path, default=ARTIFACT, help="artifact path"
    )
    args = parser.parse_args()
    payload = run(quick=args.quick)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
