"""Telemetry overhead benchmark: instrumented vs. null-registry engine.

Replays the Fig.-11-style workload (a Table-I dataset sample, 15 random
queries, ``batch+``) through two otherwise identical engines:

* ``null`` — the default: no ``metrics=``/``tracer=``, so every telemetry
  call hits the no-op ``NULL_REGISTRY``/``NULL_TRACER`` singletons;
* ``live`` — a fresh :class:`~repro.obs.MetricsRegistry` and
  :class:`~repro.obs.Tracer` injected, spans and counters recording.

The two modes alternate (null, live, null, live, ...) so slow drift in
machine load hits both equally.  Two acceptance gates:

* **identical results** — every repeat of either mode must return exactly
  the same paths per batch position as the first null run (the null
  objects are allocation-free *and* behaviour-free, and live
  instrumentation must never change what is computed);
* **< 3% wall overhead** — comparing best-of-repeats wall times (the
  stable point estimate under scheduler jitter; medians are also
  recorded), the live engine must stay within ``MAX_OVERHEAD_FRACTION``
  of the null engine.  The gate applies to full runs only — ``--quick``
  (the CI configuration) still verifies identical results but skips the
  timing assertion, which needs the larger workload to rise above noise.

Writes ``BENCH_obs.json`` next to the repo root.  Standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path

from repro.batch.engine import BatchQueryEngine
from repro.experiments.datasets import load_dataset
from repro.graph.sampling import sample_vertices
from repro.obs import MetricsRegistry, Tracer
from repro.queries.generation import generate_random_queries

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

ALGORITHM = "batch+"
NUM_QUERIES = 15
#: (dataset, vertex-sample fraction, timed repeats per mode).
FULL_CONFIG = ("BK", 1.0, 7)
QUICK_CONFIG = ("EP", 0.4, 2)

MAX_OVERHEAD_FRACTION = 0.03


def build_workload(dataset: str, fraction: float):
    graph = sample_vertices(load_dataset(dataset), fraction, seed=0)
    queries = generate_random_queries(
        graph, NUM_QUERIES, min_k=3, max_k=4, seed=0
    )
    return graph, queries


def run_mode(graph, queries, live: bool):
    """One timed run; returns (wall seconds, result, registry, tracer)."""
    registry = MetricsRegistry() if live else None
    tracer = Tracer() if live else None
    engine = BatchQueryEngine(
        graph,
        algorithm=ALGORITHM,
        num_workers="auto",
        metrics=registry,
        tracer=tracer,
    )
    start = time.perf_counter()
    result = engine.run(queries)
    return time.perf_counter() - start, result, registry, tracer


def paths_signature(result, num_queries: int):
    """Exact per-position paths — byte-identical comparison across modes."""
    return [result.paths_at(position) for position in range(num_queries)]


def run(quick: bool = False) -> dict:
    dataset, fraction, repeats = QUICK_CONFIG if quick else FULL_CONFIG
    graph, queries = build_workload(dataset, fraction)
    print(
        f"workload: {dataset} fraction={fraction} -> {graph}, "
        f"{len(queries)} queries, algorithm={ALGORITHM}"
    )

    # Warm both code paths (imports, dataset caches, freq scaling).
    _, oracle, _, _ = run_mode(graph, queries, live=False)
    expected = paths_signature(oracle, len(queries))
    _, warm_live, _, _ = run_mode(graph, queries, live=True)
    assert paths_signature(warm_live, len(queries)) == expected, (
        "instrumented engine changed results"
    )

    walls = {"null": [], "live": []}
    last_registry = last_tracer = None
    for _ in range(repeats):
        for mode in ("null", "live"):
            wall, result, registry, tracer = run_mode(
                graph, queries, live=mode == "live"
            )
            assert paths_signature(result, len(queries)) == expected, (
                f"{mode} run diverged from the baseline result"
            )
            walls[mode].append(wall)
            if registry is not None:
                last_registry, last_tracer = registry, tracer

    best_null, best_live = min(walls["null"]), min(walls["live"])
    overhead = best_live / best_null - 1.0
    spans = len(last_tracer.spans())
    series = len(last_registry.snapshot()["counters"]) + len(
        last_registry.snapshot()["histograms"]
    )
    print(
        f"  null best {best_null * 1000:7.2f}ms (median "
        f"{statistics.median(walls['null']) * 1000:7.2f}ms) | "
        f"live best {best_live * 1000:7.2f}ms (median "
        f"{statistics.median(walls['live']) * 1000:7.2f}ms) | "
        f"overhead {overhead * 100:+.2f}% | {spans} spans, {series} series"
    )
    if not quick:
        assert overhead < MAX_OVERHEAD_FRACTION, (
            f"instrumentation overhead {overhead * 100:.2f}% exceeds the "
            f"{MAX_OVERHEAD_FRACTION * 100:.0f}% gate"
        )

    artifact = {
        "benchmark": "telemetry_overhead",
        "algorithm": ALGORITHM,
        "dataset": dataset,
        "fraction": fraction,
        "num_queries": len(queries),
        "repeats": repeats,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "null_wall_s": walls["null"],
        "live_wall_s": walls["live"],
        "best_null_s": best_null,
        "best_live_s": best_live,
        "median_null_s": statistics.median(walls["null"]),
        "median_live_s": statistics.median(walls["live"]),
        "overhead_fraction": overhead,
        "gate_max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "gate_enforced": not quick,
        "identical_results": True,
        "live_spans_recorded": spans,
        "live_metric_series": series,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return artifact


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload, no timing gate (CI configuration)",
    )
    arguments = parser.parse_args()
    run(quick=arguments.quick)


if __name__ == "__main__":
    main()
