"""Fig. 12 — comparison with the adapted k-shortest-path algorithms (Exp-6).

The KSP adaptations are orders of magnitude slower, so this benchmark uses
a deliberately small batch; the per-group comparison table shows the gap on
each dataset.
"""

import pytest

from benchmarks.conftest import bench_random_workload
from repro.batch.engine import BatchQueryEngine

ALGORITHMS = ("dksp", "onepass", "batch+")
DATASETS = ("EP", "BK")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig12_ksp_comparison(benchmark, dataset, algorithm):
    graph, queries = bench_random_workload(dataset, count=6)
    engine = BatchQueryEngine(graph, algorithm=algorithm, gamma=0.5)
    benchmark.group = f"fig12-{dataset}"
    result = benchmark.pedantic(engine.run, args=(list(queries),), rounds=1, iterations=1)
    benchmark.extra_info["paths"] = result.total_paths()
