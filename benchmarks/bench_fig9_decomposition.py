"""Fig. 9 — processing time decomposition of BatchEnum+ (Exp-3).

One benchmark per (dataset, stage): the run is executed once and the
per-stage seconds are exposed through ``extra_info`` so the comparison
output lists BuildIndex / ClusterQuery / IdentifySubquery / Enumeration per
dataset, exactly like the figure's stacked bars.
"""

import pytest

from benchmarks.conftest import BENCH_DATASETS, bench_similar_workload
from repro.batch.batch_enum import BatchEnum
from repro.experiments.exp_decomposition import STAGES


@pytest.mark.parametrize("dataset", BENCH_DATASETS)
def test_fig9_stage_decomposition(benchmark, dataset):
    graph, queries = bench_similar_workload(dataset, 0.5)
    algorithm = BatchEnum(graph, gamma=0.5, optimize_search_order=True)
    benchmark.group = "fig9-decomposition"
    result = benchmark.pedantic(algorithm.run, args=(list(queries),), rounds=1, iterations=1)
    for stage in STAGES:
        benchmark.extra_info[stage] = round(result.stage_seconds(stage), 6)
    dominant = max(STAGES, key=result.stage_seconds)
    benchmark.extra_info["dominant_stage"] = dominant
