"""Live-graph serving benchmark: delta repair vs. rebuild, stream continuity.

Three measurements back the PR 7 multi-version serving claims:

1. **Index repair latency** — for a sweep of graph sizes, apply single-edge
   mutations and time ``CSRDistanceIndex.apply_delta`` (bounded-frontier
   BFS re-relaxation on a copy) against a fresh ``build_index``
   (multi-source BFS from scratch).  Every repaired index is verified
   byte-identical to the rebuild before its timing counts.  The acceptance
   gate: mean repair latency beats mean rebuild latency on single-edge
   updates.

2. **Stream continuity under churn** — run a streaming batch while N
   interleaved ``add_edge``/``remove_edge`` mutations land on the live
   graph.  Before multi-version snapshots, the first flush after a
   mutation raised ``RuntimeError``; now the run must complete with zero
   errors and match the closed-batch oracle of the admitted version.

3. **Seal pack throughput** — the copy-on-write serving loop seals a CSR
   snapshot on every version bump, so ``CSRGraph._pack`` is hot.  Time the
   shipped ``array.extend``-based pack against an element-wise ``append``
   reference over the same adjacency (outputs verified identical).  The
   acceptance gate: the extend-based pack is no slower than the reference.

Writes ``BENCH_live.json`` next to the repo root.  Standalone::

    PYTHONPATH=src python benchmarks/bench_live.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from array import array

from repro.batch.engine import BatchQueryEngine
from repro.bfs.distance_index import build_index
from repro.graph.csr import CSRGraph, TYPECODE
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_live.json"

#: (vertices, edges) sweep for the repair-vs-rebuild comparison.
REPAIR_SIZES = ((200, 800), (400, 1600), (800, 3200))
ENDPOINTS = 6
MAX_HOPS = 5
MUTATIONS_PER_SIZE = 20

#: Stream-continuity workload.
STREAM_GRAPH = (60, 240)
STREAM_QUERIES = 8
STREAM_MUTATIONS = 25
ALGORITHM = "batch+"

#: Seal micro-benchmark workload (vertices, edges) and timing rounds.
#: The rounds interleave both variants and score best-of, which is what
#: makes the extend-vs-append gate stable on noisy shared machines.
SEAL_GRAPH = (2000, 16000)
SEAL_ROUNDS = 25


def _random_single_edge_mutation(graph, rng):
    """Apply one add or remove; return ``(added, removed)`` lists."""
    if rng.random() < 0.5 and graph.num_edges > 0:
        edge = rng.choice(sorted(graph.edges()))
        graph.remove_edge(*edge)
        return [], [edge]
    while True:
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            return [(u, v)], []


def bench_repair(num_vertices, num_edges, mutations, seed=0):
    rng = random.Random(seed)
    graph = random_directed_gnm(num_vertices, num_edges, seed=seed)
    sources = sorted(rng.sample(range(num_vertices), ENDPOINTS))
    targets = sorted(rng.sample(range(num_vertices), ENDPOINTS))
    index = build_index(graph, sources, targets, MAX_HOPS)
    repair_s, rebuild_s = [], []
    for _ in range(mutations):
        added, removed = _random_single_edge_mutation(graph, rng)

        start = time.perf_counter()
        fresh = build_index(graph, sources, targets, MAX_HOPS)
        rebuild_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        repaired = index.copy().apply_delta(graph, added, removed)
        repair_s.append(time.perf_counter() - start)

        assert repaired.to_bytes() == fresh.to_bytes(), (
            "apply_delta diverged from build_index"
        )
        index = repaired  # chain: next mutation repairs the repaired index
    mean_repair = sum(repair_s) / len(repair_s)
    mean_rebuild = sum(rebuild_s) / len(rebuild_s)
    return {
        "num_vertices": num_vertices,
        "num_edges": num_edges,
        "mutations": mutations,
        "index_rows": index.num_rows,
        "mean_repair_s": mean_repair,
        "mean_rebuild_s": mean_rebuild,
        "speedup": mean_rebuild / mean_repair if mean_repair > 0 else float("inf"),
        "repair_beats_rebuild": mean_repair < mean_rebuild,
    }


def bench_stream_continuity(num_mutations, seed=1):
    graph = random_directed_gnm(*STREAM_GRAPH, seed=seed)
    rng = random.Random(seed)
    queries = generate_random_queries(
        graph, STREAM_QUERIES, min_k=2, max_k=4, seed=seed
    )
    oracle = (
        BatchQueryEngine(graph.copy(), algorithm=ALGORITHM)
        .run(queries)
        .paths_by_position
    )
    engine = BatchQueryEngine(graph, algorithm=ALGORITHM)
    errors = 0
    start = time.perf_counter()
    stream = engine.stream(queries, ordered=True)
    streamed = {}
    try:
        position, paths = next(stream)
        streamed[position] = paths
        for _ in range(num_mutations):
            _random_single_edge_mutation(graph, rng)
        streamed.update(stream)
    except RuntimeError:
        errors += 1
    wall_s = time.perf_counter() - start
    return {
        "num_mutations": num_mutations,
        "num_queries": len(queries),
        "runtime_errors": errors,
        "matches_pinned_oracle": streamed == oracle,
        "wall_s": wall_s,
    }


def _pack_reference(adjacency):
    """Element-wise ``append`` pack — the loop ``_pack`` replaced.

    Byte-for-byte the shipped ``CSRGraph._pack`` (size validation pre-pass,
    debug-build sortedness assert) except the inner ``targets.extend`` is an
    element-wise ``append`` loop, so the comparison isolates exactly the
    change under test.
    """
    num_edges = sum(len(neighbors) for neighbors in adjacency)
    assert num_edges >= 0  # stands in for _pack's typecode-range require
    offsets = array(TYPECODE, [0] * (len(adjacency) + 1))
    targets = array(TYPECODE)
    cursor = 0
    for v, neighbors in enumerate(adjacency):
        assert all(
            neighbors[i] < neighbors[i + 1] for i in range(len(neighbors) - 1)
        ), f"adjacency of vertex {v} is not strictly sorted"
        for neighbor in neighbors:
            targets.append(neighbor)
        cursor += len(neighbors)
        offsets[v + 1] = cursor
    return offsets, targets


def bench_seal_pack(rounds=SEAL_ROUNDS, seed=2):
    """Best-of-``rounds`` timing: extend-based ``_pack`` vs append loop."""
    graph = random_directed_gnm(*SEAL_GRAPH, seed=seed)
    adjacency = [list(graph.out_neighbors(v)) for v in graph.vertices()]
    extend_s, append_s = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        packed = CSRGraph._pack(adjacency)
        extend_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        reference = _pack_reference(adjacency)
        append_s.append(time.perf_counter() - start)

        assert packed == reference, "_pack diverged from the append reference"
    best_extend, best_append = min(extend_s), min(append_s)
    return {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "rounds": rounds,
        "extend_pack_s": best_extend,
        "append_pack_s": best_append,
        "speedup": best_append / best_extend if best_extend > 0 else float("inf"),
        # 5% tolerance: the shared debug assert dominates both variants, so
        # the true extend advantage sits close to the timer's noise floor.
        "extend_not_slower": best_extend <= best_append * 1.05,
    }


def run(quick: bool = False) -> dict:
    sizes = REPAIR_SIZES[:1] if quick else REPAIR_SIZES
    mutations = 6 if quick else MUTATIONS_PER_SIZE
    stream_mutations = 10 if quick else STREAM_MUTATIONS

    repair_records = []
    for num_vertices, num_edges in sizes:
        record = bench_repair(num_vertices, num_edges, mutations)
        repair_records.append(record)
        print(
            f"  repair V={num_vertices:4d} E={num_edges:5d} | "
            f"repair {record['mean_repair_s'] * 1e3:7.3f}ms | "
            f"rebuild {record['mean_rebuild_s'] * 1e3:7.3f}ms | "
            f"speedup {record['speedup']:5.1f}x"
        )

    continuity = bench_stream_continuity(stream_mutations)
    print(
        f"  stream continuity: {continuity['num_mutations']} mutations, "
        f"{continuity['runtime_errors']} RuntimeErrors, "
        f"oracle match={continuity['matches_pinned_oracle']}"
    )

    seal = bench_seal_pack(rounds=3 if quick else SEAL_ROUNDS)
    print(
        f"  seal pack: extend {seal['extend_pack_s'] * 1e3:7.3f}ms | "
        f"append {seal['append_pack_s'] * 1e3:7.3f}ms | "
        f"speedup {seal['speedup']:4.2f}x"
    )

    artifact = {
        "benchmark": "live_graph_serving",
        "algorithm": ALGORITHM,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "delta_repair": repair_records,
        "stream_continuity": continuity,
        "seal_pack": seal,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return artifact


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sweep")
    args = parser.parse_args()
    artifact = run(quick=args.quick)
    continuity = artifact["stream_continuity"]
    # Continuity is gated even on --quick: it is a correctness property,
    # not a timing race.  The repair-beats-rebuild gate is timing and only
    # binds on the full sweep (quick runs on tiny graphs where a rebuild
    # is already microseconds).
    assert continuity["runtime_errors"] == 0, (
        "mutation killed an in-flight stream"
    )
    assert continuity["matches_pinned_oracle"], (
        "stream diverged from its admitted version's oracle"
    )
    if not args.quick:
        assert all(
            record["repair_beats_rebuild"]
            for record in artifact["delta_repair"]
        ), "apply_delta failed to beat a full rebuild on single-edge updates"
        assert artifact["seal_pack"]["extend_not_slower"], (
            "extend-based _pack regressed behind the element-wise append "
            "reference"
        )


if __name__ == "__main__":
    main()
