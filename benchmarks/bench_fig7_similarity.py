"""Fig. 7 — processing time when varying query similarity (Exp-1).

One benchmark per (dataset, similarity, algorithm) triple on the quick
dataset subset.  The pytest-benchmark comparison table therefore reproduces
the figure's curves: each algorithm's time as the batch similarity grows
from 0 % to 90 %.
"""

import pytest

from benchmarks.conftest import bench_similar_workload
from repro.batch.engine import BatchQueryEngine

SIMILARITIES = (0.0, 0.4, 0.8)
ALGORITHMS = ("pathenum", "basic", "basic+", "batch", "batch+")
DATASETS = ("EP", "BK")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("similarity", SIMILARITIES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7_time_vs_similarity(benchmark, dataset, similarity, algorithm):
    graph, queries = bench_similar_workload(dataset, similarity)
    engine = BatchQueryEngine(graph, algorithm=algorithm, gamma=0.5)
    benchmark.group = f"fig7-{dataset}-sim{int(similarity * 100)}"
    result = benchmark.pedantic(engine.run, args=(list(queries),), rounds=1, iterations=1)
    benchmark.extra_info["paths"] = result.total_paths()
    benchmark.extra_info["clusters"] = result.sharing.num_clusters
    benchmark.extra_info["shared_nodes"] = result.sharing.num_shared_nodes
