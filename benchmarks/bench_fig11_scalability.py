"""Fig. 11 — scalability on vertex samples of the two largest datasets (Exp-5).

Extended with a ``num_workers`` axis: each algorithm runs single-process
and with the sharded parallel executor so the speedup (or, on tiny shards,
the process-pool overhead) is visible in the same benchmark group.
"""

import pytest

from repro.batch.engine import BatchQueryEngine
from repro.experiments.datasets import load_dataset
from repro.graph.sampling import sample_vertices
from repro.queries.generation import generate_random_queries

FRACTIONS = (0.4, 0.7, 1.0)
ALGORITHMS = ("basic", "basic+", "batch", "batch+")
DATASETS = ("TW", "FS")
NUM_WORKERS = (1, 2)


def _workload(dataset: str, fraction: float):
    graph = sample_vertices(load_dataset(dataset), fraction, seed=0)
    queries = generate_random_queries(graph, 15, min_k=3, max_k=4, seed=0)
    return graph, queries


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("fraction", FRACTIONS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("num_workers", NUM_WORKERS)
def test_fig11_time_vs_graph_size(benchmark, dataset, fraction, algorithm, num_workers):
    graph, queries = _workload(dataset, fraction)
    engine = BatchQueryEngine(
        graph, algorithm=algorithm, gamma=0.5, num_workers=num_workers
    )
    benchmark.group = f"fig11-{dataset}-{int(fraction * 100)}pct"
    result = benchmark.pedantic(engine.run, args=(queries,), rounds=1, iterations=1)
    benchmark.extra_info["graph_edges"] = graph.num_edges
    benchmark.extra_info["num_workers"] = num_workers
    benchmark.extra_info["paths"] = result.total_paths()
