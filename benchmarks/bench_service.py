"""Continuous-ingestion service benchmark: micro-batching vs. the extremes.

Replays one query workload under several *arrival rates* (fixed
inter-arrival gaps) through three serving disciplines:

* ``service``   — :class:`IngestionService` micro-batching: arrivals are
  admitted into pending micro-batches (similarity fast path enabled) and
  tickets resolve as shards complete.
* ``one_per_run`` — the naive front door: every arrival immediately pays a
  full ``engine.run([query])`` of its own (no batching, no sharing).
* ``closed_batch`` — the offline oracle: wait until *all* queries have
  arrived, then one closed ``engine.run(queries)``.  Best possible
  sharing, worst possible first-query latency under continuous traffic.

Per (arrival rate, discipline) the harness records wall-clock throughput
and mean/p95 ticket latency (for the closed batch, a query's latency is
measured from its *arrival* to batch completion — the fair comparison for
continuous traffic).  The acceptance gate for the full sweep: at moderate
arrival rates the service beats one-query-per-run throughput while its
mean ticket latency stays below the closed-batch wall time.

Every serviced query is verified against the closed-batch oracle's path
set.  Writes ``BENCH_service.json`` next to the repo root.  Standalone::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import List, Tuple

from repro.batch.engine import BatchQueryEngine
from repro.batch.service import serve
from repro.enumeration.paths import sort_paths
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries
from repro.queries.query import HCSTQuery

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: (vertices, edges, hop constraint) per community — disjoint communities
#: guarantee multiple clusters, and repeated per-community endpoints give
#: the admission fast path genuine sharing to find.
COMMUNITIES = (
    (40, 140, 4),
    (60, 260, 4),
    (80, 420, 5),
)
QUERIES_PER_COMMUNITY = 8
ALGORITHM = "batch+"

#: Fixed inter-arrival gaps (seconds); 0 is an open-loop burst.
ARRIVAL_GAPS_S = (0.0, 0.002, 0.01)


def build_workload(communities=COMMUNITIES, seed: int = 0) -> Tuple[DiGraph, List[HCSTQuery]]:
    edges: List[Tuple[int, int]] = []
    queries: List[HCSTQuery] = []
    offset = 0
    for index, (num_vertices, num_edges, k) in enumerate(communities):
        community = random_directed_gnm(num_vertices, num_edges, seed=seed + index)
        edges.extend((offset + u, offset + v) for u, v in community.edges())
        for query in generate_random_queries(
            community, QUERIES_PER_COMMUNITY, min_k=k, max_k=k, seed=seed + index
        ):
            queries.append(HCSTQuery(offset + query.s, offset + query.t, query.k))
        offset += num_vertices
    graph = DiGraph.from_edges(edges, num_vertices=offset)
    interleaved = []
    for position in range(QUERIES_PER_COMMUNITY):
        for community_index in range(len(communities)):
            interleaved.append(
                queries[community_index * QUERIES_PER_COMMUNITY + position]
            )
    return graph, interleaved


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_service(graph, queries, gap_s: float, oracle) -> dict:
    """Replay arrivals through the ingestion service and verify tickets."""
    with serve(
        graph,
        algorithm=ALGORITHM,
        max_batch_size=8,
        max_delay_s=0.005,
        join_similarity=0.5,
    ) as service:
        start = time.perf_counter()
        tickets = []
        for query in queries:
            tickets.append(service.submit(query))
            if gap_s:
                time.sleep(gap_s)
        latencies = []
        for position, ticket in enumerate(tickets):
            paths = ticket.result(timeout=120.0)
            assert sort_paths(paths) == sort_paths(
                oracle.paths_at(position)
            ), f"service diverged from the closed-batch oracle at {position}"
            latencies.append(ticket.latency_s)
        wall_s = time.perf_counter() - start
        stats = service.stats()
    return {
        "wall_s": wall_s,
        "throughput_qps": len(queries) / wall_s,
        "mean_latency_s": sum(latencies) / len(latencies),
        "p95_latency_s": _percentile(latencies, 0.95),
        "batches_dispatched": stats.batches_dispatched,
        "mean_batch_size": stats.mean_batch_size,
        "joined_fast_path": stats.joined_fast_path,
        "cache_reuse_count": stats.sharing.cache_reuse_count,
    }


def run_one_per_run(graph, queries, gap_s: float) -> dict:
    """One engine.run per arrival — the no-batching baseline."""
    engine = BatchQueryEngine(graph, algorithm=ALGORITHM, num_workers=1)
    start = time.perf_counter()
    latencies = []
    for query in queries:
        arrived = time.perf_counter()
        engine.run([query])
        latencies.append(time.perf_counter() - arrived)
        if gap_s:
            time.sleep(gap_s)
    wall_s = time.perf_counter() - start
    return {
        "wall_s": wall_s,
        "throughput_qps": len(queries) / wall_s,
        "mean_latency_s": sum(latencies) / len(latencies),
        "p95_latency_s": _percentile(latencies, 0.95),
    }


def run_closed_batch(graph, queries, gap_s: float) -> Tuple[dict, object]:
    """Wait for the full arrival train, then one closed batch.

    A query's latency is arrival → batch completion: early arrivals wait
    out the whole train plus the batch wall time.
    """
    engine = BatchQueryEngine(graph, algorithm=ALGORITHM)
    start = time.perf_counter()
    arrivals = []
    for _ in queries:
        arrivals.append(time.perf_counter())
        if gap_s:
            time.sleep(gap_s)
    result = engine.run(queries)
    finished = time.perf_counter()
    latencies = [finished - arrived for arrived in arrivals]
    return {
        "wall_s": finished - start,
        "batch_wall_s": finished - arrivals[-1],
        "throughput_qps": len(queries) / (finished - start),
        "mean_latency_s": sum(latencies) / len(latencies),
        "p95_latency_s": _percentile(latencies, 0.95),
    }, result


def run(quick: bool = False) -> dict:
    communities = COMMUNITIES[:2] if quick else COMMUNITIES
    gaps = ARRIVAL_GAPS_S[:2] if quick else ARRIVAL_GAPS_S
    graph, queries = build_workload(communities)
    print(f"workload: {graph}, {len(queries)} queries, algorithm={ALGORITHM}")

    records = []
    for gap_s in gaps:
        closed, oracle = run_closed_batch(graph, queries, gap_s)
        service = run_service(graph, queries, gap_s, oracle)
        naive = run_one_per_run(graph, queries, gap_s)
        record = {
            "arrival_gap_s": gap_s,
            "num_queries": len(queries),
            "service": service,
            "one_per_run": naive,
            "closed_batch": closed,
            "service_beats_one_per_run_throughput": (
                service["throughput_qps"] > naive["throughput_qps"]
            ),
            "service_mean_latency_below_closed_batch_wall": (
                service["mean_latency_s"] < closed["batch_wall_s"]
            ),
        }
        records.append(record)
        print(
            f"  gap={gap_s * 1000:5.1f}ms | service {service['throughput_qps']:7.1f} q/s "
            f"(mean lat {service['mean_latency_s'] * 1000:6.2f}ms, "
            f"{record['service']['batches_dispatched']} batches, "
            f"mean size {service['mean_batch_size']:.1f}) | "
            f"one-per-run {naive['throughput_qps']:7.1f} q/s | "
            f"closed batch wall {closed['batch_wall_s'] * 1000:6.2f}ms"
        )

    artifact = {
        "benchmark": "continuous_ingestion_service",
        "algorithm": ALGORITHM,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "records": records,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return artifact


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sweep")
    args = parser.parse_args()
    artifact = run(quick=args.quick)
    # Gate only the full sweep: the quick workload is small enough for a
    # noisy shared runner to flip either comparison.
    if not args.quick:
        moderate = [r for r in artifact["records"] if r["arrival_gap_s"] > 0.0]
        assert any(
            r["service_beats_one_per_run_throughput"] for r in moderate
        ), "micro-batching failed to beat one-query-per-run throughput"
        assert all(
            r["service_mean_latency_below_closed_batch_wall"]
            for r in artifact["records"]
        ), "mean ticket latency exceeded the closed-batch wall time"


if __name__ == "__main__":
    main()
