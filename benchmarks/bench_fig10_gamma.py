"""Fig. 10 — impact of the clustering threshold γ on BatchEnum+ (Exp-4)."""

import pytest

from benchmarks.conftest import bench_similar_workload
from repro.batch.batch_enum import BatchEnum

GAMMAS = (0.1, 0.3, 0.5, 0.7, 0.9)
DATASETS = ("EP", "UK")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("gamma", GAMMAS)
def test_fig10_time_vs_gamma(benchmark, dataset, gamma):
    graph, queries = bench_similar_workload(dataset, 0.5)
    algorithm = BatchEnum(graph, gamma=gamma, optimize_search_order=True)
    benchmark.group = f"fig10-{dataset}"
    result = benchmark.pedantic(algorithm.run, args=(list(queries),), rounds=1, iterations=1)
    benchmark.extra_info["clusters"] = result.sharing.num_clusters
    benchmark.extra_info["shared_nodes"] = result.sharing.num_shared_nodes
