"""Vectorized-kernel and zero-copy-transport benchmark (perf artifact).

Three measurements back the shared-memory + numpy-kernel claims:

1. **Kernel speedup** — time the pure-Python explicit-stack enumeration
   against the numpy level-synchronous kernel on workloads whose frontiers
   are wide enough to vectorize (dense random digraphs, meet-in-the-middle
   ``pathenum`` plus the sharing-aware ``batch+``).  Every numpy run is
   verified **byte-identical** to its pure-Python twin before its timing
   counts.  Full-mode gate: the heavy workload clears
   :data:`SPEEDUP_GATE`x.

2. **Index transport A/B** — the same force-shipped batch once over the
   pickle transport (``use_shm=False``) and once over the shared-memory
   transport, with explicit :class:`~repro.batch.planner.CostModel`\\ s so
   the planner's decision — not a heuristic — picks the arm.  Results must
   match byte-for-byte; shipped payload sizes and wall times are recorded.

3. **Parallel vs sequential via shm** — the heavy batch at
   ``num_workers=2`` (zero-copy graph + index transport) against the
   single-process run.  The speedup gate only binds when the machine
   actually has ≥ 2 CPUs; on smaller containers the record is still
   written, with a printed skip note.

numpy is optional: without it the kernel section is skipped (recorded as
``"skipped"``) and the transport sections still run on the pure-Python
substrate.  Writes ``BENCH_kernels.json`` next to the repo root.
Standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import time
from pathlib import Path

from repro.batch.engine import BatchQueryEngine
from repro.batch.planner import CostModel, QueryPlanner
from repro.bfs.distance_index import build_index
from repro.enumeration.kernels import NUMPY_AVAILABLE
from repro.enumeration.path_enum import PathEnum
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries
from repro.queries.query import HCSTQuery

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: Full-mode single-query kernel workloads: (vertices, edges, k).  The last
#: one is the gated heavy workload — a wide, prune-heavy frontier where the
#: level-synchronous expansion dominates bytecode dispatch.
KERNEL_SWEEP = ((2000, 60_000, 5), (4000, 120_000, 5), (8000, 320_000, 4))
QUICK_KERNEL_SWEEP = ((1000, 30_000, 4),)
SPEEDUP_GATE = 3.0
KERNEL_ROUNDS = 3

#: Batch workload for the transport A/B and the parallel-vs-sequential arm.
BATCH_GRAPH = (600, 6000)
BATCH_QUERIES = 12
PARALLEL_WORKERS = 2
ALGORITHM = "batch+"

#: Economics handed to the planner per transport arm.  Both arms make
#: rebuilding inside workers ruinous (the index must ship); the pickle arm
#: disables shm, the shm arm makes the segment effectively free so the
#: planner's crossover lands on ``"shm"`` even for modest payloads.
PICKLE_MODEL = dataclasses.replace(CostModel(), seconds_per_index_entry=1.0)
SHM_MODEL = dataclasses.replace(
    CostModel(),
    seconds_per_index_entry=1.0,
    shm_segment_overhead_seconds=0.0,
    seconds_per_shm_byte=1e-12,
)


def _best_of(fn, rounds=KERNEL_ROUNDS):
    best, value = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_kernel_speedup(sweep, rounds=KERNEL_ROUNDS, seed=3):
    """Pure-Python vs numpy search kernel, byte-identity gated.

    Measures ``PathEnum._search`` over a *pre-built* distance index at the
    full hop budget — the enumeration hot loop in isolation, without the
    index-build and ⊕-join stages both kernels share (those would dilute
    the comparison to the point of measuring BFS, not the kernel).  The
    full budget makes the tail levels prune hard under Lemma 3.1, which is
    exactly the explored >> recorded regime the level-synchronous
    expansion is built for.
    """
    records = []
    for num_vertices, num_edges, k in sweep:
        graph = random_directed_gnm(num_vertices, num_edges, seed=seed)
        query = HCSTQuery(0, num_vertices - 1, k)
        index = build_index(graph, [query.s], [query.t], k)

        def _search(kernel):
            return PathEnum(graph, index=index, kernel=kernel)._search(
                query, index, forward=True, budget=k
            )

        python_s, python_paths = _best_of(lambda: _search("python"), rounds)
        numpy_s, numpy_paths = _best_of(lambda: _search("numpy"), rounds)
        assert numpy_paths == python_paths, (
            f"numpy kernel diverged on V={num_vertices} E={num_edges} k={k}"
        )
        records.append(
            {
                "num_vertices": num_vertices,
                "num_edges": num_edges,
                "k": k,
                "num_paths": len(python_paths),
                "python_s": python_s,
                "numpy_s": numpy_s,
                "speedup": python_s / numpy_s if numpy_s > 0 else float("inf"),
                "byte_identical": True,
            }
        )
        print(
            f"  kernel V={num_vertices:5d} E={num_edges:6d} k={k} | "
            f"py {python_s * 1e3:8.2f}ms | np {numpy_s * 1e3:8.2f}ms | "
            f"speedup {records[-1]['speedup']:4.2f}x | "
            f"paths {len(python_paths)}"
        )
    return records


def _batch_workload(seed=4):
    graph = random_directed_gnm(*BATCH_GRAPH, seed=seed)
    queries = generate_random_queries(
        graph, BATCH_QUERIES, min_k=3, max_k=5, seed=seed
    )
    return graph, queries


def bench_transport_ab():
    """Force-shipped batch over pickle vs shared-memory index transport."""
    graph, queries = _batch_workload()
    reference = BatchQueryEngine(
        graph, algorithm=ALGORITHM, kernel="python", num_workers=1
    ).run(queries)
    records = {}
    for arm, (use_shm, model) in {
        "pickle": (False, PICKLE_MODEL),
        "shm": (True, SHM_MODEL),
    }.items():
        plan = QueryPlanner(
            graph,
            algorithm=ALGORITHM,
            cost_model=model,
            use_shm=use_shm,
        ).plan(queries, num_workers=PARALLEL_WORKERS)
        assert plan.ship_index, f"{arm} arm did not ship its index"
        assert plan.index_transport == arm, (
            f"planner chose {plan.index_transport!r} on the {arm} arm"
        )
        engine = BatchQueryEngine(
            graph,
            algorithm=ALGORITHM,
            kernel="python",
            num_workers=PARALLEL_WORKERS,
            cost_model=model,
            use_shm=use_shm,
        )
        start = time.perf_counter()
        result = engine.run(queries)
        wall_s = time.perf_counter() - start
        assert result.paths_by_position == reference.paths_by_position, (
            f"{arm} transport diverged from the sequential reference"
        )
        records[arm] = {
            "use_shm": use_shm,
            "index_payload_bytes": plan.index_payload_bytes,
            "index_transport": plan.index_transport,
            "wall_s": wall_s,
            "byte_identical": True,
        }
        print(
            f"  transport {arm:6s} | payload "
            f"{plan.index_payload_bytes:8d} B | wall {wall_s:6.3f}s"
        )
    return records


def bench_parallel_vs_sequential():
    """Two shm-fed workers against the single process on the heavy batch."""
    graph, queries = _batch_workload(seed=5)
    sequential = BatchQueryEngine(
        graph, algorithm=ALGORITHM, kernel="python", num_workers=1
    )
    start = time.perf_counter()
    reference = sequential.run(queries)
    sequential_s = time.perf_counter() - start

    parallel = BatchQueryEngine(
        graph,
        algorithm=ALGORITHM,
        kernel="python",
        num_workers=PARALLEL_WORKERS,
        cost_model=SHM_MODEL,
        use_shm=True,
    )
    start = time.perf_counter()
    result = parallel.run(queries)
    parallel_s = time.perf_counter() - start
    assert result.paths_by_position == reference.paths_by_position, (
        "parallel shm run diverged from the sequential reference"
    )
    return {
        "num_workers": PARALLEL_WORKERS,
        "cpu_count": os.cpu_count(),
        "sequential_s": sequential_s,
        "parallel_s": parallel_s,
        "speedup": sequential_s / parallel_s if parallel_s > 0 else float("inf"),
        "byte_identical": True,
    }


def run(quick: bool = False) -> dict:
    if NUMPY_AVAILABLE:
        sweep = QUICK_KERNEL_SWEEP if quick else KERNEL_SWEEP
        kernel_records = bench_kernel_speedup(sweep, rounds=2 if quick else KERNEL_ROUNDS)
    else:
        kernel_records = "skipped"
        print("  kernel sweep skipped: numpy not importable")

    transport = bench_transport_ab()
    parallel = bench_parallel_vs_sequential()
    print(
        f"  parallel x{parallel['num_workers']} via shm: "
        f"seq {parallel['sequential_s']:6.3f}s | "
        f"par {parallel['parallel_s']:6.3f}s | "
        f"speedup {parallel['speedup']:4.2f}x "
        f"(cpu_count={parallel['cpu_count']})"
    )

    artifact = {
        "benchmark": "kernels_and_transport",
        "algorithm": ALGORITHM,
        "quick": quick,
        "numpy_available": NUMPY_AVAILABLE,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "kernel_speedup": kernel_records,
        "index_transport_ab": transport,
        "parallel_vs_sequential": parallel,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {ARTIFACT}")
    return artifact


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sweep")
    args = parser.parse_args()
    artifact = run(quick=args.quick)

    # Byte-identity is gated even on --quick (correctness, not timing): the
    # run() helpers assert it inline before any timing is recorded.  Timing
    # gates bind on the full sweep only — and the parallel gate only on
    # machines that can actually run two workers at once.
    if not args.quick and artifact["kernel_speedup"] != "skipped":
        heavy = artifact["kernel_speedup"][-1]
        assert heavy["speedup"] >= SPEEDUP_GATE, (
            f"numpy kernel speedup {heavy['speedup']:.2f}x fell below the "
            f"{SPEEDUP_GATE}x gate on the heavy workload"
        )
    cpu_count = os.cpu_count() or 1
    if not args.quick and cpu_count >= 2:
        parallel = artifact["parallel_vs_sequential"]
        assert parallel["speedup"] > 1.0, (
            "two shm-fed workers failed to beat the sequential run"
        )
    elif cpu_count < 2:
        print(
            f"  parallel-beats-sequential gate skipped: cpu_count={cpu_count}"
        )


if __name__ == "__main__":
    main()
