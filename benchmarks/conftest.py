"""Shared fixtures and workload builders for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
synthetic dataset suite.  Workload construction (graph generation, query
generation, index-independent setup) happens outside the measured region;
the measured callable is exactly the algorithm or experiment under study.

The suite is sized so that ``pytest benchmarks/ --benchmark-only`` finishes
in a few minutes; the full-scale sweeps are available through the
``repro.experiments.exp_*`` modules' ``main()`` entry points.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import pytest

from repro.experiments.datasets import load_dataset
from repro.queries.generation import generate_random_queries, generate_similar_workload
from repro.queries.query import HCSTQuery

#: Representative datasets: one small social graph, one sparse encyclopedia
#: graph, one dense web graph, one large social graph.
BENCH_DATASETS = ("EP", "BK", "UK", "LJ")

#: Default benchmark workload parameters (kept small: the datasets are
#: already scaled-down stand-ins, see DESIGN.md).
BENCH_QUERIES = 20
BENCH_MIN_K = 3
BENCH_MAX_K = 4


@lru_cache(maxsize=None)
def bench_random_workload(
    dataset: str,
    count: int = BENCH_QUERIES,
    min_k: int = BENCH_MIN_K,
    max_k: int = BENCH_MAX_K,
    seed: int = 0,
) -> Tuple[object, Tuple[HCSTQuery, ...]]:
    """Graph + random query batch for ``dataset`` (cached across benches)."""
    graph = load_dataset(dataset)
    queries = generate_random_queries(graph, count, min_k=min_k, max_k=max_k, seed=seed)
    return graph, tuple(queries)


@lru_cache(maxsize=None)
def bench_similar_workload(
    dataset: str,
    similarity: float,
    count: int = BENCH_QUERIES,
    min_k: int = BENCH_MIN_K,
    max_k: int = BENCH_MAX_K,
    seed: int = 0,
) -> Tuple[object, Tuple[HCSTQuery, ...]]:
    """Graph + similarity-controlled query batch (cached across benches)."""
    graph = load_dataset(dataset)
    queries, _ = generate_similar_workload(
        graph, count, target_similarity=similarity,
        min_k=min_k, max_k=max_k, seed=seed, measure=False,
    )
    return graph, tuple(queries)


@pytest.fixture(scope="session")
def bench_datasets() -> Tuple[str, ...]:
    return BENCH_DATASETS
