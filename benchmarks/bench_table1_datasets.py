"""Table I — dataset statistics of the synthetic suite.

Benchmarks graph generation + statistics computation per dataset and prints
the Table I row for each (``--benchmark-only -s`` to see the rows).
"""

import pytest

from repro.experiments.datasets import DATASETS, get_spec, load_dataset
from repro.graph.stats import compute_stats


@pytest.mark.parametrize("dataset", [spec.name for spec in DATASETS])
def test_table1_dataset_statistics(benchmark, dataset):
    spec = get_spec(dataset)

    def build_and_measure():
        load_dataset.cache_clear()
        graph = load_dataset(dataset)
        return compute_stats(graph)

    stats = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    assert stats.num_vertices > 0
    assert stats.num_edges > 0
    benchmark.extra_info["paper |V|"] = spec.paper_vertices
    benchmark.extra_info["paper |E|"] = spec.paper_edges
    benchmark.extra_info["|V|"] = stats.num_vertices
    benchmark.extra_info["|E|"] = stats.num_edges
    benchmark.extra_info["davg"] = round(stats.average_degree, 1)
    benchmark.extra_info["dmax"] = stats.max_degree
