"""Unit tests for the ``repro.obs`` telemetry primitives.

Covers the registry contract (get-or-create identity, label canonical
form, kind conflicts), histogram percentile math over the fixed
log-spaced buckets, snapshot JSON round-tripping and cross-process
merging, Prometheus text rendering, the null objects' no-op guarantees,
span parentage/adoption/rendering, and a multi-thread hammer proving the
counters are exact and histogram counts are conserved under contention.
"""

import json
import re
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKET_BOUNDS,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    RemoteSpanRecorder,
    Tracer,
    cost_model_fields_from_snapshot,
    resolve_registry,
    resolve_tracer,
)
from repro.obs.feedback import (
    COST_ACTUAL_SECONDS_TOTAL,
    COST_PREDICTED_UNITS_TOTAL,
    SHIP_BYTES_TOTAL,
    SHIP_SECONDS_TOTAL,
)


# --------------------------------------------------------------------- #
# Registry semantics
# --------------------------------------------------------------------- #
def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("repro_events_total")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)

    gauge = registry.gauge("repro_depth")
    gauge.set(7.0)
    gauge.add(-2.0)
    assert gauge.value == 5.0


def test_get_or_create_identity_and_label_canonical_form():
    registry = MetricsRegistry()
    a = registry.counter("repro_x_total", {"b": "2", "a": "1"})
    b = registry.counter("repro_x_total", {"a": "1", "b": "2"})
    assert a is b  # label insertion order must not create a new series
    other = registry.counter("repro_x_total", {"a": "1", "b": "3"})
    assert other is not a
    bare = registry.counter("repro_x_total")
    assert bare is not a


def test_kind_conflict_and_bad_names_raise():
    registry = MetricsRegistry()
    registry.counter("repro_thing")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("repro_thing")
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("0bad name")
    registry.histogram("repro_lat", bounds=(0.1, 1.0))
    with pytest.raises(ValueError, match="different bounds"):
        registry.histogram("repro_lat", bounds=(0.1, 2.0))


def test_histogram_quantiles_over_log_spaced_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("repro_lat_seconds")
    assert hist.bounds == DEFAULT_BUCKET_BOUNDS
    for value in (0.001, 0.002, 0.004, 0.008, 0.5):
        hist.observe(value)
    assert hist.count == 5
    assert hist.sum == pytest.approx(0.515)
    assert hist.max == 0.5
    quantiles = hist.quantiles()
    assert set(quantiles) == {"p50", "p95", "p99", "max"}
    assert 0.0 < quantiles["p50"] <= 0.008
    assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]
    assert quantiles["max"] == 0.5
    # Values past the last bound land in the overflow bucket, which
    # reports the tracked exact maximum instead of interpolating.
    hist2 = registry.histogram("repro_big", bounds=(1.0,))
    hist2.observe(123.0)
    assert hist2.percentile(0.99) == 123.0
    with pytest.raises(ValueError):
        hist2.percentile(1.5)


def test_empty_histogram_reports_zeros():
    hist = MetricsRegistry().histogram("repro_lat")
    assert hist.percentile(0.5) == 0.0
    assert hist.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}


# --------------------------------------------------------------------- #
# Snapshots: JSON round-trip, rebuild, merge
# --------------------------------------------------------------------- #
def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("repro_events_total", {"kind": "a"}).inc(3)
    registry.counter("repro_events_total", {"kind": "b"}).inc(5)
    registry.gauge("repro_depth").set(4)
    hist = registry.histogram("repro_lat_seconds")
    for value in (0.001, 0.01, 0.1):
        hist.observe(value)
    return registry


def test_snapshot_round_trips_through_json():
    snap = _populated_registry().snapshot()
    assert json.loads(json.dumps(snap)) == snap
    rebuilt = MetricsRegistry.from_snapshot(snap)
    assert rebuilt.snapshot() == snap


def test_merge_snapshot_adds_counters_and_buckets():
    first = _populated_registry()
    second = _populated_registry()
    second.counter("repro_events_total", {"kind": "c"}).inc()
    second.histogram("repro_lat_seconds").observe(5.0)

    first.merge_snapshot(second.snapshot())
    snap = first.snapshot()
    assert snap["counters"]['repro_events_total{kind="a"}'] == 6
    assert snap["counters"]['repro_events_total{kind="c"}'] == 1
    assert snap["gauges"]["repro_depth"] == 8  # gauges add across replicas
    merged = snap["histograms"]["repro_lat_seconds"]
    assert merged["count"] == 7
    assert merged["max"] == 5.0
    assert sum(merged["counts"]) == merged["count"]


def test_merge_rejects_mismatched_bucket_layout():
    registry = MetricsRegistry()
    registry.histogram("repro_lat", bounds=(0.1, 1.0)).observe(0.5)
    other = MetricsRegistry()
    other.histogram("repro_lat", bounds=(0.2, 2.0)).observe(0.5)
    with pytest.raises(ValueError, match="different bounds"):
        registry.merge_snapshot(other.snapshot())


# --------------------------------------------------------------------- #
# Prometheus text rendering
# --------------------------------------------------------------------- #
def test_render_prometheus_shape():
    text = _populated_registry().render_prometheus()
    lines = text.splitlines()
    assert "# TYPE repro_events_total counter" in lines
    assert "# TYPE repro_depth gauge" in lines
    assert "# TYPE repro_lat_seconds histogram" in lines
    assert 'repro_events_total{kind="a"} 3' in lines
    assert "repro_depth 4" in lines

    bucket_re = re.compile(r'repro_lat_seconds_bucket\{le="([^"]+)"\} (\d+)')
    buckets = [
        (match.group(1), int(match.group(2)))
        for match in map(bucket_re.match, lines)
        if match
    ]
    assert buckets[-1][0] == "+Inf"
    counts = [count for _, count in buckets]
    assert counts == sorted(counts)  # cumulative counts never decrease
    assert "repro_lat_seconds_count 3" in lines
    assert buckets[-1][1] == 3  # +Inf bucket equals the total count
    assert text.endswith("\n")


# --------------------------------------------------------------------- #
# Null objects and resolvers
# --------------------------------------------------------------------- #
def test_null_registry_is_inert():
    registry = NullRegistry()
    registry.counter("repro_x").inc(5)
    registry.gauge("repro_y").set(1)
    hist = registry.histogram("repro_z")
    hist.observe(3.0)
    assert hist.percentile(0.5) == 0.0
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert registry.render_prometheus() == ""
    registry.merge_snapshot(_populated_registry().snapshot())
    assert registry.snapshot()["counters"] == {}


def test_resolvers_default_to_null_singletons():
    assert resolve_registry(None) is NULL_REGISTRY
    assert resolve_tracer(None) is NULL_TRACER
    live_registry, live_tracer = MetricsRegistry(), Tracer()
    assert resolve_registry(live_registry) is live_registry
    assert resolve_tracer(live_tracer) is live_tracer


def test_null_tracer_spans_are_noops():
    tracer = NullTracer()
    with tracer.span("anything", tags={"a": 1}):
        assert tracer.current_context() is None
    assert tracer.spans() == []
    assert tracer.latest_trace_id() is None
    assert tracer.render_tree() == "(no spans)"


# --------------------------------------------------------------------- #
# Tracing: parentage, adoption, rendering, bounds
# --------------------------------------------------------------------- #
def test_span_nesting_builds_parent_links():
    tracer = Tracer()
    with tracer.span("batch", tags={"queries": 2}):
        root_context = tracer.current_context()
        with tracer.span("plan"):
            pass
        with tracer.span("merge"):
            pass
    assert tracer.current_context() is None

    trace_id = tracer.latest_trace_id()
    records = tracer.spans(trace_id)
    by_name = {record["name"]: record for record in records}
    assert set(by_name) == {"batch", "plan", "merge"}
    batch = by_name["batch"]
    assert batch["parent_id"] is None
    assert batch["trace_id"] == batch["span_id"] == root_context[0]
    for child in ("plan", "merge"):
        assert by_name[child]["parent_id"] == batch["span_id"]
        assert by_name[child]["trace_id"] == trace_id
    assert batch["duration_s"] >= by_name["plan"]["duration_s"]
    assert batch["tags"] == {"queries": 2}


def test_remote_span_recorder_reparents_into_submitting_trace():
    tracer = Tracer()
    with tracer.span("batch"):
        context = tracer.current_context()
    recorder = RemoteSpanRecorder(context)
    with recorder.span("enumerate", tags={"kind": "cluster"}):
        pass
    assert len(recorder.records) == 1
    record = recorder.records[0]
    assert record["trace_id"] == context[0]
    assert record["parent_id"] == context[1]

    tracer.adopt(recorder.records)
    names = {r["name"] for r in tracer.spans(context[0])}
    assert names == {"batch", "enumerate"}

    tree = tracer.render_tree(context[0])
    batch_line, enum_line = tree.splitlines()
    assert batch_line.lstrip().startswith("batch ")
    assert enum_line.startswith("  ") and "enumerate" in enum_line


def test_remote_span_recorder_without_context_records_nothing():
    recorder = RemoteSpanRecorder(None)
    with recorder.span("enumerate"):
        pass
    assert recorder.records == []


def test_find_trace_and_render_tree_defaults():
    tracer = Tracer()
    assert tracer.find_trace("batch") is None
    assert tracer.render_tree() == "(no spans)"
    with tracer.span("batch"):
        with tracer.span("plan"):
            pass
    assert tracer.find_trace("plan") == tracer.latest_trace_id()
    assert "plan" in tracer.render_tree()


def test_tracer_storage_is_bounded():
    tracer = Tracer(max_spans=8)
    for index in range(50):
        with tracer.span(f"s{index}"):
            pass
    assert len(tracer.spans()) == 8
    assert tracer.spans()[-1]["name"] == "s49"


def test_span_records_survive_exceptions():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("batch"):
            raise RuntimeError("boom")
    assert tracer.current_context() is None  # stack unwound
    assert [r["name"] for r in tracer.spans()] == ["batch"]


# --------------------------------------------------------------------- #
# Cost-model feedback plumbing
# --------------------------------------------------------------------- #
def test_cost_model_fields_require_signal_on_both_sides():
    registry = MetricsRegistry()
    assert cost_model_fields_from_snapshot(registry.snapshot()) == {}
    registry.counter(COST_PREDICTED_UNITS_TOTAL).inc(2000.0)
    assert cost_model_fields_from_snapshot(registry.snapshot()) == {}
    registry.counter(COST_ACTUAL_SECONDS_TOTAL).inc(0.02)
    registry.counter(SHIP_BYTES_TOTAL).inc(1_000_000)
    registry.counter(SHIP_SECONDS_TOTAL).inc(0.004)
    fields = cost_model_fields_from_snapshot(registry.snapshot())
    assert fields == {
        "seconds_per_cost_unit": pytest.approx(1e-5),
        "seconds_per_shipped_byte": pytest.approx(4e-9),
    }


# --------------------------------------------------------------------- #
# Concurrency: exact totals under contention
# --------------------------------------------------------------------- #
def test_registry_is_exact_under_thread_contention():
    registry = MetricsRegistry()
    threads, per_thread = 8, 5_000
    barrier = threading.Barrier(threads)
    created = []

    def hammer(seed):
        barrier.wait()
        # Concurrent get-or-create must converge on one object per series.
        counter = registry.counter("repro_hammer_total")
        hist = registry.histogram("repro_hammer_seconds")
        gauge = registry.gauge("repro_hammer_depth")
        created.append((counter, hist, gauge))
        for index in range(per_thread):
            counter.inc()
            hist.observe((seed + index) % 17 * 0.001)
            gauge.add(1.0)

    workers = [
        threading.Thread(target=hammer, args=(seed,)) for seed in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    assert len({id(c) for c, _, _ in created}) == 1
    assert len({id(h) for _, h, _ in created}) == 1
    total = threads * per_thread
    assert registry.counter("repro_hammer_total").value == total
    hist = registry.histogram("repro_hammer_seconds")
    assert hist.count == total
    snap = registry.snapshot()["histograms"]["repro_hammer_seconds"]
    assert sum(snap["counts"]) == total  # every observation landed in a bucket
    assert registry.gauge("repro_hammer_depth").value == total
