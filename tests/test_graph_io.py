"""Unit tests for edge-list IO, sampling and statistics."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_directed_gnm
from repro.graph.io import (
    read_edge_list,
    read_query_file,
    write_edge_list,
    write_query_file,
)
from repro.graph.sampling import sample_edges, sample_vertices, vertex_induced_subgraph
from repro.graph.stats import compute_stats


def test_edge_list_roundtrip(tmp_path):
    graph = random_directed_gnm(30, 90, seed=2)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path, header="test graph")
    loaded = read_edge_list(path, relabel=False)
    assert loaded == graph


def test_edge_list_relabels_sparse_ids(tmp_path):
    path = tmp_path / "sparse.txt"
    path.write_text("# comment\n1000 2000\n2000 3000\n")
    graph = read_edge_list(path)
    assert graph.num_vertices == 3
    assert graph.num_edges == 2
    assert graph.has_edge(0, 1)
    assert graph.has_edge(1, 2)


def test_edge_list_skips_self_loops_and_comments(tmp_path):
    path = tmp_path / "loops.txt"
    path.write_text("# header\n0 0\n0 1\n")
    graph = read_edge_list(path)
    assert graph.num_edges == 1


def test_edge_list_malformed_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0\n")
    with pytest.raises(ValueError):
        read_edge_list(path)


def test_query_file_roundtrip(tmp_path):
    queries = [(0, 5, 4), (3, 9, 6)]
    path = tmp_path / "queries.txt"
    write_query_file(queries, path)
    assert read_query_file(path) == queries


def test_query_file_malformed(tmp_path):
    path = tmp_path / "bad_queries.txt"
    path.write_text("1 2\n")
    with pytest.raises(ValueError):
        read_query_file(path)


def test_sample_vertices_fraction():
    graph = random_directed_gnm(100, 500, seed=1)
    sampled = sample_vertices(graph, 0.5, seed=3)
    assert sampled.num_vertices == 50
    assert sampled.num_edges <= graph.num_edges


def test_sample_vertices_full_is_copy():
    graph = random_directed_gnm(20, 60, seed=1)
    assert sample_vertices(graph, 1.0) == graph


def test_sample_vertices_invalid_fraction():
    graph = random_directed_gnm(20, 60, seed=1)
    with pytest.raises(ValueError):
        sample_vertices(graph, 0.0)


def test_vertex_induced_subgraph_relabels():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    subgraph = vertex_induced_subgraph(graph, [1, 2])
    assert subgraph.num_vertices == 2
    assert subgraph.has_edge(0, 1)  # old edge (1, 2)


def test_sample_edges_count():
    graph = random_directed_gnm(50, 200, seed=5)
    sampled = sample_edges(graph, 0.25, seed=7)
    assert sampled.num_vertices == graph.num_vertices
    assert sampled.num_edges == 50


def test_compute_stats_matches_definition():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
    stats = compute_stats(graph)
    assert stats.num_vertices == 3
    assert stats.num_edges == 4
    assert stats.average_degree == pytest.approx(8 / 3)
    assert stats.max_degree == 3
    assert "davg" in stats.as_row("X")


def test_compute_stats_empty_graph():
    stats = compute_stats(DiGraph())
    assert stats.num_vertices == 0
    assert stats.max_degree == 0
