"""Differential tests for the streaming front-end.

The contract under test: ``engine.stream(queries)`` collected into a dict
equals ``engine.run(queries).paths_by_position`` *exactly* — same paths,
same order, per batch position — for every algorithm, worker count and
flush policy, and a shard that raises surfaces its exception from the
stream instead of hanging the drain loop.
"""

import pytest

from repro.batch.engine import ALGORITHMS, BatchQueryEngine, stream_enumerate
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries
from repro.queries.query import HCSTQuery

WORKER_COUNTS = (1, 2, 4)
ORDERED = (True, False)

#: One shared workload for the big differential matrix (kept modest: 42
#: combinations, half of which spawn process pools).
_GRAPH = random_directed_gnm(24, 80, seed=7)
_QUERIES = generate_random_queries(_GRAPH, 6, min_k=2, max_k=4, seed=7)

#: Sequential ``run()`` reference per algorithm, computed once per session.
_REFERENCE = {}


def _reference(algorithm):
    if algorithm not in _REFERENCE:
        _REFERENCE[algorithm] = BatchQueryEngine(_GRAPH, algorithm=algorithm).run(
            _QUERIES
        )
    return _REFERENCE[algorithm]


@pytest.mark.parametrize("ordered", ORDERED)
@pytest.mark.parametrize("num_workers", WORKER_COUNTS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_stream_equals_run_across_algorithms_workers_and_policies(
    algorithm, num_workers, ordered
):
    engine = BatchQueryEngine(_GRAPH, algorithm=algorithm, num_workers=num_workers)
    streamed = {}
    flush_order = []
    for position, paths in engine.stream(_QUERIES, ordered=ordered):
        assert position not in streamed, "a position was flushed twice"
        streamed[position] = paths
        flush_order.append(position)
    # Exact equality with the blocking API — same paths in the same order.
    assert streamed == _reference(algorithm).paths_by_position
    if ordered:
        assert flush_order == list(range(len(_QUERIES)))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("algorithm", ["basic+", "batch+"])
def test_stream_randomized_workloads_match_run(algorithm, seed):
    graph = random_directed_gnm(30, 110, seed=seed)
    queries = generate_random_queries(graph, 8, min_k=2, max_k=4, seed=seed)
    reference = BatchQueryEngine(graph, algorithm=algorithm).run(queries)
    engine = BatchQueryEngine(graph, algorithm=algorithm, num_workers=2)
    streamed = dict(engine.stream(queries, ordered=False))
    assert streamed == reference.paths_by_position


def test_stream_enumerate_module_level_wrapper():
    streamed = dict(
        stream_enumerate(_GRAPH, _QUERIES, algorithm="batch+", ordered=False)
    )
    assert streamed == _reference("batch+").paths_by_position


def test_run_is_identical_before_and_after_streaming_refactor_fields():
    """run() still carries the algorithm label, sharing stats and timers."""
    result = BatchQueryEngine(_GRAPH, algorithm="batch+").run(_QUERIES)
    assert result.algorithm == "BatchEnum+"
    assert result.sharing.num_clusters >= 1
    assert result.stage_seconds("Enumeration") >= 0.0
    assert len(result.queries) == len(_QUERIES)


# --------------------------------------------------------------------- #
# Failure propagation
# --------------------------------------------------------------------- #
def _poisoned_batch(graph, count_valid=2):
    """A batch whose last query references a vertex outside the graph, so
    its enumeration raises inside whatever shard/worker owns it while the
    earlier queries are perfectly valid."""
    queries = generate_random_queries(graph, count_valid, min_k=2, max_k=3, seed=1)
    return queries + [HCSTQuery(0, graph.num_vertices + 7, 3)]


def test_sequential_stream_surfaces_error_and_keeps_flushed_positions():
    """Per-query streaming: positions completed before the poisoned query
    are delivered, then the exception surfaces (nothing hangs, nothing is
    silently swallowed)."""
    graph = random_directed_gnm(12, 40, seed=3)
    queries = _poisoned_batch(graph, count_valid=2)
    reference = BatchQueryEngine(graph, algorithm="onepass").run(queries[:2])
    engine = BatchQueryEngine(graph, algorithm="onepass")
    flushed = {}
    with pytest.raises(ValueError):
        for position, paths in engine.stream(queries, ordered=True):
            flushed[position] = paths
    # Both valid positions were flushed before the failure, with the exact
    # paths the blocking API would have produced for them.
    assert flushed == reference.paths_by_position


@pytest.mark.parametrize("ordered", ORDERED)
def test_parallel_stream_surfaces_worker_error_without_hanging(ordered):
    """A query that raises inside a worker process propagates out of the
    drain loop (the pool is shut down, pending shards cancelled)."""
    graph = random_directed_gnm(12, 40, seed=4)
    queries = _poisoned_batch(graph, count_valid=3)
    engine = BatchQueryEngine(graph, algorithm="basic", num_workers=2)
    with pytest.raises(ValueError):
        for _ in engine.stream(queries, ordered=ordered):
            pass


def test_parallel_run_surfaces_worker_error():
    graph = random_directed_gnm(12, 40, seed=5)
    queries = _poisoned_batch(graph, count_valid=3)
    engine = BatchQueryEngine(graph, algorithm="basic", num_workers=2)
    with pytest.raises(ValueError):
        engine.run(queries)


# --------------------------------------------------------------------- #
# Multi-version serving: mutation never kills an in-flight stream
# --------------------------------------------------------------------- #
def _first_missing_edge(graph):
    for u in graph.vertices():
        for v in graph.vertices():
            if u != v and not graph.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")


@pytest.mark.parametrize("num_workers", [1, 2])
def test_mutating_graph_mid_stream_keeps_pinned_results(num_workers):
    """The stream reads the sealed copy-on-write snapshot of the version
    it started under: an add_edge while it is in flight must neither raise
    nor leak into the remaining positions — every result matches the
    pre-mutation oracle."""
    graph = random_directed_gnm(16, 50, seed=9)
    queries = generate_random_queries(graph, 5, min_k=2, max_k=3, seed=9)
    oracle = BatchQueryEngine(
        graph.copy(), algorithm="onepass"
    ).run(queries).paths_by_position
    engine = BatchQueryEngine(
        graph, algorithm="onepass", num_workers=num_workers
    )
    stream = engine.stream(queries, ordered=True)
    streamed = dict([next(stream)])
    graph.add_edge(*_first_missing_edge(graph))
    streamed.update(stream)  # completes; mutation cannot reach the pin
    assert streamed == oracle
    # And the next run plans against the new head (post-mutation graph).
    fresh = BatchQueryEngine(graph.copy(), algorithm="onepass").run(queries)
    assert engine.run(queries).paths_by_position == fresh.paths_by_position


def test_mutation_after_stream_completes_is_allowed():
    graph = random_directed_gnm(16, 50, seed=10)
    queries = generate_random_queries(graph, 3, min_k=2, max_k=3, seed=10)
    engine = BatchQueryEngine(graph, algorithm="batch+")
    collected = dict(engine.stream(queries, ordered=True))
    assert len(collected) == len(queries)
    graph.add_edge(*_first_missing_edge(graph))  # must not raise anywhere
    # A fresh run plans against the new snapshot without complaint.
    assert len(engine.run(queries).queries) == len(queries)


def test_mutation_during_planning_pins_admitted_version(monkeypatch):
    """A mutation landing while the planner is mid-plan does not raise and
    does not leak into the plan: every artefact belongs to the snapshot
    sealed when planning started."""
    from repro.batch import planner as planner_module

    graph = random_directed_gnm(16, 50, seed=11)
    queries = generate_random_queries(graph, 4, min_k=2, max_k=3, seed=11)
    original = planner_module.cluster_queries
    admitted_version = graph.version

    def mutate_then_cluster(workload, gamma):
        graph.add_edge(*_first_missing_edge(graph))
        return original(workload, gamma)

    monkeypatch.setattr(planner_module, "cluster_queries", mutate_then_cluster)
    engine = BatchQueryEngine(graph, algorithm="batch+", num_workers=2)
    plan = engine.explain(queries)
    assert graph.version == admitted_version + 1  # the mutation landed
    assert plan.graph_version == admitted_version
    assert plan.snapshot is not None
    assert plan.snapshot.version == admitted_version


def test_abandoned_stream_shuts_down_cleanly():
    """Closing a parallel stream mid-drain must not leak worker processes
    or raise: the generator's cleanup cancels pending shards."""
    engine = BatchQueryEngine(_GRAPH, algorithm="basic", num_workers=2)
    stream = engine.stream(_QUERIES, ordered=False)
    first = next(stream)
    assert isinstance(first[0], int)
    stream.close()  # GeneratorExit → pool.shutdown(cancel_futures=True)


def test_stream_yields_defensive_copies():
    """The public ``stream()`` must hand out copies, not the per-position
    lists the engine is still accumulating into its own BatchResult —
    mutating a yielded list must not corrupt later lookups (the PR 1
    leaky-internals bug class, now also statically checked by RA004)."""
    engine = BatchQueryEngine(_GRAPH, algorithm="batch+")
    stream = engine.stream(_QUERIES)
    collected = {}
    while True:
        try:
            position, paths = next(stream)
        except StopIteration as stop:
            result = stop.value
            break
        collected[position] = list(paths)
        paths.append("sentinel")  # a hostile caller scribbling on output
        paths.reverse()
    assert result is not None
    for position, paths in collected.items():
        assert result.paths_at(position) == paths
    reference = _reference("batch+")
    for position in range(len(_QUERIES)):
        assert result.paths_at(position) == reference.paths_at(position)
