"""Regression tests for deep hop budgets.

The enumeration core used to recurse once per hop, so any budget beyond
Python's recursion limit (1000 by default) crashed with ``RecursionError``.
The iterative explicit-stack search over CSR adjacency must handle chain
graphs with hop constraints far beyond that limit on every algorithm the
engine exposes.
"""

import pytest

from repro.batch.engine import ALGORITHMS, BatchQueryEngine
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery

DEEP_K = 2100  # > default recursion limit, including the split halves


def _chain(num_vertices: int) -> DiGraph:
    return DiGraph.from_edges([(i, i + 1) for i in range(num_vertices - 1)])


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_deep_chain_does_not_hit_recursion_limit(algorithm):
    graph = _chain(DEEP_K + 1)
    query = HCSTQuery(0, DEEP_K, DEEP_K)
    result = BatchQueryEngine(graph, algorithm=algorithm).run([query])
    assert result.counts() == [1]
    assert result.paths_at(0) == [tuple(range(DEEP_K + 1))]


@pytest.mark.parametrize("algorithm", ["pathenum", "basic", "basic+", "batch", "batch+"])
def test_deep_chain_with_shortcut_counts_both_paths(algorithm):
    # A chain with one chord skipping a middle vertex: exactly two simple
    # paths within the full budget, one of them maximal-length.
    graph = _chain(DEEP_K + 1)
    middle = DEEP_K // 2
    graph.add_edge(middle - 1, middle + 1)
    query = HCSTQuery(0, DEEP_K, DEEP_K)
    result = BatchQueryEngine(graph, algorithm=algorithm).run([query])
    assert result.counts() == [2]


def test_acceptance_chain_k5000_batch_plus():
    k = 5000
    graph = _chain(k + 1)
    result = BatchQueryEngine(graph, algorithm="batch+").run(
        [HCSTQuery(0, k, k)]
    )
    assert result.counts() == [1]
    assert result.paths_at(0) == [tuple(range(k + 1))]
