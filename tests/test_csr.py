"""Unit tests for the CSR snapshot."""

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_directed_gnm


def test_csr_matches_digraph_small():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (2, 1), (1, 3)])
    csr = CSRGraph(graph)
    assert csr.num_vertices == graph.num_vertices
    assert csr.num_edges == graph.num_edges
    for v in graph.vertices():
        assert sorted(csr.out_neighbors(v)) == sorted(graph.out_neighbors(v))
        assert sorted(csr.in_neighbors(v)) == sorted(graph.in_neighbors(v))


def test_csr_matches_digraph_random():
    graph = random_directed_gnm(80, 400, seed=3)
    csr = CSRGraph(graph)
    for v in graph.vertices():
        assert sorted(csr.neighbors(v, forward=True)) == sorted(graph.out_neighbors(v))
        assert sorted(csr.neighbors(v, forward=False)) == sorted(graph.in_neighbors(v))
        assert csr.out_degree(v) == graph.out_degree(v)
        assert csr.in_degree(v) == graph.in_degree(v)


def test_csr_neighbors_sorted():
    graph = DiGraph.from_edges([(0, 5), (0, 2), (0, 9)], num_vertices=10)
    csr = CSRGraph(graph)
    assert list(csr.out_neighbors(0)) == [2, 5, 9]


def test_adjacency_lists_roundtrip():
    graph = random_directed_gnm(30, 90, seed=1)
    csr = CSRGraph(graph)
    forward = csr.adjacency_lists(forward=True)
    backward = csr.adjacency_lists(forward=False)
    for v in graph.vertices():
        assert forward[v] == sorted(graph.out_neighbors(v))
        assert backward[v] == sorted(graph.in_neighbors(v))


def test_flat_arrays_consistent_with_neighbors():
    graph = random_directed_gnm(25, 70, seed=4)
    csr = CSRGraph(graph)
    for forward in (True, False):
        offsets, targets = csr.flat(forward)
        assert len(offsets) == graph.num_vertices + 1
        assert offsets[-1] == len(targets) == graph.num_edges
        for v in graph.vertices():
            run = list(targets[offsets[v]:offsets[v + 1]])
            assert run == list(csr.neighbors(v, forward))


def test_digraph_csr_snapshot_cached_and_invalidated():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    first = graph.csr_snapshot()
    assert graph.csr_snapshot() is first  # cached while unchanged
    graph.add_edge(0, 2)
    second = graph.csr_snapshot()
    assert second is not first
    assert list(second.out_neighbors(0)) == [1, 2]


def test_isolated_vertices_have_no_neighbors():
    graph = DiGraph(4)
    graph.add_edge(0, 1)
    csr = CSRGraph(graph)
    assert list(csr.out_neighbors(2)) == []
    assert list(csr.in_neighbors(3)) == []


def test_csr_carries_sealed_version_and_read_surface():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
    csr = graph.csr_snapshot()
    assert csr.version == graph.version
    # The CSR duck-types the DiGraph read surface the executors use.
    assert csr.csr_snapshot() is csr
    assert list(csr.vertices()) == list(graph.vertices())
    assert csr.has_edge(0, 1) and not csr.has_edge(1, 0)
    graph.add_edge(1, 0)
    assert csr.version == graph.version - 1  # sealed: version frozen
    assert not csr.has_edge(1, 0)  # sealed: contents frozen


def test_csr_pickle_roundtrip_drops_lazy_caches():
    import pickle

    graph = random_directed_gnm(20, 70, seed=6)
    csr = graph.csr_snapshot()
    csr.adjacency_lists(forward=True)  # populate a lazy cache
    clone = pickle.loads(pickle.dumps(csr))
    assert clone.version == csr.version
    assert clone.num_vertices == csr.num_vertices
    assert clone.num_edges == csr.num_edges
    for v in csr.vertices():
        assert list(clone.out_neighbors(v)) == list(csr.out_neighbors(v))
        assert list(clone.in_neighbors(v)) == list(csr.in_neighbors(v))


def test_pack_asserts_on_unsorted_adjacency():
    # _pack trusts DiGraph's sorted-adjacency invariant (no O(E log E)
    # re-sort per snapshot); under __debug__ a violation must trip the
    # guard instead of silently packing garbage.
    class UnsortedGraph(DiGraph):
        def out_neighbors(self, v):
            return list(super().out_neighbors(v))[::-1]

    graph = UnsortedGraph.from_edges([(0, 1), (0, 2), (1, 2)])
    import pytest

    with pytest.raises(AssertionError):
        CSRGraph(graph)
