"""Unit tests for the query similarity measures (Definitions 4.4-4.6)."""

import pytest

from repro.bfs.distance_index import build_index_for_queries
from repro.graph.generators import paper_example_graph, random_directed_gnm
from repro.queries.query import HCSTQuery
from repro.queries.similarity import (
    QuerySimilarityMatrix,
    group_similarity,
    neighborhoods,
    query_similarity,
    similarity_from_neighborhoods,
    workload_similarity,
)


def _paper_index(queries):
    graph = paper_example_graph()
    return build_index_for_queries(graph, [(q.s, q.t, q.k) for q in queries])


def test_similarity_is_symmetric_and_bounded():
    graph = random_directed_gnm(50, 300, seed=3)
    queries = [HCSTQuery(0, 10, 3), HCSTQuery(1, 11, 4), HCSTQuery(2, 12, 3)]
    index = build_index_for_queries(graph, [(q.s, q.t, q.k) for q in queries])
    for a in queries:
        for b in queries:
            mu_ab = query_similarity(a, b, index)
            mu_ba = query_similarity(b, a, index)
            assert mu_ab == pytest.approx(mu_ba)
            assert 0.0 <= mu_ab <= 1.0


def test_identical_queries_have_similarity_one():
    queries = [HCSTQuery(0, 11, 5), HCSTQuery(0, 11, 5)]
    index = _paper_index(queries)
    assert query_similarity(queries[0], queries[1], index) == pytest.approx(1.0)


def test_disjoint_neighborhoods_have_similarity_zero():
    forward_a, backward_a = frozenset({1, 2}), frozenset({3})
    forward_b, backward_b = frozenset({7, 8}), frozenset({9})
    assert similarity_from_neighborhoods(forward_a, backward_a, forward_b, backward_b) == 0.0


def test_one_sided_overlap_is_zero():
    """The footnote of Definition 4.5: any empty intersection zeroes µ."""
    forward_a, backward_a = frozenset({1, 2}), frozenset({3})
    forward_b, backward_b = frozenset({1, 2}), frozenset({9})
    assert similarity_from_neighborhoods(forward_a, backward_a, forward_b, backward_b) == 0.0


def test_paper_example_q3_q4_similarity_is_one():
    """Example 4.1: µ(q3, q4) = 1."""
    q3 = HCSTQuery(4, 14, 4)
    q4 = HCSTQuery(9, 14, 3)
    index = _paper_index([q3, q4])
    assert query_similarity(q3, q4, index) == pytest.approx(1.0)


def test_paper_example_q0_q1_similarity():
    """Example 4.1 / Fig. 4: µ(q0, q1) ≈ 0.93."""
    q0 = HCSTQuery(0, 11, 5)
    q1 = HCSTQuery(2, 13, 5)
    index = _paper_index([q0, q1])
    assert query_similarity(q0, q1, index) == pytest.approx(0.93, abs=0.02)


def test_paper_example_neighborhoods_match_example_4_1():
    q3 = HCSTQuery(4, 14, 4)
    index = _paper_index([q3])
    forward, backward = neighborhoods(q3, index)
    assert forward == frozenset({4, 9, 3, 8, 15, 6, 11, 13, 14})
    assert backward == frozenset({14, 6, 3, 15, 9, 4})


def test_matrix_matches_pairwise_function():
    graph = random_directed_gnm(40, 240, seed=5)
    queries = [HCSTQuery(0, 8, 3), HCSTQuery(1, 9, 3), HCSTQuery(0, 9, 4)]
    index = build_index_for_queries(graph, [(q.s, q.t, q.k) for q in queries])
    matrix = QuerySimilarityMatrix.from_queries(queries, index)
    for i, a in enumerate(queries):
        assert matrix.get(i, i) == 1.0
        for j, b in enumerate(queries):
            if i != j:
                assert matrix.get(i, j) == pytest.approx(
                    query_similarity(a, b, index), abs=1e-9
                )


def test_matrix_average_equals_workload_similarity():
    graph = random_directed_gnm(40, 240, seed=6)
    queries = [HCSTQuery(0, 8, 3), HCSTQuery(1, 9, 3), HCSTQuery(2, 10, 4)]
    index = build_index_for_queries(graph, [(q.s, q.t, q.k) for q in queries])
    matrix = QuerySimilarityMatrix.from_queries(queries, index)
    assert matrix.average() == pytest.approx(workload_similarity(queries, index))


def test_group_similarity_average():
    pairs = [
        (frozenset({1, 2}), frozenset({3, 4})),
        (frozenset({1, 2}), frozenset({3, 4})),
        (frozenset({9}), frozenset({10})),
    ]
    matrix = QuerySimilarityMatrix.from_neighborhood_sets(pairs)
    # Queries 0 and 1 are identical; query 2 is disjoint from both.
    assert group_similarity([0], [1], matrix) == pytest.approx(1.0)
    assert group_similarity([0, 1], [2], matrix) == pytest.approx(0.0)


def test_workload_similarity_single_query_is_zero():
    graph = random_directed_gnm(20, 80, seed=1)
    queries = [HCSTQuery(0, 5, 3)]
    index = build_index_for_queries(graph, [(0, 5, 3)])
    assert workload_similarity(queries, index) == 0.0
