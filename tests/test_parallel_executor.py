"""Tests for the sharded parallel execution mode (``num_workers > 1``).

The contract under test: for every algorithm and any ``num_workers``, the
engine returns *identical* results — same paths, same order, per batch
position — as the sequential run, and both match the brute-force ground
truth.  Clusters (for ``batch``/``batch+``) and contiguous query slices
(for the per-query algorithms) are the shard boundaries, and the merge is
deterministic by batch position.
"""

import pytest

from repro.batch.engine import BatchQueryEngine, batch_enumerate
from repro.batch.planner import _contiguous_slices
from repro.enumeration.brute_force import enumerate_paths_brute_force
from repro.enumeration.paths import sort_paths
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries

PARALLEL_ALGORITHMS = ("basic", "basic+", "batch", "batch+")


def _workload(seed):
    graph = random_directed_gnm(30, 110, seed=seed)
    queries = generate_random_queries(graph, 8, min_k=2, max_k=4, seed=seed)
    return graph, queries


@pytest.mark.parametrize("algorithm", PARALLEL_ALGORITHMS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_parallel_matches_sequential_and_brute_force(algorithm, seed):
    graph, queries = _workload(seed)
    sequential = BatchQueryEngine(graph, algorithm=algorithm, num_workers=1).run(
        queries
    )
    parallel = BatchQueryEngine(graph, algorithm=algorithm, num_workers=2).run(
        queries
    )
    for position, query in enumerate(queries):
        # Exact equality — same paths in the same order, not just same sets.
        assert parallel.paths_at(position) == sequential.paths_at(position)
        expected = sort_paths(
            enumerate_paths_brute_force(graph, query.s, query.t, query.k)
        )
        assert parallel.sorted_paths_at(position) == expected


def test_parallel_four_workers_identical_on_batch_plus():
    graph, queries = _workload(5)
    sequential = BatchQueryEngine(graph, algorithm="batch+", num_workers=1).run(
        queries
    )
    parallel = BatchQueryEngine(graph, algorithm="batch+", num_workers=4).run(
        queries
    )
    for position in range(len(queries)):
        assert parallel.paths_at(position) == sequential.paths_at(position)
    assert parallel.sharing.num_clusters == sequential.sharing.num_clusters


def test_parallel_sharing_stats_merge_deterministically():
    graph, queries = _workload(3)
    runs = [
        BatchQueryEngine(graph, algorithm="batch+", num_workers=2).run(queries)
        for _ in range(2)
    ]
    assert runs[0].sharing == runs[1].sharing
    assert runs[0].sharing.num_clusters >= 1


def test_parallel_empty_batch_returns_empty_result():
    graph, _ = _workload(0)
    result = BatchQueryEngine(graph, algorithm="batch+", num_workers=2).run([])
    assert result.counts() == []


def test_batch_enumerate_accepts_num_workers():
    graph, queries = _workload(4)
    sequential = batch_enumerate(graph, queries, algorithm="batch+")
    parallel = batch_enumerate(graph, queries, algorithm="batch+", num_workers=2)
    for position in range(len(queries)):
        assert parallel.paths_at(position) == sequential.paths_at(position)


def test_parallel_more_workers_than_queries():
    graph, queries = _workload(6)
    queries = queries[:2]
    sequential = BatchQueryEngine(graph, algorithm="basic", num_workers=1).run(
        queries
    )
    parallel = BatchQueryEngine(graph, algorithm="basic", num_workers=8).run(
        queries
    )
    for position in range(len(queries)):
        assert parallel.paths_at(position) == sequential.paths_at(position)


def test_contiguous_slices_cover_all_positions_without_overlap():
    positions = list(range(11))
    slices = _contiguous_slices(positions, 4)
    assert [p for chunk in slices for p in chunk] == positions
    assert len(slices) == 4
    assert _contiguous_slices([], 4) == []
    assert _contiguous_slices([0, 1], 8) == [[0], [1]]
