"""Unit tests for workload generation."""

import pytest

from repro.bfs.single_source import bfs_distances
from repro.graph.generators import powerlaw_directed, random_directed_gnm
from repro.queries.generation import (
    generate_random_queries,
    generate_similar_workload,
    queries_to_triples,
    triples_to_queries,
)


def test_random_queries_are_reachable_within_k():
    graph = random_directed_gnm(80, 480, seed=1)
    queries = generate_random_queries(graph, 15, min_k=2, max_k=4, seed=3)
    assert len(queries) == 15
    for query in queries:
        distances = bfs_distances(graph, query.s, max_hops=query.k)
        assert query.t in distances
        assert 2 <= query.k <= 4


def test_random_queries_deterministic():
    graph = random_directed_gnm(60, 300, seed=2)
    a = generate_random_queries(graph, 10, seed=7)
    b = generate_random_queries(graph, 10, seed=7)
    assert a == b


def test_random_queries_validation():
    graph = random_directed_gnm(20, 60, seed=1)
    with pytest.raises(ValueError):
        generate_random_queries(graph, 0)
    with pytest.raises(ValueError):
        generate_random_queries(graph, 5, min_k=5, max_k=3)


def test_similar_workload_size_and_spec():
    graph = powerlaw_directed(300, 3, seed=4)
    queries, spec = generate_similar_workload(
        graph, 20, target_similarity=0.6, min_k=3, max_k=4, seed=1
    )
    assert len(queries) == 20
    assert spec.size == 20
    assert spec.target_similarity == 0.6
    assert spec.achieved_similarity is not None
    assert 0.0 <= spec.achieved_similarity <= 1.0


def test_similar_workload_zero_similarity_is_random():
    graph = random_directed_gnm(200, 1200, seed=5)
    queries, spec = generate_similar_workload(
        graph, 12, target_similarity=0.0, min_k=3, max_k=3, seed=2, measure=False
    )
    assert len(queries) == 12
    # At similarity 0 no group structure is imposed: sources are diverse.
    assert len({q.s for q in queries}) > 3


def test_similar_workload_high_similarity_groups_sources():
    graph = random_directed_gnm(200, 1200, seed=6)
    queries, _ = generate_similar_workload(
        graph, 12, target_similarity=0.9, min_k=3, max_k=4, seed=3, measure=False
    )
    # A 0.9 target forces most queries into one group sharing a source.
    most_common_source = max(
        {q.s for q in queries}, key=lambda s: sum(1 for q in queries if q.s == s)
    )
    assert sum(1 for q in queries if q.s == most_common_source) >= 8


def test_similar_workload_similarity_monotone_in_target():
    graph = random_directed_gnm(400, 2000, seed=7)
    _, low = generate_similar_workload(graph, 16, 0.0, min_k=3, max_k=3, seed=4)
    _, high = generate_similar_workload(graph, 16, 0.9, min_k=3, max_k=3, seed=4)
    assert high.achieved_similarity >= low.achieved_similarity


def test_similar_workload_validation():
    graph = random_directed_gnm(30, 120, seed=1)
    with pytest.raises(ValueError):
        generate_similar_workload(graph, 10, target_similarity=1.5)


def test_triples_roundtrip():
    graph = random_directed_gnm(40, 200, seed=8)
    queries = generate_random_queries(graph, 5, seed=9)
    triples = queries_to_triples(queries)
    assert triples_to_queries(triples) == queries
