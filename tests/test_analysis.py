"""Tests for the ``repro.analysis`` AST invariant checker.

Four layers: the fixture corpus under ``tests/analysis_fixtures/``
(every rule has at least one fixture it catches — at the exact marked
line — and one it passes; RA007-RA009 additionally have a cross-module
package fixture), the engine mechanics (tokenize-based suppressions,
spans, registry, parse errors, path walking, ``jobs`` determinism), the
project index (call/lock resolution, conservative silence), and the CLI
contract (exit codes, renderers, ``--jobs``, ``--list-rules``).  The
final test is the self-scan: the analyzer must report zero findings over
the repo's own ``src``, ``tests`` and ``benchmarks`` trees — the same
invocation CI runs as a blocking job.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    PARSE_ERROR_RULE_ID,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    iter_python_files,
    register,
)
from repro.analysis.__main__ import _render_github, _render_json
from repro.analysis.core import _REGISTRY, SourceModule
from repro.analysis.project import ProjectIndex
from repro.analysis.summaries import summarize_module

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_DIR = Path(__file__).resolve().parent / "analysis_fixtures"
CROSSMOD_PKG = FIXTURE_DIR / "crossmod_pkg"

RULE_IDS = (
    "RA001",
    "RA002",
    "RA003",
    "RA004",
    "RA005",
    "RA006",
    "RA007",
    "RA008",
    "RA009",
)

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RA\d{3})")


def expected_markers(path: Path):
    """``{(line, rule_id)}`` declared by ``# expect: RA###`` comments."""
    markers = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(line)
        if match is not None:
            markers.add((lineno, match.group(1)))
    return markers


def findings_for(path: Path):
    return {
        (finding.line, finding.rule_id)
        for finding in analyze_paths([path])
    }


def index_for(*named_sources):
    """Build a :class:`ProjectIndex` from ``(path, source)`` pairs."""
    return ProjectIndex.build(
        [
            summarize_module(SourceModule(path, source))
            for path, source in named_sources
        ]
    )


# --------------------------------------------------------------------- #
# Fixture corpus: each rule catches its bad fixture at the marked lines
# and stays silent on its good twin.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_is_caught_at_marked_lines(rule_id):
    path = FIXTURE_DIR / f"{rule_id.lower()}_bad.py"
    markers = expected_markers(path)
    assert markers, f"{path} declares no # expect markers"
    assert findings_for(path) == markers


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    path = FIXTURE_DIR / f"{rule_id.lower()}_good.py"
    assert findings_for(path) == set()


def test_every_rule_registered_and_titled():
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == list(RULE_IDS)
    assert all(rule.title for rule in rules)


def test_cross_module_package_is_caught_at_marked_lines():
    """RA007/8/9 findings that only exist with the full package index."""
    findings = analyze_paths([CROSSMOD_PKG])
    got = {
        (Path(finding.file).name, finding.line, finding.rule_id)
        for finding in findings
    }
    expected = set()
    for path in sorted(CROSSMOD_PKG.glob("*.py")):
        for line, rule_id in expected_markers(path):
            expected.add((path.name, line, rule_id))
    assert got == expected
    assert {finding.rule_id for finding in findings} == {
        "RA007",
        "RA008",
        "RA009",
    }


def test_cross_module_findings_vanish_when_half_the_package_is_unseen():
    """Scanning one module alone leaves every callee unresolvable, and
    unresolvable names must mean silence, not guesses."""
    assert analyze_paths([CROSSMOD_PKG / "storage.py"]) == []


# --------------------------------------------------------------------- #
# Project index: resolution and summaries that power RA007-RA009.
# --------------------------------------------------------------------- #
_CALLER_SRC = (
    "import helpers\n"
    "from helpers import fetch\n"
    "def run():\n"
    "    helpers.work()\n"
    "    fetch()\n"
    "    mystery()\n"
)
_HELPERS_SRC = (
    "def work():\n"
    "    return 1\n"
    "def fetch():\n"
    "    return 2\n"
)


def test_project_index_resolves_alias_and_from_import_calls():
    index = index_for(
        ("proj/caller.py", _CALLER_SRC), ("proj/helpers.py", _HELPERS_SRC)
    )
    module = index.by_path["proj/caller.py"]
    run = next(f for f in module.functions if f.qualname == "run")
    resolved = {}
    for call in run.calls:
        target = index.resolve_call(module, run, call.parts)
        resolved[call.parts] = (
            None if target is None else target[1].qualname
        )
    assert resolved == {
        ("helpers", "work"): "work",
        ("fetch",): "fetch",
        ("mystery",): None,
    }


def test_project_index_summary_captures_locks_and_releases():
    index = index_for(
        (
            "m.py",
            "import threading\n"
            "class A:\n"
            "    def __init__(self, store):\n"
            "        self._lock = threading.RLock()\n"
            "        self._store = store\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pinned = self._store.pin(1)\n"
            "            pinned.release()\n"
            "    def outer(self):\n"
            "        self.inner()\n",
        )
    )
    module = index.modules[0]
    classdef = module.classes[0]
    assert dict(classdef.lock_attrs) == {"_lock": True}
    inner = next(f for f in module.functions if f.name == "inner")
    assert [a.spelling for a in inner.lock_acquires] == ["self._lock"]
    assert set(inner.release_kinds) >= {"lock", "pin"}
    # the transitive lock set propagates through the self.inner() edge
    assert index.transitive_locks[("m.py", "A.outer")] == frozenset(
        {("m", "A._lock")}
    )
    assert index.lock_reentrant[("m", "A._lock")] is True


def test_project_index_stays_silent_on_unknown_imports():
    index = index_for(
        (
            "m.py",
            "from vendor.thing import blob\n"
            "def go():\n"
            "    blob()\n",
        )
    )
    module = index.modules[0]
    go = module.functions[0]
    assert index.resolve_call(module, go, ("blob",)) is None
    assert index.resolve_class(module, "Whatever") is None


# --------------------------------------------------------------------- #
# Mutation demonstrations: the repo's own code is clean for RA007/RA009
# (verified by the self-scan below), so show each rule catches the
# realistic regression it was written for — and stays quiet once the
# mutation is repaired.
# --------------------------------------------------------------------- #
_DEADLOCK_SRC = (
    "import threading\n"
    "class MetricsRegistry:\n"
    "    def __init__(self, pool):\n"
    "        self._lock = threading.Lock()\n"
    "        self._pool: WorkerPool = pool\n"
    "    def flush(self):\n"
    "        with self._lock:\n"
    "            self._pool.drain()\n"
    "class WorkerPool:\n"
    "    def __init__(self, registry):\n"
    "        self._lock = threading.Lock()\n"
    "        self._registry: MetricsRegistry = registry\n"
    "    def drain(self):\n"
    "        with self._lock:\n"
    "            pass\n"
    "    def shutdown(self):\n"
    "        with self._lock:\n"
    "            self._registry.flush()\n"
)


def test_ra007_catches_pool_registry_deadlock_mutation():
    findings = analyze_source(_DEADLOCK_SRC, path="m.py")
    assert "RA007" in {finding.rule_id for finding in findings}
    # repaired: shutdown drops its own lock before flushing metrics
    repaired = _DEADLOCK_SRC.replace(
        "    def shutdown(self):\n"
        "        with self._lock:\n"
        "            self._registry.flush()\n",
        "    def shutdown(self):\n"
        "        with self._lock:\n"
        "            pass\n"
        "        self._registry.flush()\n",
    )
    assert repaired != _DEADLOCK_SRC
    assert analyze_source(repaired, path="m.py") == []


_ATTACH_SRC = (
    "class AttachedCSR:\n"
    "    def __reduce__(self):\n"
    "        raise TypeError('attach inside the worker instead')\n"
    "def enumerate_batch(graph, spans):\n"
    "    return spans\n"
    "def stream(pool, handle, spans):\n"
    "    graph = handle.attach()\n"
    "    return pool.submit(enumerate_batch, graph, spans)\n"
)


def test_ra009_catches_attached_mapping_submitted_to_pool():
    findings = analyze_source(_ATTACH_SRC, path="m.py")
    assert [finding.rule_id for finding in findings] == ["RA009"]
    # repaired: ship the picklable handle, attach in the worker
    repaired = _ATTACH_SRC.replace(
        "    graph = handle.attach()\n"
        "    return pool.submit(enumerate_batch, graph, spans)\n",
        "    return pool.submit(enumerate_batch, handle, spans)\n",
    )
    assert repaired != _ATTACH_SRC
    assert analyze_source(repaired, path="m.py") == []


# --------------------------------------------------------------------- #
# Engine mechanics
# --------------------------------------------------------------------- #
BAD_RETURN = (
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._items = []\n"
    "    def items(self):\n"
    "        return self._items{comment}\n"
)


def test_suppression_silences_named_rule():
    source = BAD_RETURN.format(comment="  # repro: ignore[RA004] -- shared")
    assert analyze_source(source) == []


def test_suppression_bare_silences_all_rules():
    source = BAD_RETURN.format(comment="  # repro: ignore")
    assert analyze_source(source) == []


def test_suppression_for_other_rule_does_not_apply():
    source = BAD_RETURN.format(comment="  # repro: ignore[RA001]")
    findings = analyze_source(source)
    assert [finding.rule_id for finding in findings] == ["RA004"]


def test_suppression_accepts_id_lists_case_insensitively():
    source = BAD_RETURN.format(comment="  # repro: ignore[ra001, ra004]")
    assert analyze_source(source) == []


def test_suppression_marker_inside_string_literal_is_inert():
    """Suppressions are parsed from COMMENT tokens, so a marker spelled
    inside a string literal on the finding line must not silence it."""
    source = (
        "from repro.obs import MetricsRegistry\n"
        "NULL = MetricsRegistry()\n"
        "def warm():\n"
        "    NULL.counter('x # repro: ignore').inc()\n"
    )
    findings = {(f.line, f.rule_id) for f in analyze_source(source)}
    assert (4, "RA006") in findings
    # ...while a real comment on the same line still works
    suppressed = source.replace(
        ".inc()\n", ".inc()  # repro: ignore[RA006]\n"
    )
    findings = {(f.line, f.rule_id) for f in analyze_source(suppressed)}
    assert (4, "RA006") not in findings


def test_suppression_applies_anywhere_in_a_multiline_statement():
    source = (
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._items = []\n"
        "    def items(self):\n"
        "        return (\n"
        "            self._items\n"
        "        )  # repro: ignore[RA004]\n"
    )
    assert analyze_source(source) == []
    unsuppressed = source.replace("  # repro: ignore[RA004]", "")
    findings = analyze_source(unsuppressed)
    assert [(f.line, f.rule_id) for f in findings] == [(5, "RA004")]
    assert findings[0].span == (5, 7)


def test_unsuppressed_finding_reports_file_and_line():
    findings = analyze_source(BAD_RETURN.format(comment=""), path="box.py")
    assert len(findings) == 1
    finding = findings[0]
    assert (finding.file, finding.line, finding.rule_id) == ("box.py", 5, "RA004")
    assert finding.render().startswith("box.py:5: RA004: ")


def test_parse_error_becomes_ra000_finding():
    findings = analyze_source("def broken(:\n", path="broken.py")
    assert [finding.rule_id for finding in findings] == [PARSE_ERROR_RULE_ID]
    assert findings[0].file == "broken.py"


def test_findings_sort_by_file_line_rule():
    findings = [
        Finding("b.py", 1, "RA001", "x"),
        Finding("a.py", 9, "RA005", "x"),
        Finding("a.py", 2, "RA002", "x"),
    ]
    assert sorted(findings) == [findings[2], findings[1], findings[0]]


def test_register_rejects_bad_and_duplicate_ids():
    class BadId(Rule):
        rule_id = "X1"

    with pytest.raises(ValueError, match="RA###"):
        register(BadId)

    class Duplicate(Rule):
        rule_id = "RA001"

    with pytest.raises(ValueError, match="duplicate"):
        register(Duplicate)
    assert _REGISTRY["RA001"].__name__ != "Duplicate"


def test_select_unknown_rule_raises_keyerror():
    with pytest.raises(KeyError, match="RA999"):
        all_rules(["RA999"])


def test_iter_python_files_excludes_fixture_corpus_but_honours_files():
    walked = list(iter_python_files([REPO_ROOT / "tests"]))
    assert not any("analysis_fixtures" in str(path) for path in walked)
    assert Path(__file__).resolve() in {path.resolve() for path in walked}
    explicit = FIXTURE_DIR / "ra004_bad.py"
    assert list(iter_python_files([explicit])) == [explicit]


def test_jobs_parallel_scan_is_byte_identical_to_sequential():
    paths = [
        FIXTURE_DIR / "ra007_bad.py",
        FIXTURE_DIR / "ra008_bad.py",
        FIXTURE_DIR / "ra009_bad.py",
        CROSSMOD_PKG,
    ]
    sequential = analyze_paths(paths)
    parallel = analyze_paths(paths, jobs=4)
    assert sequential, "expected findings to compare"
    assert parallel == sequential
    assert [f.render() for f in parallel] == [
        f.render() for f in sequential
    ]


def test_ra002_private_access_exempt_inside_graph_package():
    source = "def peek(graph):\n    return graph._out\n"
    inside = analyze_source(source, path="src/repro/graph/patch.py")
    outside = analyze_source(source, path="src/repro/batch/patch.py")
    assert inside == []
    assert [finding.rule_id for finding in outside] == ["RA002"]


def test_ra003_resolves_local_alias_to_module_level_function():
    good = (
        "def work(x):\n"
        "    return x\n"
        "def run(pool, items):\n"
        "    worker = work\n"
        "    return [pool.submit(worker, i) for i in items]\n"
    )
    bad = (
        "def run(pool, items):\n"
        "    worker = lambda x: x\n"
        "    return [pool.submit(worker, i) for i in items]\n"
    )
    assert analyze_source(good) == []
    assert [finding.rule_id for finding in analyze_source(bad)] == ["RA003"]


def test_ra006_exempt_inside_obs_package():
    source = (
        "from repro.obs import MetricsRegistry\n"
        "NULL = MetricsRegistry()\n"
        "def warm():\n"
        "    NULL.counter('repro_warm_total').inc()\n"
    )
    inside = analyze_source(source, path="src/repro/obs/metrics.py")
    outside = analyze_source(source, path="src/repro/batch/patch.py")
    assert inside == []
    assert [finding.rule_id for finding in outside] == ["RA006", "RA006"]


def test_ra006_closure_sees_enclosing_function_binding():
    source = (
        "def make_reporter(metrics):\n"
        "    registry = metrics\n"
        "    def report():\n"
        "        registry.counter('repro_total').inc()\n"
        "    return report\n"
    )
    assert analyze_source(source) == []


def test_ra006_class_body_does_not_leak_bindings_into_methods():
    source = (
        "from repro.obs import resolve_registry\n"
        "registry = resolve_registry(None)\n"
        "class Reporter:\n"
        "    def report(self):\n"
        "        registry.gauge('repro_depth').set(1)\n"
    )
    assert [finding.rule_id for finding in analyze_source(source)] == ["RA006"]


def test_ra001_nested_closure_does_not_inherit_lock_state():
    source = (
        "class Service:\n"
        "    _GUARDED_BY_LOCK = frozenset({'_count'})\n"
        "    def hand_out(self):\n"
        "        with self._lock:\n"
        "            return lambda: self._count\n"
    )
    findings = analyze_source(source)
    assert [finding.rule_id for finding in findings] == ["RA001"]


# --------------------------------------------------------------------- #
# Renderers
# --------------------------------------------------------------------- #
def test_render_json_shape():
    findings = [Finding("a.py", 3, "RA001", "msg")]
    assert json.loads(_render_json(findings)) == [
        {"file": "a.py", "line": 3, "rule": "RA001", "message": "msg"}
    ]


def test_render_github_escapes_workflow_payload():
    findings = [Finding("a.py", 3, "RA001", "50% of\nlines")]
    assert _render_github(findings) == (
        "::error file=a.py,line=3,title=RA001::50%25 of%0Alines"
    )


# --------------------------------------------------------------------- #
# CLI contract
# --------------------------------------------------------------------- #
def run_cli(*args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def test_cli_exits_zero_on_clean_file():
    result = run_cli(str(FIXTURE_DIR / "ra001_good.py"))
    assert result.returncode == 0
    assert result.stdout == ""


def test_cli_exits_one_with_rendered_findings_on_bad_file():
    path = FIXTURE_DIR / "ra001_bad.py"
    result = run_cli(str(path))
    assert result.returncode == 1
    (line, rule_id), = expected_markers(path)
    assert f"{path}:{line}: {rule_id}: " in result.stdout


def test_cli_select_restricts_rules():
    path = str(FIXTURE_DIR / "ra002_bad.py")
    scoped = run_cli("--select", "RA001", path)
    assert scoped.returncode == 0
    full = run_cli("--select", "RA002", path)
    assert full.returncode == 1


def test_cli_usage_errors_exit_two():
    assert run_cli().returncode == 2
    assert run_cli("--select", "RA999", "src").returncode == 2
    assert run_cli("--jobs", "0", "src").returncode == 2
    assert run_cli("--jobs", "fast", "src").returncode == 2


def test_cli_jobs_output_matches_sequential():
    path = str(FIXTURE_DIR / "ra008_bad.py")
    sequential = run_cli(path)
    parallel = run_cli("--jobs", "2", path)
    auto = run_cli("--jobs", "auto", path)
    assert sequential.returncode == 1
    assert parallel.stdout == sequential.stdout
    assert auto.stdout == sequential.stdout
    assert parallel.returncode == auto.returncode == 1


def test_cli_format_json():
    path = FIXTURE_DIR / "ra001_bad.py"
    result = run_cli("--format", "json", str(path))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    (line, rule_id), = expected_markers(path)
    assert [(e["file"], e["line"], e["rule"]) for e in payload] == [
        (str(path), line, rule_id)
    ]
    clean = run_cli("--format", "json", str(FIXTURE_DIR / "ra001_good.py"))
    assert clean.returncode == 0
    assert json.loads(clean.stdout) == []


def test_cli_format_github():
    path = FIXTURE_DIR / "ra001_bad.py"
    result = run_cli("--format", "github", str(path))
    assert result.returncode == 1
    (line, rule_id), = expected_markers(path)
    assert f"::error file={path},line={line},title={rule_id}::" in result.stdout


def test_cli_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in RULE_IDS:
        assert rule_id in result.stdout


# --------------------------------------------------------------------- #
# Self-scan: the repo's own trees must be clean (CI's blocking job).
# --------------------------------------------------------------------- #
def test_repo_self_scan_is_clean():
    findings = analyze_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    )
    assert findings == [], "\n".join(f.render() for f in findings)
