"""Tests for the ``repro.analysis`` AST invariant checker.

Three layers: the fixture corpus under ``tests/analysis_fixtures/``
(every rule has at least one fixture it catches — at the exact marked
line — and one it passes), the engine mechanics (suppressions, registry,
parse errors, path walking), and the CLI contract (exit codes, rendered
``file:line: RA###:`` findings, ``--list-rules``/``--select``).  The
final test is the self-scan: the analyzer must report zero findings over
the repo's own ``src``, ``tests`` and ``benchmarks`` trees — the same
invocation CI runs as a blocking job.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    PARSE_ERROR_RULE_ID,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    iter_python_files,
    register,
)
from repro.analysis.core import _REGISTRY

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_DIR = Path(__file__).resolve().parent / "analysis_fixtures"

RULE_IDS = ("RA001", "RA002", "RA003", "RA004", "RA005", "RA006")

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RA\d{3})")


def expected_markers(path: Path):
    """``{(line, rule_id)}`` declared by ``# expect: RA###`` comments."""
    markers = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(line)
        if match is not None:
            markers.add((lineno, match.group(1)))
    return markers


def findings_for(path: Path):
    return {
        (finding.line, finding.rule_id)
        for finding in analyze_paths([path])
    }


# --------------------------------------------------------------------- #
# Fixture corpus: each rule catches its bad fixture at the marked lines
# and stays silent on its good twin.
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_is_caught_at_marked_lines(rule_id):
    path = FIXTURE_DIR / f"{rule_id.lower()}_bad.py"
    markers = expected_markers(path)
    assert markers, f"{path} declares no # expect markers"
    assert findings_for(path) == markers


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    path = FIXTURE_DIR / f"{rule_id.lower()}_good.py"
    assert findings_for(path) == set()


def test_every_rule_registered_and_titled():
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == list(RULE_IDS)
    assert all(rule.title for rule in rules)


# --------------------------------------------------------------------- #
# Engine mechanics
# --------------------------------------------------------------------- #
BAD_RETURN = (
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._items = []\n"
    "    def items(self):\n"
    "        return self._items{comment}\n"
)


def test_suppression_silences_named_rule():
    source = BAD_RETURN.format(comment="  # repro: ignore[RA004] -- shared")
    assert analyze_source(source) == []


def test_suppression_bare_silences_all_rules():
    source = BAD_RETURN.format(comment="  # repro: ignore")
    assert analyze_source(source) == []


def test_suppression_for_other_rule_does_not_apply():
    source = BAD_RETURN.format(comment="  # repro: ignore[RA001]")
    findings = analyze_source(source)
    assert [finding.rule_id for finding in findings] == ["RA004"]


def test_suppression_accepts_id_lists_case_insensitively():
    source = BAD_RETURN.format(comment="  # repro: ignore[ra001, ra004]")
    assert analyze_source(source) == []


def test_unsuppressed_finding_reports_file_and_line():
    findings = analyze_source(BAD_RETURN.format(comment=""), path="box.py")
    assert len(findings) == 1
    finding = findings[0]
    assert (finding.file, finding.line, finding.rule_id) == ("box.py", 5, "RA004")
    assert finding.render().startswith("box.py:5: RA004: ")


def test_parse_error_becomes_ra000_finding():
    findings = analyze_source("def broken(:\n", path="broken.py")
    assert [finding.rule_id for finding in findings] == [PARSE_ERROR_RULE_ID]
    assert findings[0].file == "broken.py"


def test_findings_sort_by_file_line_rule():
    findings = [
        Finding("b.py", 1, "RA001", "x"),
        Finding("a.py", 9, "RA005", "x"),
        Finding("a.py", 2, "RA002", "x"),
    ]
    assert sorted(findings) == [findings[2], findings[1], findings[0]]


def test_register_rejects_bad_and_duplicate_ids():
    class BadId(Rule):
        rule_id = "X1"

    with pytest.raises(ValueError, match="RA###"):
        register(BadId)

    class Duplicate(Rule):
        rule_id = "RA001"

    with pytest.raises(ValueError, match="duplicate"):
        register(Duplicate)
    assert _REGISTRY["RA001"].__name__ != "Duplicate"


def test_select_unknown_rule_raises_keyerror():
    with pytest.raises(KeyError, match="RA999"):
        all_rules(["RA999"])


def test_iter_python_files_excludes_fixture_corpus_but_honours_files():
    walked = list(iter_python_files([REPO_ROOT / "tests"]))
    assert not any("analysis_fixtures" in str(path) for path in walked)
    assert Path(__file__).resolve() in {path.resolve() for path in walked}
    explicit = FIXTURE_DIR / "ra004_bad.py"
    assert list(iter_python_files([explicit])) == [explicit]


def test_ra002_private_access_exempt_inside_graph_package():
    source = "def peek(graph):\n    return graph._out\n"
    inside = analyze_source(source, path="src/repro/graph/patch.py")
    outside = analyze_source(source, path="src/repro/batch/patch.py")
    assert inside == []
    assert [finding.rule_id for finding in outside] == ["RA002"]


def test_ra003_resolves_local_alias_to_module_level_function():
    good = (
        "def work(x):\n"
        "    return x\n"
        "def run(pool, items):\n"
        "    worker = work\n"
        "    return [pool.submit(worker, i) for i in items]\n"
    )
    bad = (
        "def run(pool, items):\n"
        "    worker = lambda x: x\n"
        "    return [pool.submit(worker, i) for i in items]\n"
    )
    assert analyze_source(good) == []
    assert [finding.rule_id for finding in analyze_source(bad)] == ["RA003"]


def test_ra006_exempt_inside_obs_package():
    source = (
        "from repro.obs import MetricsRegistry\n"
        "NULL = MetricsRegistry()\n"
        "def warm():\n"
        "    NULL.counter('repro_warm_total').inc()\n"
    )
    inside = analyze_source(source, path="src/repro/obs/metrics.py")
    outside = analyze_source(source, path="src/repro/batch/patch.py")
    assert inside == []
    assert [finding.rule_id for finding in outside] == ["RA006", "RA006"]


def test_ra006_closure_sees_enclosing_function_binding():
    source = (
        "def make_reporter(metrics):\n"
        "    registry = metrics\n"
        "    def report():\n"
        "        registry.counter('repro_total').inc()\n"
        "    return report\n"
    )
    assert analyze_source(source) == []


def test_ra006_class_body_does_not_leak_bindings_into_methods():
    source = (
        "from repro.obs import resolve_registry\n"
        "registry = resolve_registry(None)\n"
        "class Reporter:\n"
        "    def report(self):\n"
        "        registry.gauge('repro_depth').set(1)\n"
    )
    assert [finding.rule_id for finding in analyze_source(source)] == ["RA006"]


def test_ra001_nested_closure_does_not_inherit_lock_state():
    source = (
        "class Service:\n"
        "    _GUARDED_BY_LOCK = frozenset({'_count'})\n"
        "    def hand_out(self):\n"
        "        with self._lock:\n"
        "            return lambda: self._count\n"
    )
    findings = analyze_source(source)
    assert [finding.rule_id for finding in findings] == ["RA001"]


# --------------------------------------------------------------------- #
# CLI contract
# --------------------------------------------------------------------- #
def run_cli(*args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def test_cli_exits_zero_on_clean_file():
    result = run_cli(str(FIXTURE_DIR / "ra001_good.py"))
    assert result.returncode == 0
    assert result.stdout == ""


def test_cli_exits_one_with_rendered_findings_on_bad_file():
    path = FIXTURE_DIR / "ra001_bad.py"
    result = run_cli(str(path))
    assert result.returncode == 1
    (line, rule_id), = expected_markers(path)
    assert f"{path}:{line}: {rule_id}: " in result.stdout


def test_cli_select_restricts_rules():
    path = str(FIXTURE_DIR / "ra002_bad.py")
    scoped = run_cli("--select", "RA001", path)
    assert scoped.returncode == 0
    full = run_cli("--select", "RA002", path)
    assert full.returncode == 1


def test_cli_usage_errors_exit_two():
    assert run_cli().returncode == 2
    assert run_cli("--select", "RA999", "src").returncode == 2


def test_cli_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in RULE_IDS:
        assert rule_id in result.stdout


# --------------------------------------------------------------------- #
# Self-scan: the repo's own trees must be clean (CI's blocking job).
# --------------------------------------------------------------------- #
def test_repo_self_scan_is_clean():
    findings = analyze_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    )
    assert findings == [], "\n".join(f.render() for f in findings)
