"""Tests for the single-query enumerators (brute force, pruned DFS, PathEnum)."""

import pytest

from repro.enumeration.brute_force import (
    count_paths_brute_force,
    enumerate_paths_brute_force,
)
from repro.enumeration.dfs_baseline import enumerate_paths_pruned_dfs
from repro.enumeration.path_enum import PathEnum, enumerate_paths
from repro.enumeration.paths import sort_paths, validate_path
from repro.enumeration.search_order import choose_budget_split, estimate_side_cost
from repro.bfs.distance_index import build_index_for_queries
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    paper_example_graph,
    powerlaw_directed,
    random_directed_gnm,
)
from repro.queries.query import HCSTQuery


def test_brute_force_on_diamond(diamond_graph):
    paths = sort_paths(enumerate_paths_brute_force(diamond_graph, 0, 3, 3))
    assert paths == [(0, 3), (0, 1, 3), (0, 2, 3)]
    assert count_paths_brute_force(diamond_graph, 0, 3, 3) == 3


def test_brute_force_respects_hop_constraint(diamond_graph):
    assert sort_paths(enumerate_paths_brute_force(diamond_graph, 0, 3, 1)) == [(0, 3)]


def test_brute_force_validation():
    graph = DiGraph.from_edges([(0, 1)])
    with pytest.raises(ValueError):
        enumerate_paths_brute_force(graph, 0, 0, 2)


def test_paper_example_q0_paths():
    """Example 2.1: q0(v0, v11, 5) has exactly the three listed paths."""
    graph = paper_example_graph()
    expected = sort_paths([
        (0, 1, 7, 10, 12, 11),
        (0, 4, 9, 3, 6, 11),
        (0, 4, 9, 15, 6, 11),
    ])
    assert sort_paths(enumerate_paths_brute_force(graph, 0, 11, 5)) == expected
    assert sort_paths(enumerate_paths(graph, 0, 11, 5)) == expected


def test_paper_example_q1_paths():
    """Fig. 3(b): q1(v2, v13, 5) has exactly the three listed paths."""
    graph = paper_example_graph()
    expected = sort_paths([
        (2, 1, 7, 10, 12, 13),
        (2, 4, 9, 3, 6, 13),
        (2, 4, 9, 15, 6, 13),
    ])
    assert sort_paths(enumerate_paths(graph, 2, 13, 5)) == expected


def test_paper_example_q3_prunes_to_two_paths():
    """Example 3.1: q3(v4, v14, 4) has two results and v8/v15 are pruned."""
    graph = paper_example_graph()
    expected = sort_paths([(4, 9, 3, 6, 14), (4, 9, 15, 6, 14)])
    assert sort_paths(enumerate_paths(graph, 4, 14, 4)) == expected


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
def test_all_enumerators_agree_on_random_graphs(seed, k):
    graph = random_directed_gnm(30, 140, seed=seed)
    s, t = 0, 17
    expected = sort_paths(enumerate_paths_brute_force(graph, s, t, k))
    assert sort_paths(enumerate_paths_pruned_dfs(graph, s, t, k)) == expected
    assert sort_paths(enumerate_paths(graph, s, t, k)) == expected
    assert sort_paths(enumerate_paths(graph, s, t, k, optimize_search_order=True)) == expected


def test_pathenum_on_hub_graph_matches_brute_force(hub_graph):
    for s, t, k in [(0, 5, 3), (3, 0, 4), (10, 2, 5)]:
        expected = sort_paths(enumerate_paths_brute_force(hub_graph, s, t, k))
        assert sort_paths(enumerate_paths(hub_graph, s, t, k)) == expected


def test_pathenum_returns_valid_paths(random_graph):
    query = HCSTQuery(0, 7, 4)
    enumerator = PathEnum(random_graph)
    for path in enumerator.enumerate(query):
        validate_path(random_graph, path, s=0, t=7, k=4)


def test_pathenum_unreachable_target_returns_empty():
    graph = DiGraph.from_edges([(0, 1), (2, 3)])
    assert enumerate_paths(graph, 0, 3, 4) == []


def test_pathenum_k_equals_one():
    graph = DiGraph.from_edges([(0, 1), (1, 0)])
    assert enumerate_paths(graph, 0, 1, 1) == [(0, 1)]


def test_pathenum_count_matches_enumerate(random_graph):
    enumerator = PathEnum(random_graph)
    query = HCSTQuery(1, 20, 4)
    assert enumerator.count(query) == len(enumerator.enumerate(query))


def test_pathenum_with_shared_index_matches_private_index(random_graph):
    queries = [HCSTQuery(0, 7, 4), HCSTQuery(3, 11, 3)]
    index = build_index_for_queries(random_graph, [(q.s, q.t, q.k) for q in queries])
    shared = PathEnum(random_graph, index=index)
    private = PathEnum(random_graph)
    for query in queries:
        assert sort_paths(shared.enumerate(query)) == sort_paths(private.enumerate(query))


def test_choose_budget_split_is_valid():
    graph = powerlaw_directed(200, 3, seed=1)
    query = HCSTQuery(0, 10, 5)
    index = build_index_for_queries(graph, [(0, 10, 5)])
    forward, backward = choose_budget_split(query, index)
    assert forward + backward == query.k
    assert forward >= 1
    assert backward >= 0


def test_estimate_side_cost_monotone_with_levels():
    assert estimate_side_cost([]) == 0.0
    shallow = estimate_side_cost([1, 5])
    deep = estimate_side_cost([1, 5, 25])
    assert deep > shallow
