"""Unit tests for the query sharing graph Ψ and the result cache R."""

import pytest

from repro.batch.cache import ResultCache
from repro.batch.sharing_graph import QueryNode, QuerySharingGraph
from repro.queries.query import Direction, HCsPathQuery


def _node(vertex, budget, direction=Direction.FORWARD):
    return HCsPathQuery(vertex, budget, direction)


def test_add_nodes_and_edges():
    psi = QuerySharingGraph(Direction.FORWARD)
    provider = _node(1, 2)
    consumer = _node(0, 3)
    psi.add_edge(provider, consumer)
    assert provider in psi
    assert psi.consumers_of(provider) == [consumer]
    assert psi.providers_of(consumer) == [provider]
    assert psi.num_nodes == 2
    assert psi.num_edges == 1


def test_duplicate_edges_ignored():
    psi = QuerySharingGraph(Direction.FORWARD)
    provider, consumer = _node(1, 2), _node(0, 3)
    psi.add_edge(provider, consumer)
    psi.add_edge(provider, consumer)
    assert psi.num_edges == 1


def test_self_edge_rejected():
    psi = QuerySharingGraph(Direction.FORWARD)
    node = _node(1, 2)
    with pytest.raises(ValueError):
        psi.add_edge(node, node)


def test_direction_mismatch_rejected():
    psi = QuerySharingGraph(Direction.FORWARD)
    with pytest.raises(ValueError):
        psi.add_node(_node(1, 2, Direction.BACKWARD))


def test_cycle_detection_and_rejection():
    psi = QuerySharingGraph(Direction.FORWARD)
    a, b, c = _node(0, 3), _node(1, 2), _node(2, 1)
    psi.add_edge(a, b)
    psi.add_edge(b, c)
    assert psi.would_create_cycle(c, a)
    with pytest.raises(ValueError):
        psi.add_edge(c, a)
    assert psi.is_dag()


def test_topological_order_providers_first():
    psi = QuerySharingGraph(Direction.FORWARD)
    common = _node(5, 1)
    root_a, root_b = _node(0, 3), _node(1, 3)
    query_a, query_b = QueryNode(0), QueryNode(1)
    psi.add_edge(root_a, query_a)
    psi.add_edge(root_b, query_b)
    psi.add_edge(common, root_a)
    psi.add_edge(common, root_b)
    order = psi.topological_order()
    assert order.index(common) < order.index(root_a)
    assert order.index(common) < order.index(root_b)
    assert order.index(root_a) < order.index(query_a)
    assert len(order) == psi.num_nodes


def test_node_type_accessors():
    psi = QuerySharingGraph(Direction.BACKWARD)
    root = _node(3, 2, Direction.BACKWARD)
    psi.add_edge(root, QueryNode(7))
    assert psi.hc_s_path_nodes() == [root]
    assert psi.query_nodes() == [QueryNode(7)]


def test_cache_put_get_and_reuse_count():
    cache = ResultCache()
    node = _node(0, 2)
    cache.put(node, [(0,), (0, 1)], consumers=2)
    assert node in cache
    assert cache.get(node) == ((0,), (0, 1))
    assert cache.reuse_count == 1
    assert cache.peek(node) is not None


def test_cache_get_and_peek_return_immutable_results():
    """Regression: consumers must not be able to corrupt a spliced provider
    result for every later reader — the cache hands out tuples, and the
    stored paths do not alias the sequence passed to ``put``."""
    cache = ResultCache()
    node = _node(0, 2)
    original = [(0,), (0, 1)]
    cache.put(node, original, consumers=3)
    original.append((9, 9))  # mutating the caller's list must not leak in
    assert cache.get(node) == ((0,), (0, 1))
    assert isinstance(cache.get(node), tuple)
    assert isinstance(cache.peek(node), tuple)
    with pytest.raises(AttributeError):
        cache.get(node).append((7,))  # tuples have no append
    assert cache.peek(node) == ((0,), (0, 1))


def test_cache_zero_consumers_not_stored():
    cache = ResultCache()
    node = _node(0, 2)
    cache.put(node, [(0,)], consumers=0)
    assert node not in cache


def test_cache_eviction_after_last_consumer():
    cache = ResultCache()
    node = _node(0, 2)
    cache.put(node, [(0,)], consumers=2)
    cache.release(node)
    assert node in cache
    cache.release(node)
    assert node not in cache
    assert cache.evicted_count == 1
    with pytest.raises(KeyError):
        cache.get(node)


def test_cache_release_unknown_node_is_noop():
    cache = ResultCache()
    cache.release(_node(9, 1))  # must not raise


def test_cache_peak_entries_tracks_high_water_mark():
    cache = ResultCache()
    a, b = _node(0, 1), _node(1, 1)
    cache.put(a, [(0,)], consumers=1)
    cache.put(b, [(1,)], consumers=1)
    cache.release(a)
    assert cache.peak_entries == 2
    assert cache.live_entries == 1


def test_cache_double_put_rejected():
    cache = ResultCache()
    node = _node(0, 1)
    cache.put(node, [(0,)], consumers=1)
    with pytest.raises(ValueError):
        cache.put(node, [(0,)], consumers=1)
