"""Unit tests for Algorithm 3 (DetectCommonQuery)."""

import pytest

from repro.batch.detection import detect_common_queries
from repro.batch.sharing_graph import QueryNode
from repro.bfs.distance_index import build_index_for_queries
from repro.graph.generators import paper_example_graph, random_directed_gnm
from repro.queries.query import Direction, HCSTQuery, HCsPathQuery


def _detect(graph, queries_by_position, direction, max_depth=None, backend="csr"):
    triples = [(q.s, q.t, q.k) for q in queries_by_position.values()]
    index = build_index_for_queries(graph, triples)
    if direction is Direction.FORWARD:
        budgets = {pos: q.forward_budget for pos, q in queries_by_position.items()}
    else:
        budgets = {pos: q.backward_budget for pos, q in queries_by_position.items()}
    return detect_common_queries(
        graph,
        queries_by_position,
        direction,
        index,
        budgets,
        max_depth=max_depth,
        backend=backend,
    )


def test_every_query_gets_a_root_node(paper_graph, paper_queries):
    queries = dict(enumerate(paper_queries))
    outcome = _detect(paper_graph, queries, Direction.FORWARD)
    for position, query in queries.items():
        root = outcome.root_by_position[position]
        assert root.vertex == query.s
        assert root.budget == query.forward_budget
        assert QueryNode(position) in outcome.sharing_graph.consumers_of(root)


def test_paper_example_detects_common_query_at_v1():
    """Fig. 6: q0, q1, q2 share the dominating HC-s path query q_{v1,2,G}."""
    graph = paper_example_graph()
    cluster = {
        0: HCSTQuery(0, 11, 5),
        1: HCSTQuery(2, 13, 5),
        2: HCSTQuery(5, 12, 5),
    }
    outcome = _detect(graph, cluster, Direction.FORWARD)
    psi = outcome.sharing_graph
    common_v1 = HCsPathQuery(1, 2, Direction.FORWARD)
    assert common_v1 in psi
    consumers = psi.consumers_of(common_v1)
    assert outcome.root_by_position[0] in consumers
    assert outcome.root_by_position[1] in consumers
    assert outcome.root_by_position[2] in consumers


def test_paper_example_detects_common_query_at_v4():
    """Fig. 6: q0 and q1 additionally share q_{v4,2,G}."""
    graph = paper_example_graph()
    cluster = {
        0: HCSTQuery(0, 11, 5),
        1: HCSTQuery(2, 13, 5),
        2: HCSTQuery(5, 12, 5),
    }
    outcome = _detect(graph, cluster, Direction.FORWARD)
    psi = outcome.sharing_graph
    common_v4 = HCsPathQuery(4, 2, Direction.FORWARD)
    assert common_v4 in psi
    consumers = psi.consumers_of(common_v4)
    assert outcome.root_by_position[0] in consumers
    assert outcome.root_by_position[1] in consumers
    assert outcome.root_by_position[2] not in consumers


def test_paper_example_backward_reuses_v12_root():
    """Fig. 5(b): the enumeration from v12 is shared between the backward
    queries of q0 and q1, reusing q2's root q_{v12,2,Gr}."""
    graph = paper_example_graph()
    cluster = {
        0: HCSTQuery(0, 11, 5),
        1: HCSTQuery(2, 13, 5),
        2: HCSTQuery(5, 12, 5),
    }
    outcome = _detect(graph, cluster, Direction.BACKWARD)
    psi = outcome.sharing_graph
    v12_root = outcome.root_by_position[2]
    assert v12_root.vertex == 12
    consumers = psi.consumers_of(v12_root)
    assert outcome.root_by_position[0] in consumers
    assert outcome.root_by_position[1] in consumers


def test_identical_queries_share_one_root():
    graph = random_directed_gnm(40, 200, seed=1)
    cluster = {0: HCSTQuery(0, 9, 4), 1: HCSTQuery(0, 9, 4), 2: HCSTQuery(0, 9, 4)}
    outcome = _detect(graph, cluster, Direction.FORWARD)
    roots = {outcome.root_by_position[pos] for pos in cluster}
    assert len(roots) == 1
    root = next(iter(roots))
    assert len(outcome.sharing_graph.consumers_of(root)) == 3


def test_same_source_different_budget_cross_budget_sharing():
    """The larger-budget root provides for the smaller-budget one."""
    graph = random_directed_gnm(40, 200, seed=2)
    cluster = {0: HCSTQuery(0, 9, 6), 1: HCSTQuery(0, 11, 4)}
    outcome = _detect(graph, cluster, Direction.FORWARD)
    psi = outcome.sharing_graph
    big = outcome.root_by_position[0]    # budget 3
    small = outcome.root_by_position[1]  # budget 2
    assert big.budget > small.budget
    assert small in psi.consumers_of(big)


def test_sharing_graph_is_always_a_dag():
    for seed in range(5):
        graph = random_directed_gnm(50, 300, seed=seed)
        cluster = {
            0: HCSTQuery(0, 10, 4),
            1: HCSTQuery(1, 10, 4),
            2: HCSTQuery(0, 11, 5),
            3: HCSTQuery(2, 12, 3),
        }
        for direction in (Direction.FORWARD, Direction.BACKWARD):
            outcome = _detect(graph, cluster, direction)
            assert outcome.sharing_graph.is_dag()


def test_served_queries_cover_consumer_positions(paper_graph):
    cluster = {
        0: HCSTQuery(0, 11, 5),
        1: HCSTQuery(2, 13, 5),
        2: HCSTQuery(5, 12, 5),
    }
    outcome = _detect(paper_graph, cluster, Direction.FORWARD)
    common_v1 = HCsPathQuery(1, 2, Direction.FORWARD)
    assert outcome.served_queries[common_v1] == {0, 1, 2}
    # Roots serve at least their own query.
    for position in cluster:
        root = outcome.root_by_position[position]
        assert position in outcome.served_queries[root]


def test_max_depth_limits_detection():
    graph = paper_example_graph()
    cluster = {
        0: HCSTQuery(0, 11, 5),
        1: HCSTQuery(2, 13, 5),
        2: HCSTQuery(5, 12, 5),
    }
    shallow = _detect(graph, cluster, Direction.FORWARD, max_depth=0)
    # With no expansion beyond the roots, no common vertex can be detected.
    assert shallow.num_shared_nodes == 0
    deep = _detect(graph, cluster, Direction.FORWARD, max_depth=None)
    assert deep.num_shared_nodes >= 1


def _psi_signature(outcome):
    """Everything that defines a detection outcome, in hashable form: the
    node set and edge set of Ψ, the per-position roots/budgets and the
    served-query map."""
    psi = outcome.sharing_graph
    nodes = frozenset(psi.nodes())
    edges = frozenset(
        (provider, consumer)
        for provider in psi.nodes()
        for consumer in psi.consumers_of(provider)
    )
    served = {node: frozenset(ps) for node, ps in outcome.served_queries.items()}
    return (
        nodes,
        edges,
        dict(outcome.root_by_position),
        dict(outcome.budget_by_position),
        served,
    )


@pytest.mark.parametrize("direction", [Direction.FORWARD, Direction.BACKWARD])
@pytest.mark.parametrize("max_depth", [None, 1, 2])
@pytest.mark.parametrize("seed", range(4))
def test_detection_backends_produce_identical_psi(seed, max_depth, direction):
    """Differential: the CSR-snapshot backend and the original DiGraph
    adjacency walk yield byte-identical sharing graphs Ψ."""
    graph = random_directed_gnm(40, 220, seed=seed)
    cluster = {
        0: HCSTQuery(0, 10, 4),
        1: HCSTQuery(1, 10, 4),
        2: HCSTQuery(0, 11, 5),
        3: HCSTQuery(2, 12, 3),
    }
    csr = _detect(graph, cluster, direction, max_depth=max_depth, backend="csr")
    via_digraph = _detect(
        graph, cluster, direction, max_depth=max_depth, backend="digraph"
    )
    assert _psi_signature(csr) == _psi_signature(via_digraph)


def test_detection_backends_identical_on_paper_example():
    graph = paper_example_graph()
    cluster = {
        0: HCSTQuery(0, 11, 5),
        1: HCSTQuery(2, 13, 5),
        2: HCSTQuery(5, 12, 5),
    }
    for direction in (Direction.FORWARD, Direction.BACKWARD):
        csr = _detect(graph, cluster, direction, backend="csr")
        via_digraph = _detect(graph, cluster, direction, backend="digraph")
        assert _psi_signature(csr) == _psi_signature(via_digraph)


def test_detection_rejects_unknown_backend(paper_graph):
    with pytest.raises(ValueError):
        _detect(
            paper_graph, {0: HCSTQuery(0, 11, 5)}, Direction.FORWARD, backend="numpy"
        )


def test_need_is_monotone_in_distance(paper_graph):
    cluster = {0: HCSTQuery(0, 11, 5)}
    outcome = _detect(paper_graph, cluster, Direction.FORWARD)
    root = outcome.root_by_position[0]
    # v12 is one hop from the target v11; v1 is four hops away.
    assert outcome.need(root, 12) <= outcome.need(root, 1)
    # Admissibility uses the same quantity.
    assert outcome.admissible(12, root.budget, root)
