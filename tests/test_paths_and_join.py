"""Unit tests for path primitives and the ⊕ join."""

import pytest

from repro.enumeration.join import PathJoinPolicy, join_path_sets
from repro.enumeration.paths import (
    concatenate,
    is_simple,
    path_length,
    reverse_path,
    sort_paths,
    validate_path,
)
from repro.graph.digraph import DiGraph


def test_path_length_and_simplicity():
    assert path_length((0, 1, 2)) == 2
    assert is_simple((0, 1, 2))
    assert not is_simple((0, 1, 0))


def test_concatenate_requires_matching_junction():
    assert concatenate((0, 1), (1, 2, 3)) == (0, 1, 2, 3)
    with pytest.raises(ValueError):
        concatenate((0, 1), (2, 3))
    with pytest.raises(ValueError):
        concatenate((), (1,))


def test_reverse_path():
    assert reverse_path((0, 1, 2)) == (2, 1, 0)


def test_validate_path_accepts_valid_and_rejects_invalid():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    validate_path(graph, (0, 1, 2), s=0, t=2, k=2)
    with pytest.raises(AssertionError):
        validate_path(graph, (0, 1, 2), s=0, t=2, k=1)     # too long
    with pytest.raises(AssertionError):
        validate_path(graph, (0, 2), s=0, t=2, k=2)        # missing edge
    with pytest.raises(AssertionError):
        validate_path(graph, (1, 2), s=0, t=2, k=2)        # wrong source


def test_sort_paths_is_canonical():
    paths = [(0, 2, 3), (0, 1), (0, 1, 3)]
    assert sort_paths(paths) == [(0, 1), (0, 1, 3), (0, 2, 3)]


def test_join_short_path_uses_forward_complete_case():
    # Path 0 -> 3 of length 1 must come from the forward side only.
    forward = [(0,), (0, 3), (0, 1)]
    backward = [(3,), (3, 1)]
    policy = PathJoinPolicy(forward_budget=2, backward_budget=1)
    joined = join_path_sets(forward, backward, target=3, policy=policy)
    assert (0, 3) in joined


def test_join_produces_no_duplicates_for_multi_split_paths():
    # The path 0-1-3 (length 2 <= forward budget) could also be formed by
    # joining prefix (0, 1) with suffix (1, 3); the split rule must emit it
    # exactly once.
    forward = [(0,), (0, 1), (0, 1, 3)]
    backward = [(3,), (3, 1)]
    policy = PathJoinPolicy(forward_budget=2, backward_budget=1)
    joined = join_path_sets(forward, backward, target=3, policy=policy)
    assert joined.count((0, 1, 3)) == 1


def test_join_connects_forward_and_backward_halves():
    # forward: 0 -> 1 -> 2 (budget 2); backward from 4 on Gr: 4 <- 3 <- 2.
    forward = [(0, 1, 2)]
    backward = [(4, 3, 2)]
    policy = PathJoinPolicy(forward_budget=2, backward_budget=2)
    joined = join_path_sets(forward, backward, target=4, policy=policy)
    assert joined == [(0, 1, 2, 3, 4)]


def test_join_rejects_non_simple_combinations():
    forward = [(0, 1, 2)]
    backward = [(4, 1, 2)]  # re-orients to 2 -> 1 -> 4, repeating vertex 1
    policy = PathJoinPolicy(forward_budget=2, backward_budget=2)
    assert join_path_sets(forward, backward, target=4, policy=policy) == []


def test_join_respects_budgets():
    # Forward paths longer than the forward budget must be ignored.
    forward = [(0, 1, 2, 3)]
    backward = [(5, 4, 3)]
    policy = PathJoinPolicy(forward_budget=2, backward_budget=2)
    assert join_path_sets(forward, backward, target=5, policy=policy) == []


def test_join_policy_hop_constraint():
    assert PathJoinPolicy(3, 2).hop_constraint == 5
