"""Differential and lifecycle tests for the continuous-ingestion service.

The contract under test: queries trickled through an
:class:`IngestionService` — one at a time, in bursts, or concurrently from
multiple submitter threads — resolve to path lists identical to a single
closed-batch ``engine.run()`` over the same queries, for every algorithm
and worker setting; plus ticket-error propagation, backpressure and
``close()`` semantics.
"""

import threading

import pytest

from repro.batch.engine import ALGORITHMS, BatchQueryEngine
from repro.batch.service import (
    AdmissionPolicy,
    IngestionService,
    ServiceClosedError,
    ServiceOverloadedError,
    serve,
)
from repro.enumeration.paths import sort_paths
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries
from repro.queries.query import HCSTQuery

#: Generous per-ticket timeout: a deadlocked scheduler fails the test
#: instead of hanging the suite.
TIMEOUT = 60.0


def canon(paths):
    """Canonical path-set form: micro-batch composition may legally change
    the enumeration *order* of one query's paths (the search-order
    optimiser and the sharing context see a different workload than the
    closed-batch oracle), but never the set."""
    return sort_paths(list(paths))

_GRAPH = random_directed_gnm(24, 80, seed=7)
_QUERIES = generate_random_queries(_GRAPH, 6, min_k=2, max_k=4, seed=7)

_REFERENCE = {}


def _reference(algorithm):
    if algorithm not in _REFERENCE:
        _REFERENCE[algorithm] = BatchQueryEngine(
            _GRAPH, algorithm=algorithm
        ).run(_QUERIES)
    return _REFERENCE[algorithm]


# --------------------------------------------------------------------- #
# Differential suite: service ≡ closed-batch run()
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("num_workers", [1, "auto"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_trickled_service_matches_closed_batch(algorithm, num_workers):
    """One-at-a-time submission across all 7 algorithms × workers."""
    with serve(
        _GRAPH,
        algorithm=algorithm,
        num_workers=num_workers,
        max_batch_size=3,
        max_delay_s=0.005,
    ) as service:
        tickets = [service.submit(query) for query in _QUERIES]
        for position, ticket in enumerate(tickets):
            assert canon(ticket.result(timeout=TIMEOUT)) == canon(
                _reference(algorithm).paths_at(position)
            )
    stats = service.stats()
    assert stats.admitted == len(_QUERIES)
    assert stats.completed == len(_QUERIES)
    assert stats.failed == 0
    assert stats.batches_dispatched >= 1
    assert stats.mean_batch_size > 0


@pytest.mark.parametrize("algorithm", ["basic+", "batch+"])
def test_concurrent_submitters_match_closed_batch(algorithm):
    """Multiple threads hammering submit() still get per-query answers
    identical to the closed-batch oracle."""
    graph = random_directed_gnm(30, 110, seed=3)
    queries = generate_random_queries(graph, 12, min_k=2, max_k=4, seed=3)
    oracle = BatchQueryEngine(graph, algorithm=algorithm).run(queries)
    results = {}
    errors = []

    with serve(
        graph, algorithm=algorithm, max_batch_size=4, max_delay_s=0.01
    ) as service:

        def submitter(positions):
            try:
                for position in positions:
                    ticket = service.submit(queries[position])
                    results[position] = canon(ticket.result(timeout=TIMEOUT))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=submitter, args=(range(i, 12, 3),))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(TIMEOUT)
    assert not errors
    assert results == {
        position: canon(paths)
        for position, paths in oracle.paths_by_position.items()
    }


def test_duplicate_queries_each_get_their_own_ticket():
    query = _QUERIES[0]
    with serve(_GRAPH, algorithm="batch+") as service:
        tickets = service.submit_many([query, query, query])
        answers = [ticket.result(timeout=TIMEOUT) for ticket in tickets]
    assert answers[0] == answers[1] == answers[2]
    assert canon(answers[0]) == canon(_reference("batch+").paths_at(0))


def test_forced_parallel_service_reuses_one_pool_across_micro_batches():
    graph = random_directed_gnm(30, 110, seed=5)
    queries = generate_random_queries(graph, 12, min_k=2, max_k=4, seed=5)
    oracle = BatchQueryEngine(graph, algorithm="batch+").run(queries)
    service = IngestionService(
        graph,
        algorithm="batch+",
        num_workers=2,
        policy=AdmissionPolicy(
            max_batch_size=4, max_delay_s=0.005, join_pending=False
        ),
    )
    try:
        first = service.submit_many(queries[:6])
        for position, ticket in enumerate(first):
            assert canon(ticket.result(timeout=TIMEOUT)) == canon(
                oracle.paths_at(position)
            )
        pool_after_first = service._pool
        assert pool_after_first is not None  # parallel plan opened the pool
        second = service.submit_many(queries[6:])
        for offset, ticket in enumerate(second):
            assert canon(ticket.result(timeout=TIMEOUT)) == canon(
                oracle.paths_at(6 + offset)
            )
        assert service._pool is pool_after_first  # reused, not respawned
        assert service.stats().batches_dispatched >= 2
    finally:
        service.close()


def test_join_pending_fast_path_merges_similar_queries():
    """Identical queries queued behind a full batch join it via the
    similarity fast path (µ = 1 for identical neighbourhoods)."""
    query = _QUERIES[0]
    service = IngestionService(
        _GRAPH,
        algorithm="batch+",
        policy=AdmissionPolicy(
            max_batch_size=2, max_delay_s=0.01, join_similarity=0.99
        ),
        start=False,
    )
    # Queue four identical queries while the scheduler is stopped: the
    # first two fill the batch, the other two can only ride along through
    # the join-pending fast path.
    tickets = service.submit_many([query] * 4)
    service.start()
    try:
        for ticket in tickets:
            assert canon(ticket.result(timeout=TIMEOUT)) == canon(
                _reference("batch+").paths_at(0)
            )
        stats = service.stats()
        assert stats.joined_fast_path >= 2
        assert stats.batches_dispatched == 1
        assert stats.mean_batch_size == 4.0
    finally:
        service.close()


def test_graph_mutation_between_micro_batches_recycles_stale_pool():
    """Workers hold a pickled graph copy; after an in-place mutation the
    service must respawn the pool against the new snapshot, not silently
    keep serving from the stale one."""
    graph = random_directed_gnm(30, 110, seed=6)
    queries = generate_random_queries(graph, 6, min_k=2, max_k=4, seed=6)
    service = IngestionService(
        graph,
        algorithm="batch+",
        num_workers=2,
        policy=AdmissionPolicy(max_batch_size=6, max_delay_s=0.005),
    )
    try:
        for ticket in service.submit_many(queries):
            ticket.result(timeout=TIMEOUT)
        stale_pool = service._pool
        assert stale_pool is not None
        # Mutate: add an edge that creates new paths for the queries.
        for u in graph.vertices():
            for v in graph.vertices():
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    break
            else:
                continue
            break
        oracle = BatchQueryEngine(graph, algorithm="batch+").run(queries)
        tickets = service.submit_many(queries)
        for position, ticket in enumerate(tickets):
            assert canon(ticket.result(timeout=TIMEOUT)) == canon(
                oracle.paths_at(position)
            )
        assert service._pool is not stale_pool  # recycled, not reused stale
    finally:
        service.close()


def test_unscorable_query_behind_batch_cut_does_not_kill_scheduler():
    """A query with out-of-graph endpoints sitting beyond the batch cut is
    hit by the admission scorer first; scoring must skip it (it then fails
    inside its own batch) instead of killing the scheduler thread."""
    poisoned = HCSTQuery(0, _GRAPH.num_vertices + 7, 3)
    service = IngestionService(
        _GRAPH,
        algorithm="batch+",
        policy=AdmissionPolicy(
            max_batch_size=2, max_delay_s=0.01, join_similarity=0.0
        ),
        start=False,
    )
    tickets = service.submit_many(_QUERIES[:2] + [poisoned] + _QUERIES[2:4])
    service.start()
    try:
        with pytest.raises(ValueError):
            tickets[2].result(timeout=TIMEOUT)
        for index in (0, 1, 3, 4):
            assert tickets[index].result(timeout=TIMEOUT) is not None
    finally:
        service.close()


def test_close_without_drain_during_delay_window_fails_queued_tickets():
    """close(drain=False) while the scheduler sits in the batching delay
    window must fail the queued tickets, not dispatch them anyway."""
    import time as _time

    service = IngestionService(
        _GRAPH,
        algorithm="batch+",
        policy=AdmissionPolicy(max_batch_size=64, max_delay_s=30.0),
    )
    tickets = service.submit_many(_QUERIES)
    _time.sleep(0.1)  # let the scheduler enter the delay window
    service.close(drain=False)
    for ticket in tickets:
        assert ticket.done()
        with pytest.raises(ServiceClosedError):
            ticket.result(timeout=0.0)


def test_stream_parallel_rejects_stale_pool():
    """Engine-level pools are caller-owned: a plan built after a graph
    mutation must refuse a pool spawned before it."""
    graph = random_directed_gnm(20, 70, seed=8)
    queries = generate_random_queries(graph, 6, min_k=2, max_k=3, seed=8)
    engine = BatchQueryEngine(graph, algorithm="basic", num_workers=2)
    pool = engine.create_pool(max_workers=2)
    try:
        assert dict(engine.stream(queries, ordered=True, pool=pool)) == dict(
            engine.stream(queries, ordered=True)
        )
        graph.add_edge(*[
            (u, v)
            for u in graph.vertices()
            for v in graph.vertices()
            if u != v and not graph.has_edge(u, v)
        ][0])
        with pytest.raises(RuntimeError, match="open a fresh pool"):
            list(engine.stream(queries, ordered=True, pool=pool))
    finally:
        pool.shutdown()


# --------------------------------------------------------------------- #
# Error propagation and lifecycle
# --------------------------------------------------------------------- #
def test_ticket_error_propagation_and_scheduler_survival():
    """A query that fails inside its micro-batch resolves its ticket with
    the exception; the scheduler keeps serving later submissions."""
    graph = random_directed_gnm(12, 40, seed=1)
    good = generate_random_queries(graph, 2, min_k=2, max_k=3, seed=1)
    poisoned = HCSTQuery(0, graph.num_vertices + 7, 3)
    with serve(
        graph, algorithm="onepass", max_batch_size=1, max_delay_s=0.0
    ) as service:
        bad_ticket = service.submit(poisoned)
        with pytest.raises(ValueError):
            bad_ticket.result(timeout=TIMEOUT)
        assert bad_ticket.done()
        # The scheduler survived: later queries are still answered.
        oracle = BatchQueryEngine(graph, algorithm="onepass").run(good)
        tickets = service.submit_many(good)
        for position, ticket in enumerate(tickets):
            assert canon(ticket.result(timeout=TIMEOUT)) == canon(
                oracle.paths_at(position)
            )
        stats = service.stats()
        assert stats.failed == 1
        assert stats.completed == len(good)


def test_batch_peers_of_a_poisoned_query_share_its_error():
    """With the poisoned query inside a shared micro-batch, unresolved
    batch peers receive the same exception instead of hanging."""
    graph = random_directed_gnm(12, 40, seed=2)
    poisoned = HCSTQuery(0, graph.num_vertices + 7, 3)
    service = IngestionService(
        graph,
        algorithm="basic",
        policy=AdmissionPolicy(max_batch_size=4, max_delay_s=0.01),
        start=False,
    )
    tickets = service.submit_many(
        [poisoned] + generate_random_queries(graph, 2, min_k=2, max_k=3, seed=2)
    )
    service.start()
    try:
        for ticket in tickets:
            with pytest.raises(ValueError):
                ticket.result(timeout=TIMEOUT)
    finally:
        service.close()


def test_close_drain_resolves_all_pending_tickets():
    service = IngestionService(_GRAPH, algorithm="batch+", start=False)
    tickets = service.submit_many(_QUERIES)
    service.start()
    service.close(drain=True)
    for position, ticket in enumerate(tickets):
        assert ticket.done()
        assert canon(ticket.result(timeout=0.0)) == canon(
            _reference("batch+").paths_at(position)
        )


def test_close_without_drain_fails_queued_tickets():
    service = IngestionService(_GRAPH, algorithm="batch+", start=False)
    tickets = service.submit_many(_QUERIES)
    service.close(drain=False)
    for ticket in tickets:
        assert ticket.done()
        with pytest.raises(ServiceClosedError):
            ticket.result(timeout=0.0)


def test_submit_after_close_raises():
    service = serve(_GRAPH, algorithm="batch+")
    service.close()
    with pytest.raises(ServiceClosedError):
        service.submit(_QUERIES[0])
    service.close()  # idempotent


def test_backpressure_nonblocking_submit_raises_when_full():
    service = IngestionService(
        _GRAPH,
        algorithm="batch+",
        policy=AdmissionPolicy(max_pending=2),
        start=False,  # stopped scheduler: the queue genuinely fills up
    )
    service.submit_many(_QUERIES[:2])
    with pytest.raises(ServiceOverloadedError):
        service.submit(_QUERIES[2], block=False)
    with pytest.raises(TimeoutError):
        service.submit(_QUERIES[2], block=True, timeout=0.05)
    service.close(drain=False)


def test_service_stats_snapshot_shape():
    with serve(_GRAPH, algorithm="batch+") as service:
        tickets = service.submit_many(_QUERIES)
        for ticket in tickets:
            ticket.result(timeout=TIMEOUT)
        stats = service.stats()
    assert stats.admitted == len(_QUERIES)
    assert stats.completed == len(_QUERIES)
    assert stats.pending == 0
    assert stats.mean_ticket_latency_s > 0.0
    assert stats.sharing.num_clusters >= 1
    # The snapshot is detached: mutating the service later cannot change it.
    assert stats.admitted == len(_QUERIES)


def test_join_scan_limit_zero_disables_fast_path():
    query = _QUERIES[0]
    service = IngestionService(
        _GRAPH,
        algorithm="batch+",
        policy=AdmissionPolicy(
            max_batch_size=2,
            max_delay_s=0.005,
            join_similarity=0.0,
            join_scan_limit=0,
        ),
        start=False,
    )
    tickets = service.submit_many([query] * 4)
    service.start()
    try:
        for ticket in tickets:
            ticket.result(timeout=TIMEOUT)
        stats = service.stats()
        assert stats.joined_fast_path == 0
        assert stats.batches_dispatched == 2  # no joins: two full batches
    finally:
        service.close()


def test_admission_neighborhood_cache_is_bounded(monkeypatch):
    from repro.batch import planner as planner_module

    monkeypatch.setattr(planner_module, "NEIGHBORHOOD_CACHE_LIMIT", 4)
    planner = planner_module.QueryPlanner(_GRAPH, algorithm="batch+")
    for query in generate_random_queries(_GRAPH, 10, min_k=2, max_k=4, seed=21):
        planner.admission_score(query, [_QUERIES[0]])
    assert len(planner._neighborhood_cache) <= 4


def test_failed_tickets_excluded_from_latency_mean():
    """Failed/abandoned tickets must not enter the latency mean at all.

    The pre-fix accounting divided by completed+failed (and folded failed
    tickets' queue time into the numerator), so a batch of failures
    dragged the reported mean toward zero exactly when the service was
    misbehaving.  Now the mean covers successful resolutions only.
    """
    import time as _time

    service = IngestionService(_GRAPH, algorithm="batch+", start=False)
    service.submit_many(_QUERIES)
    _time.sleep(0.05)
    service.close(drain=False)
    stats = service.stats()
    assert stats.failed == len(_QUERIES)
    assert stats.completed == 0
    # No successful resolution happened, so there is no mean to report.
    assert stats.mean_ticket_latency_s == 0.0


def test_latency_mean_unaffected_by_failed_batch():
    """A mixed run: the mean must equal the successful tickets' own mean,
    with the failed batch contributing nothing to either side."""
    service = IngestionService(
        _GRAPH,
        algorithm="batch+",
        policy=AdmissionPolicy(max_batch_size=len(_QUERIES), max_delay_s=0.01),
    )
    try:
        good = service.submit_many(_QUERIES)
        for ticket in good:
            ticket.result(timeout=TIMEOUT)
        # A query whose endpoints are outside the graph fails its whole
        # (single-query) micro-batch.
        bad = service.submit(HCSTQuery(_GRAPH.num_vertices + 5, 0, 3))
        with pytest.raises(Exception):
            bad.result(timeout=TIMEOUT)
        stats = service.stats()
        assert stats.failed >= 1
        expected = sum(t.latency_s for t in good) / len(good)
        assert stats.mean_ticket_latency_s == pytest.approx(expected, rel=1e-6)
    finally:
        service.close()


def test_ticket_result_timeout_on_unstarted_service():
    service = IngestionService(_GRAPH, algorithm="batch+", start=False)
    ticket = service.submit(_QUERIES[0])
    assert not ticket.done()
    with pytest.raises(TimeoutError):
        ticket.result(timeout=0.05)
    service.close(drain=False)


# --------------------------------------------------------------------- #
# Lock discipline (_GUARDED_BY_LOCK / RA001) regression tests
# --------------------------------------------------------------------- #
def test_guarded_declaration_matches_real_instance_state():
    """Every name declared in ``_GUARDED_BY_LOCK`` must exist on a live
    instance — a renamed attribute would otherwise silently fall out of
    RA001's static race check."""
    service = IngestionService(_GRAPH, algorithm="batch+", start=False)
    try:
        for name in IngestionService._GUARDED_BY_LOCK:
            assert hasattr(service, name), name
        # The scheduler-confined pool is deliberately NOT lock-guarded.
        assert "_pool" not in IngestionService._GUARDED_BY_LOCK
    finally:
        service.close(drain=False)


def test_stats_stay_consistent_under_concurrent_submit_and_read():
    """Hammer the lock-guarded counters from several submitter threads
    while a reader polls ``stats()``: every snapshot must satisfy the
    invariants the lock is supposed to protect, and the final tallies
    must balance exactly."""
    submitters, per_thread = 3, 8
    policy = AdmissionPolicy(max_batch_size=4, max_delay_s=0.001)
    service = IngestionService(
        _GRAPH, algorithm="batch+", num_workers=1, policy=policy
    )
    queries = generate_random_queries(
        _GRAPH, submitters * per_thread, min_k=2, max_k=4, seed=11
    )
    tickets, errors = [], []
    tickets_lock = threading.Lock()
    stop_reading = threading.Event()

    def submit_slice(offset):
        try:
            for query in queries[offset : offset + per_thread]:
                ticket = service.submit(query)
                with tickets_lock:
                    tickets.append(ticket)
        except BaseException as error:  # pragma: no cover - fails the test
            errors.append(error)

    def read_stats():
        while not stop_reading.is_set():
            stats = service.stats()
            resolved = stats.completed + stats.failed
            if not (0 <= resolved <= stats.admitted):
                errors.append(
                    AssertionError(f"inconsistent snapshot: {stats}")
                )
            if stats.batches_dispatched:
                if not stats.mean_batch_size >= 1.0:
                    errors.append(
                        AssertionError(f"bad mean batch size: {stats}")
                    )

    threads = [
        threading.Thread(target=submit_slice, args=(i * per_thread,))
        for i in range(submitters)
    ]
    reader = threading.Thread(target=read_stats)
    reader.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for ticket in tickets:
        ticket.result(timeout=TIMEOUT)
    stop_reading.set()
    reader.join()
    service.close(drain=True)
    assert errors == []
    final = service.stats()
    assert final.admitted == submitters * per_thread
    assert final.completed == final.admitted
    assert final.failed == 0
    assert final.pending == 0
    assert final.batches_dispatched >= 1
