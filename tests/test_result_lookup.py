"""Regression tests for result lookup and workload aggregate caching.

Covers two bugfixes:

* ``BatchResult.paths(query)`` used to rescan the whole batch per call and
  ``counts()`` re-copied every path list; both now go through a lazily
  built query → positions map / the raw storage.  Duplicate queries in one
  batch must each keep their own per-position answer.
* ``QueryWorkload.max_hop_constraint`` / ``sources`` / ``targets`` used to
  recompute full passes over the query list on every property access; they
  are now fixed at construction.
"""

import pytest

from repro.batch.engine import BatchQueryEngine
from repro.batch.results import BatchResult
from repro.graph.generators import paper_example_graph, random_directed_gnm
from repro.queries.generation import generate_random_queries
from repro.queries.query import HCSTQuery
from repro.queries.workload import QueryWorkload


# --------------------------------------------------------------------- #
# BatchResult: query → positions map
# --------------------------------------------------------------------- #
def test_duplicate_queries_get_per_position_answers():
    graph = paper_example_graph()
    query = HCSTQuery(0, 11, 5)
    other = HCSTQuery(2, 13, 5)
    batch = [query, other, query, query]
    result = BatchQueryEngine(graph, algorithm="batch+").run(batch)
    assert result.positions_of(query) == (0, 2, 3)
    assert result.positions_of(other) == (1,)
    # Every duplicate position carries its own (identical) answer.
    reference = result.paths_at(0)
    assert reference  # non-empty on the paper's example
    for position in result.positions_of(query):
        assert result.paths_at(position) == reference
    assert result.paths(query) == reference


def test_positions_map_is_built_once_and_reused():
    result = BatchResult(queries=[HCSTQuery(0, 1, 2), HCSTQuery(1, 2, 2)])
    result.record(0, [])
    result.record(1, [])
    assert result._positions_by_query is None  # lazy until first lookup
    result.paths(HCSTQuery(0, 1, 2))
    mapping = result._positions_by_query
    assert mapping is not None
    result.paths(HCSTQuery(1, 2, 2))
    assert result._positions_by_query is mapping  # no rebuild per call


def test_paths_of_unknown_query_raises_keyerror():
    result = BatchResult(queries=[HCSTQuery(0, 1, 2)])
    result.record(0, [])
    with pytest.raises(KeyError):
        result.paths(HCSTQuery(5, 6, 2))
    with pytest.raises(KeyError):
        result.positions_of(HCSTQuery(5, 6, 2))


def test_counts_match_paths_at_without_copying_storage():
    graph = random_directed_gnm(20, 70, seed=11)
    queries = generate_random_queries(graph, 5, min_k=2, max_k=4, seed=11)
    result = BatchQueryEngine(graph, algorithm="basic+").run(queries)
    assert result.counts() == [
        len(result.paths_at(position)) for position in range(len(queries))
    ]
    # paths_at still hands out defensive copies...
    result.paths_at(0).append("sentinel")
    assert "sentinel" not in result.paths_at(0)
    # ...and counts() reads the raw storage without perturbing it.
    assert result.counts() == [
        len(result.paths_by_position.get(p, [])) for p in range(len(queries))
    ]


# --------------------------------------------------------------------- #
# QueryWorkload: aggregates fixed at construction
# --------------------------------------------------------------------- #
def test_workload_aggregates_cached_at_construction():
    graph = random_directed_gnm(20, 70, seed=12)
    queries = [HCSTQuery(0, 5, 3), HCSTQuery(2, 5, 6), HCSTQuery(0, 7, 4)]
    workload = QueryWorkload(graph, queries)
    assert workload.max_hop_constraint == 6
    assert workload.sources == [0, 2]
    assert workload.targets == [5, 7]
    # Same object on every access — computed once, not per read.
    assert workload.sources is workload.sources
    assert workload.targets is workload.targets


def test_workload_prebuilt_index_check_still_enforced():
    """The construction-time cache must not break the covering check for
    prebuilt (shipped) indexes."""
    graph = random_directed_gnm(20, 70, seed=13)
    small = QueryWorkload(graph, [HCSTQuery(0, 5, 2)])
    small_index = small.index
    with pytest.raises(ValueError):
        QueryWorkload(graph, [HCSTQuery(0, 5, 9)], index=small_index)
