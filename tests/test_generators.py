"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graph.generators import (
    PAPER_EXAMPLE_QUERIES,
    degree_histogram,
    layered_dag,
    paper_example_graph,
    powerlaw_directed,
    random_directed_gnm,
    random_queries_reachable,
    small_world_directed,
)


def test_paper_example_graph_shape():
    graph = paper_example_graph()
    assert graph.num_vertices == 16
    assert graph.num_edges == 21
    # A few structurally important edges from the worked examples.
    assert graph.has_edge(0, 1)
    assert graph.has_edge(0, 4)
    assert graph.has_edge(12, 11)
    assert graph.has_edge(6, 14)


def test_paper_example_queries_are_well_formed():
    graph = paper_example_graph()
    for s, t, k in PAPER_EXAMPLE_QUERIES:
        assert 0 <= s < graph.num_vertices
        assert 0 <= t < graph.num_vertices
        assert k >= 1


def test_gnm_exact_edge_count():
    graph = random_directed_gnm(50, 200, seed=7)
    assert graph.num_vertices == 50
    assert graph.num_edges == 200


def test_gnm_deterministic():
    a = random_directed_gnm(40, 100, seed=1)
    b = random_directed_gnm(40, 100, seed=1)
    c = random_directed_gnm(40, 100, seed=2)
    assert a == b
    assert a != c


def test_gnm_rejects_too_many_edges():
    with pytest.raises(ValueError):
        random_directed_gnm(3, 100)


def test_powerlaw_has_heavy_tail():
    graph = powerlaw_directed(300, 3, seed=2)
    degrees = sorted((graph.in_degree(v) for v in graph.vertices()), reverse=True)
    # The most popular vertex should attract far more than the average.
    average = sum(degrees) / len(degrees)
    assert degrees[0] > 4 * average


def test_powerlaw_deterministic():
    assert powerlaw_directed(100, 3, seed=9) == powerlaw_directed(100, 3, seed=9)


def test_small_world_out_degree():
    graph = small_world_directed(60, 4, rewire_probability=0.0, seed=0)
    # Without rewiring every vertex links to its next 4 ring neighbours.
    assert all(graph.out_degree(v) == 4 for v in graph.vertices())


def test_small_world_rewire_probability_validation():
    with pytest.raises(ValueError):
        small_world_directed(10, 2, rewire_probability=1.5)


def test_layered_dag_paths_only_move_forward():
    graph = layered_dag(num_layers=4, layer_width=5, edges_per_vertex=2, seed=3)
    for u, v in graph.edges():
        assert v // 5 == u // 5 + 1


def test_random_queries_reachable():
    graph = random_directed_gnm(60, 400, seed=4)
    queries = random_queries_reachable(graph, 10, min_k=2, max_k=4, seed=1)
    assert len(queries) == 10
    for s, t, k in queries:
        assert s != t
        assert 2 <= k <= 4


def test_degree_histogram_sums_to_vertex_count():
    graph = random_directed_gnm(40, 120, seed=6)
    histogram = degree_histogram(graph)
    assert sum(histogram.values()) == graph.num_vertices
