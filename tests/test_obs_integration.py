"""End-to-end telemetry: the instrumented engine/service under real load.

The contracts under test, per the observability PR's acceptance criteria:

* a traced parallel run produces the span tree ``batch`` → ``plan`` /
  ``ship`` / worker-side ``enumerate`` (recorded in another process and
  reparented onto the batch root on merge) / ``merge``;
* predicted-vs-actual cost counters are recorded for every executed plan
  — parallel (per shard) and sequential planned — and
  ``CostModel.from_observed`` recalibrates from them;
* instrumentation changes *nothing* about results: the default
  (null-registry) run and the instrumented run return byte-identical
  paths;
* the ingestion service exports admission/completion counters, the
  queue-depth gauge and the successful-only ticket-latency histogram;
* the snapshot store's gauges track live versions and pin refcounts.
"""

import os

import pytest

from repro.batch.engine import BatchQueryEngine
from repro.batch.planner import CostModel
from repro.batch.service import AdmissionPolicy, IngestionService
from repro.graph.generators import random_directed_gnm
from repro.obs import MetricsRegistry, Tracer
from repro.obs.feedback import (
    COST_ACTUAL_SECONDS_TOTAL,
    COST_PREDICTED_UNITS_TOTAL,
)
from repro.queries.generation import generate_random_queries

TIMEOUT = 60.0


def _workload(seed=3, queries=12):
    # 60/150 at 12 queries clusters into several shards (so the parallel
    # path genuinely fans out) while staying fast enough for a unit test.
    graph = random_directed_gnm(60, 150, seed=seed)
    return graph, generate_random_queries(
        graph, queries, min_k=2, max_k=4, seed=seed
    )


# --------------------------------------------------------------------- #
# Traced parallel execution
# --------------------------------------------------------------------- #
def test_parallel_run_produces_full_span_tree_and_feedback():
    graph, queries = _workload()
    registry, tracer = MetricsRegistry(), Tracer()
    engine = BatchQueryEngine(
        graph, algorithm="batch+", num_workers=2, metrics=registry, tracer=tracer
    )
    baseline = BatchQueryEngine(graph, algorithm="batch+", num_workers=2).run(
        queries
    )
    result = engine.run(queries)

    # Instrumentation must not change results: byte-identical paths.
    for position in range(len(queries)):
        assert result.paths_at(position) == baseline.paths_at(position)

    trace_id = tracer.find_trace("batch")
    records = tracer.spans(trace_id)
    by_name = {}
    for record in records:
        by_name.setdefault(record["name"], []).append(record)
    assert {"batch", "plan", "shard", "ship", "enumerate", "merge"} <= set(
        by_name
    )

    (batch,) = by_name["batch"]
    assert batch["parent_id"] is None
    assert by_name["plan"][0]["parent_id"] == batch["span_id"]
    for name in ("ship", "merge"):
        for record in by_name[name]:
            assert record["trace_id"] == trace_id

    # Worker-side enumerate spans: recorded in another process, reparented
    # onto the submitting batch's root span when the fragment merged.
    for record in by_name["enumerate"]:
        assert record["pid"] != os.getpid()
        assert record["parent_id"] == batch["span_id"]
        assert record["trace_id"] == trace_id
        assert record["tags"]["kind"] == "cluster"
    assert len(by_name["enumerate"]) == len(by_name["merge"])

    # One predicted-vs-actual sample per executed shard.
    snap = registry.snapshot()["counters"]
    assert snap[COST_PREDICTED_UNITS_TOTAL] > 0
    assert snap[COST_ACTUAL_SECONDS_TOTAL] > 0
    assert snap["repro_executor_shards_total"] >= 2
    assert registry.histogram("repro_shard_seconds").count == int(
        snap["repro_executor_shards_total"]
    )

    # The render is a tree: batch at the root, children indented under it.
    tree = tracer.render_tree(trace_id)
    lines = tree.splitlines()
    assert lines[0].startswith("batch ")
    assert any(line.startswith("  enumerate") for line in lines)


def test_sequential_planned_run_records_feedback():
    graph, queries = _workload(seed=4)
    registry = MetricsRegistry()
    engine = BatchQueryEngine(
        graph, algorithm="batch+", num_workers="auto", metrics=registry
    )
    engine.run(queries)
    snap = registry.snapshot()["counters"]
    assert snap[COST_PREDICTED_UNITS_TOTAL] > 0
    assert snap[COST_ACTUAL_SECONDS_TOTAL] > 0
    assert snap["repro_plans_total"] == 1
    strategies = [
        key
        for key in snap
        if key.startswith("repro_plan_index_strategy_total")
    ]
    assert strategies, "every plan must record its index strategy"


def test_cost_model_recalibrates_from_observed_traffic():
    graph, queries = _workload(seed=5)
    registry = MetricsRegistry()
    BatchQueryEngine(
        graph, algorithm="batch+", num_workers="auto", metrics=registry
    ).run(queries)
    snap = registry.snapshot()["counters"]
    model = CostModel.from_observed(registry)
    expected_rate = snap[COST_ACTUAL_SECONDS_TOTAL] / snap[COST_PREDICTED_UNITS_TOTAL]
    assert model.seconds_per_cost_unit == pytest.approx(expected_rate)
    # Pairs without signal keep their defaults; overrides win over both.
    defaults = CostModel()
    assert model.spawn_overhead_base == defaults.spawn_overhead_base
    pinned = CostModel.from_observed(registry, seconds_per_cost_unit=1.0)
    assert pinned.seconds_per_cost_unit == 1.0
    # A raw snapshot dict (e.g. loaded from JSON) works the same way.
    assert (
        CostModel.from_observed(snap_registry := registry.snapshot())
        .seconds_per_cost_unit
        == model.seconds_per_cost_unit
    ), snap_registry


# --------------------------------------------------------------------- #
# Instrumented ingestion service
# --------------------------------------------------------------------- #
def test_service_exports_counters_gauges_and_latency_histogram():
    graph, queries = _workload(seed=6)
    registry, tracer = MetricsRegistry(), Tracer()
    service = IngestionService(
        graph,
        algorithm="batch+",
        policy=AdmissionPolicy(max_batch_size=4, max_delay_s=0.01),
        metrics=registry,
        tracer=tracer,
    )
    try:
        tickets = service.submit_many(queries)
        for ticket in tickets:
            ticket.result(timeout=TIMEOUT)
    finally:
        service.close()

    snap = registry.snapshot()
    counters, gauges = snap["counters"], snap["gauges"]
    assert counters["repro_service_admitted_total"] == len(queries)
    assert counters["repro_service_completed_total"] == len(queries)
    assert counters["repro_service_batches_total"] >= 1
    assert counters.get("repro_service_failed_total", 0) == 0
    assert gauges["repro_service_queue_depth"] == 0  # drained on close
    latency = snap["histograms"]["repro_service_ticket_latency_seconds"]
    assert latency["count"] == len(queries)
    stats = service.stats()
    assert stats.mean_ticket_latency_s == pytest.approx(
        latency["sum"] / latency["count"]
    )

    # Each dispatched micro-batch roots one traced span tree.
    batch_spans = [r for r in tracer.spans() if r["name"] == "batch"]
    assert len(batch_spans) == int(counters["repro_service_batches_total"])
    assert all(record["parent_id"] is None for record in batch_spans)


# --------------------------------------------------------------------- #
# Snapshot-store gauges
# --------------------------------------------------------------------- #
def test_snapshot_store_gauges_track_pins_and_versions():
    graph, queries = _workload(seed=7)
    registry = MetricsRegistry()
    BatchQueryEngine(graph, algorithm="batch+", metrics=registry)

    graph.csr_snapshot()  # seals the current version into the store
    live = registry.gauge("repro_snapshot_live_versions")
    pins = registry.gauge("repro_snapshot_pinned_refcount_total")
    assert live.value >= 1
    assert pins.value == 0

    lease = graph.snapshots.pin()
    assert pins.value == 1
    second = graph.snapshots.pin()
    assert pins.value == 2
    second.release()
    lease.release()
    assert pins.value == 0

    before = registry.gauge("repro_snapshot_mutation_log_entries").value
    u, v = next(
        (u, v)
        for u in range(graph.num_vertices)
        for v in range(graph.num_vertices)
        if u != v and not graph.has_edge(u, v)
    )
    graph.add_edge(u, v)
    after = registry.gauge("repro_snapshot_mutation_log_entries").value
    assert after == before + 1
