"""Integration tests for BasicEnum, BatchEnum and the engine facade."""

import pytest

from repro.batch.basic_enum import BasicEnum, run_pathenum_baseline
from repro.batch.batch_enum import BatchEnum
from repro.batch.engine import ALGORITHMS, BatchQueryEngine, batch_enumerate
from repro.enumeration.brute_force import enumerate_paths_brute_force
from repro.enumeration.paths import sort_paths, validate_path
from repro.graph.generators import paper_example_graph
from repro.queries.generation import generate_random_queries, generate_similar_workload
from repro.queries.query import HCSTQuery


def _expected(graph, queries):
    return [
        sort_paths(enumerate_paths_brute_force(graph, q.s, q.t, q.k)) for q in queries
    ]


def _assert_matches(result, graph, queries):
    expected = _expected(graph, queries)
    for position in range(len(queries)):
        assert result.sorted_paths_at(position) == expected[position]


# --------------------------------------------------------------------- #
# Paper example
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", ["pathenum", "basic", "basic+", "batch", "batch+"])
def test_all_algorithms_reproduce_paper_example(algorithm, paper_graph, paper_queries):
    engine = BatchQueryEngine(paper_graph, algorithm=algorithm, gamma=0.8)
    result = engine.run(paper_queries)
    assert result.counts() == [3, 3, 1, 2, 2]
    _assert_matches(result, paper_graph, paper_queries)


# --------------------------------------------------------------------- #
# BasicEnum
# --------------------------------------------------------------------- #
def test_basic_enum_matches_brute_force(random_graph):
    queries = generate_random_queries(random_graph, 8, min_k=2, max_k=4, seed=1)
    result = BasicEnum(random_graph).run(queries)
    _assert_matches(result, random_graph, queries)
    assert result.algorithm == "BasicEnum"
    assert result.stage_seconds("BuildIndex") >= 0.0
    assert result.stage_seconds("Enumeration") >= 0.0


def test_basic_enum_plus_matches_basic(random_graph):
    queries = generate_random_queries(random_graph, 8, min_k=2, max_k=4, seed=2)
    plain = BasicEnum(random_graph, optimize_search_order=False).run(queries)
    plus = BasicEnum(random_graph, optimize_search_order=True).run(queries)
    for position in range(len(queries)):
        assert plain.sorted_paths_at(position) == plus.sorted_paths_at(position)


def test_pathenum_baseline_matches(random_graph):
    queries = generate_random_queries(random_graph, 5, min_k=2, max_k=4, seed=3)
    result = run_pathenum_baseline(random_graph, queries)
    _assert_matches(result, random_graph, queries)


# --------------------------------------------------------------------- #
# BatchEnum
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("gamma", [0.0, 0.3, 0.8, 1.0])
def test_batch_enum_correct_for_all_gammas(random_graph, gamma):
    queries = generate_random_queries(random_graph, 10, min_k=2, max_k=4, seed=4)
    result = BatchEnum(random_graph, gamma=gamma).run(queries)
    _assert_matches(result, random_graph, queries)


def test_batch_enum_full_depth_detection_is_correct(random_graph):
    queries, _ = generate_similar_workload(
        random_graph, 10, 0.8, min_k=3, max_k=5, seed=5, measure=False
    )
    result = BatchEnum(random_graph, gamma=0.5, max_detection_depth=None).run(queries)
    _assert_matches(result, random_graph, queries)


def test_batch_enum_handles_duplicate_queries(random_graph):
    query = generate_random_queries(random_graph, 1, min_k=3, max_k=3, seed=6)[0]
    queries = [query] * 5
    result = BatchEnum(random_graph, gamma=0.5).run(queries)
    expected = sort_paths(
        enumerate_paths_brute_force(random_graph, query.s, query.t, query.k)
    )
    for position in range(5):
        assert result.sorted_paths_at(position) == expected


def test_batch_enum_on_hub_graph_high_similarity(hub_graph):
    queries, _ = generate_similar_workload(
        hub_graph, 12, 0.9, min_k=3, max_k=5, seed=7, measure=False
    )
    result = BatchEnum(hub_graph, gamma=0.3, optimize_search_order=True).run(queries)
    _assert_matches(result, hub_graph, queries)
    assert result.sharing.num_clusters >= 1


def test_batch_enum_results_are_valid_paths(hub_graph):
    queries = generate_random_queries(hub_graph, 6, min_k=2, max_k=4, seed=8)
    result = BatchEnum(hub_graph).run(queries)
    for position, query in enumerate(queries):
        for path in result.paths_at(position):
            validate_path(hub_graph, path, s=query.s, t=query.t, k=query.k)


def test_batch_enum_no_duplicate_paths(hub_graph):
    queries, _ = generate_similar_workload(
        hub_graph, 8, 0.8, min_k=3, max_k=4, seed=9, measure=False
    )
    result = BatchEnum(hub_graph, gamma=0.2).run(queries)
    for position in range(len(queries)):
        paths = result.paths_at(position)
        assert len(paths) == len(set(paths))


def test_batch_enum_sharing_stats_populated():
    graph = paper_example_graph()
    queries = [HCSTQuery(0, 11, 5), HCSTQuery(2, 13, 5), HCSTQuery(5, 12, 5)]
    result = BatchEnum(graph, gamma=0.5).run(queries)
    assert result.sharing.num_clusters >= 1
    assert result.sharing.num_hc_s_nodes >= 3
    assert result.sharing.num_shared_nodes >= 1
    assert result.total_time > 0.0


def test_batch_enum_invalid_gamma():
    graph = paper_example_graph()
    with pytest.raises(ValueError):
        BatchEnum(graph, gamma=2.0)


# --------------------------------------------------------------------- #
# Engine facade
# --------------------------------------------------------------------- #
def test_engine_rejects_unknown_algorithm(paper_graph):
    with pytest.raises(ValueError):
        BatchQueryEngine(paper_graph, algorithm="magic")


def test_engine_empty_batch_returns_empty_result(paper_graph):
    engine = BatchQueryEngine(paper_graph)
    result = engine.run([])
    assert result.queries == []
    assert result.counts() == []
    assert result.total_paths() == 0


def test_engine_rejects_invalid_num_workers(paper_graph):
    with pytest.raises(ValueError):
        BatchQueryEngine(paper_graph, num_workers=0)


def test_engine_exposes_all_algorithms(paper_graph, paper_queries):
    assert set(ALGORITHMS) >= {"pathenum", "basic", "basic+", "batch", "batch+"}


def test_batch_enumerate_wrapper(paper_graph, paper_queries):
    result = batch_enumerate(paper_graph, paper_queries, algorithm="batch+", gamma=0.8)
    assert result.counts() == [3, 3, 1, 2, 2]


def test_result_lookup_by_query_object(paper_graph, paper_queries):
    result = batch_enumerate(paper_graph, paper_queries, algorithm="basic")
    assert len(result.paths(paper_queries[0])) == 3
    with pytest.raises(KeyError):
        result.paths(HCSTQuery(0, 15, 3))


def test_result_summary_mentions_algorithm(paper_graph, paper_queries):
    result = batch_enumerate(paper_graph, paper_queries, algorithm="batch")
    assert "BatchEnum" in result.summary()
