"""Shared-memory transport: correctness, lifecycle and /dev/shm hygiene.

Every test in this module runs under an autouse fixture that snapshots the
``repro-shm-*`` names visible in ``/dev/shm`` before the test and asserts
the set is unchanged after it — a leaked segment anywhere in the
pool/service/store lifecycle (including worker crashes) fails the suite,
not just the test that happened to look.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import pytest

from repro.batch.engine import BatchQueryEngine
from repro.batch.planner import CostModel
from repro.batch.service import IngestionService
from repro.graph.csr import CSRGraph
from repro.graph.generators import random_directed_gnm
from repro.graph.shm import (
    SEGMENT_PREFIX,
    SharedCSR,
    SharedIndexPayload,
    shm_available,
)
from repro.queries.generation import generate_random_queries

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

_DEV_SHM = "/dev/shm"


def _live_segments():
    """Names of this module's shared-memory segments currently linked."""
    if not os.path.isdir(_DEV_SHM):  # pragma: no cover - non-Linux fallback
        return set()
    return {
        name
        for name in os.listdir(_DEV_SHM)
        if name.lstrip("/").startswith(SEGMENT_PREFIX)
    }


@pytest.fixture(autouse=True)
def shm_hygiene():
    """Fail any test that leaves a ``repro-shm-*`` segment behind."""
    before = _live_segments()
    yield
    leaked = _live_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _workload(seed, num_vertices=40, num_edges=160, count=8):
    graph = random_directed_gnm(num_vertices, num_edges, seed=seed)
    queries = generate_random_queries(graph, count, min_k=2, max_k=4, seed=seed)
    return graph, queries


#: Economics that force the planner onto the shm index transport: shipping
#: per pickle-byte is ruinous, rebuilding is worse, shm is nearly free.
FORCE_SHIP_MODEL = dataclasses.replace(
    CostModel(),
    seconds_per_index_entry=1.0,
    seconds_per_shipped_byte=1e-3,
    seconds_per_shm_byte=1e-12,
    shm_segment_overhead_seconds=0.0,
)


# --------------------------------------------------------------------- #
# SharedCSR primitives
# --------------------------------------------------------------------- #
def test_shared_csr_attach_round_trip():
    graph, _ = _workload(1)
    snapshot = graph.csr_snapshot()
    shared = SharedCSR.create(snapshot)
    try:
        attached = shared.handle.attach()
        try:
            assert attached.num_vertices == snapshot.num_vertices
            assert attached.num_edges == snapshot.num_edges
            assert attached.version == snapshot.version
            for vertex in range(snapshot.num_vertices):
                assert list(attached.out_neighbors(vertex)) == list(
                    snapshot.out_neighbors(vertex)
                )
                assert list(attached.in_neighbors(vertex)) == list(
                    snapshot.in_neighbors(vertex)
                )
        finally:
            attached.close()
            attached.close()  # idempotent
    finally:
        shared.unlink()
        shared.unlink()  # idempotent


def test_attached_csr_refuses_to_pickle():
    graph, _ = _workload(2, num_vertices=12, num_edges=30)
    shared = SharedCSR.create(graph.csr_snapshot())
    try:
        attached = shared.handle.attach()
        try:
            with pytest.raises(TypeError):
                pickle.dumps(attached)
            # The handle is the picklable currency instead.
            clone = pickle.loads(pickle.dumps(shared.handle))
            assert clone == shared.handle
        finally:
            attached.close()
    finally:
        shared.unlink()


def test_shared_index_payload_round_trip():
    blob = bytes(range(256)) * 11
    payload = SharedIndexPayload.create(blob)
    try:
        attachment = payload.handle.attach()
        try:
            assert payload.handle.nbytes == len(blob)
            assert bytes(attachment.view) == blob
        finally:
            attachment.close()
            attachment.close()  # idempotent
    finally:
        payload.unlink()


# --------------------------------------------------------------------- #
# SnapshotStore refcounted exports
# --------------------------------------------------------------------- #
def test_store_export_refcount_shares_one_segment():
    graph, _ = _workload(3)
    snapshot = graph.csr_snapshot()
    store = graph.snapshots

    first = store.export_shm(snapshot)
    second = store.export_shm(snapshot)
    assert first is second  # concurrent pools share one export
    assert store.shm_export_count() == 1
    assert first.handle.name.lstrip("/") in _live_segments()

    store.release_shm(snapshot.version)
    assert store.shm_export_count() == 1  # one reference still out
    store.release_shm(snapshot.version)
    assert store.shm_export_count() == 0
    assert first.handle.name.lstrip("/") not in _live_segments()


def test_store_export_rejects_foreign_snapshot():
    graph, _ = _workload(4, num_vertices=12, num_edges=30)
    foreign = CSRGraph(graph)  # sealed outside the store
    assert graph.snapshots.export_shm(foreign) is None


def test_version_bump_retires_unreferenced_export():
    graph, _ = _workload(5, num_vertices=12, num_edges=30)
    store = graph.snapshots
    with store.pin() as pinned:
        shared = store.export_shm(pinned.csr)
        assert shared is not None
        name = shared.handle.name.lstrip("/")
        old_version = pinned.csr.version
        graph.add_edge(0, 11)  # bump: pinned version is no longer head
        store.release_shm(old_version)
    # Last pin + last shm reference gone → the export must not outlive the
    # retired version.
    assert store.shm_export_count() == 0
    assert name not in _live_segments()


# --------------------------------------------------------------------- #
# Pool / engine / service lifecycles
# --------------------------------------------------------------------- #
def test_pool_lifecycle_cleans_up_and_counts():
    graph, queries = _workload(6)
    engine = BatchQueryEngine(
        graph,
        algorithm="batch+",
        num_workers=2,
        cost_model=FORCE_SHIP_MODEL,
        use_shm=True,
    )
    reference = BatchQueryEngine(graph, algorithm="batch+", num_workers=1).run(
        queries
    )
    pool = engine.create_pool(max_workers=2)
    try:
        assert pool.uses_shm
        assert graph.snapshots.shm_export_count() == 1
        for _ in range(3):
            collected = dict(engine.stream(queries, pool=pool))
            assert collected == reference.paths_by_position
        stats = pool.stats()
        assert stats["batches"] == 3
        assert stats["uses_shm"] is True
        lookups = (
            stats["deserialize_cache_hits"] + stats["deserialize_cache_misses"]
        )
        # Every shipped-index task is a cache lookup; each batch rotates the
        # key, so each batch misses at least once per worker that saw it.
        assert stats["deserialize_cache_misses"] >= 3
        assert stats["deserialize_cache_misses"] <= 3 * 2  # batches x workers
        assert lookups >= stats["deserialize_cache_misses"]
        assert stats["hit_ratio"] == pytest.approx(
            stats["deserialize_cache_hits"] / lookups
        )
    finally:
        pool.shutdown()
        pool.shutdown()  # idempotent
    assert graph.snapshots.shm_export_count() == 0


def test_pool_stats_before_first_index_task():
    graph, _ = _workload(7, num_vertices=12, num_edges=30)
    engine = BatchQueryEngine(graph, algorithm="batch+", num_workers=2)
    pool = engine.create_pool(max_workers=2)
    try:
        stats = pool.stats()
        assert stats["batches"] == 0
        assert stats["hit_ratio"] is None  # no lookups yet: ratio undefined
    finally:
        pool.shutdown()


def test_one_shot_stream_cleans_up():
    graph, queries = _workload(8)
    engine = BatchQueryEngine(
        graph,
        algorithm="batch+",
        num_workers=2,
        cost_model=FORCE_SHIP_MODEL,
        use_shm=True,
    )
    result = engine.run(queries)
    reference = BatchQueryEngine(graph, algorithm="batch+", num_workers=1).run(
        queries
    )
    assert result.paths_by_position == reference.paths_by_position
    assert graph.snapshots.shm_export_count() == 0


def test_mid_stream_version_bump_recycles_cleanly():
    graph, queries = _workload(9)
    engine = BatchQueryEngine(graph, algorithm="batch+", num_workers=2)
    old_pool = engine.create_pool(max_workers=2)
    try:
        first = dict(engine.stream(queries, pool=old_pool))
        graph.add_edge(0, graph.num_vertices - 1)
        new_pool = engine.create_pool(max_workers=2)
        try:
            second = dict(engine.stream(queries, pool=new_pool))
        finally:
            new_pool.shutdown()
        assert set(first) == set(second)
    finally:
        old_pool.shutdown()
    assert graph.snapshots.shm_export_count() == 0


def test_service_close_drains_and_cleans():
    graph, queries = _workload(10)
    reference = BatchQueryEngine(graph, algorithm="batch+", num_workers=1).run(
        queries
    )
    service = IngestionService(graph, algorithm="batch+", num_workers=2)
    tickets = service.submit_many(queries)
    service.close(drain=True)
    for position, ticket in enumerate(tickets):
        assert ticket.result(timeout=60) == reference.paths_at(position)
    assert graph.snapshots.shm_export_count() == 0


def _crash_worker() -> None:  # pragma: no cover - runs in a worker process
    os._exit(17)


def test_worker_crash_does_not_leak_segments():
    from concurrent.futures.process import BrokenProcessPool

    graph, _ = _workload(11, num_vertices=12, num_edges=30)
    engine = BatchQueryEngine(graph, algorithm="batch+", num_workers=2)
    pool = engine.create_pool(max_workers=2)
    try:
        future = pool.submit(_crash_worker)
        with pytest.raises(BrokenProcessPool):
            future.result(timeout=60)
    finally:
        pool.shutdown()
    # The creator owns the segment: a dead worker must not have unlinked it,
    # and shutdown must still retire it exactly once.
    assert graph.snapshots.shm_export_count() == 0
