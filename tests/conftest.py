"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    PAPER_EXAMPLE_QUERIES,
    paper_example_graph,
    powerlaw_directed,
    random_directed_gnm,
)
from repro.queries.query import HCSTQuery


@pytest.fixture
def paper_graph() -> DiGraph:
    """The 16-vertex running example of Fig. 1."""
    return paper_example_graph()


@pytest.fixture
def paper_queries() -> list:
    """The query batch Q = {q0..q4} of Fig. 1."""
    return [HCSTQuery(s, t, k) for s, t, k in PAPER_EXAMPLE_QUERIES]


@pytest.fixture
def diamond_graph() -> DiGraph:
    """A small diamond: two parallel 2-hop routes plus a direct edge."""
    return DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)])


@pytest.fixture
def random_graph() -> DiGraph:
    """A moderate random graph used by integration-style tests."""
    return random_directed_gnm(60, 240, seed=11)


@pytest.fixture
def hub_graph() -> DiGraph:
    """A small heavy-tailed graph (hubs) used by enumeration tests."""
    return powerlaw_directed(50, 3, seed=5)
