"""Unit tests for the adapted k-shortest-path baselines (Exp-6)."""

import pytest

from repro.baselines.dksp import enumerate_paths_dksp, run_dksp_baseline
from repro.baselines.onepass import enumerate_paths_onepass, run_onepass_baseline
from repro.baselines.yen import shortest_path_hops, yen_k_shortest_paths
from repro.enumeration.brute_force import enumerate_paths_brute_force
from repro.enumeration.paths import sort_paths
from repro.graph.digraph import DiGraph
from repro.graph.generators import paper_example_graph, random_directed_gnm
from repro.queries.generation import generate_random_queries


def test_shortest_path_hops_basic(diamond_graph):
    assert shortest_path_hops(diamond_graph, 0, 3) == (0, 3)
    assert shortest_path_hops(diamond_graph, 3, 0) is None


def test_shortest_path_respects_bans(diamond_graph):
    banned_direct = shortest_path_hops(
        diamond_graph, 0, 3, banned_edges=frozenset({(0, 3)})
    )
    assert banned_direct in ((0, 1, 3), (0, 2, 3))
    assert (
        shortest_path_hops(
            diamond_graph, 0, 3,
            banned_edges=frozenset({(0, 3)}),
            banned_vertices=frozenset({1, 2}),
        )
        is None
    )


def test_yen_generates_paths_in_hop_order(diamond_graph):
    paths = list(yen_k_shortest_paths(diamond_graph, 0, 3, max_hops=3))
    lengths = [len(p) - 1 for p in paths]
    assert lengths == sorted(lengths)
    assert sort_paths(paths) == sort_paths([(0, 3), (0, 1, 3), (0, 2, 3)])


def test_yen_limit_parameter(diamond_graph):
    assert len(list(yen_k_shortest_paths(diamond_graph, 0, 3, limit=2))) == 2


def test_yen_no_path():
    graph = DiGraph.from_edges([(0, 1), (2, 3)])
    assert list(yen_k_shortest_paths(graph, 0, 3, max_hops=5)) == []


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("k", [2, 3, 4])
def test_dksp_matches_brute_force(seed, k):
    graph = random_directed_gnm(25, 100, seed=seed)
    expected = sort_paths(enumerate_paths_brute_force(graph, 0, 12, k))
    assert sort_paths(enumerate_paths_dksp(graph, 0, 12, k)) == expected


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("k", [2, 3, 4])
def test_onepass_matches_brute_force(seed, k):
    graph = random_directed_gnm(25, 100, seed=seed)
    expected = sort_paths(enumerate_paths_brute_force(graph, 0, 12, k))
    assert sort_paths(enumerate_paths_onepass(graph, 0, 12, k)) == expected


def test_onepass_emits_paths_in_hop_order():
    graph = paper_example_graph()
    paths = enumerate_paths_onepass(graph, 0, 11, 5)
    lengths = [len(p) - 1 for p in paths]
    assert lengths == sorted(lengths)


def test_ksp_baselines_on_paper_example():
    graph = paper_example_graph()
    assert len(enumerate_paths_dksp(graph, 0, 11, 5)) == 3
    assert len(enumerate_paths_onepass(graph, 2, 13, 5)) == 3


def test_ksp_batch_runners_produce_batch_results():
    graph = random_directed_gnm(40, 200, seed=3)
    queries = generate_random_queries(graph, 4, min_k=2, max_k=3, seed=1)
    dksp = run_dksp_baseline(graph, queries)
    onepass = run_onepass_baseline(graph, queries)
    assert dksp.algorithm == "DkSP"
    assert onepass.algorithm == "OnePass"
    for position, query in enumerate(queries):
        expected = sort_paths(
            enumerate_paths_brute_force(graph, query.s, query.t, query.k)
        )
        assert dksp.sorted_paths_at(position) == expected
        assert onepass.sorted_paths_at(position) == expected


def test_onepass_validation():
    graph = DiGraph.from_edges([(0, 1)])
    with pytest.raises(ValueError):
        enumerate_paths_onepass(graph, 0, 0, 3)
