"""Differential suite for the vectorized enumeration kernels.

The contract: for every algorithm, every worker count and every graph, the
``"numpy"`` kernel returns **byte-identical** results to the ``"python"``
kernel — same paths, same order, per batch position — and both match the
brute-force ground truth.  The suite also pins the selection policy
(``"auto"`` stays pure-Python below the cost threshold and on unplanned
paths) and the no-numpy degradation (``"auto"``/``"python"`` keep working
with the import blocked; ``"numpy"`` fails eagerly at construction).
"""

from __future__ import annotations

import subprocess
import sys

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.batch.engine import BatchQueryEngine
from repro.batch.planner import QueryPlanner
from repro.enumeration import kernels
from repro.enumeration.brute_force import enumerate_paths_brute_force
from repro.enumeration.kernels import (
    AUTO_MIN_COST_UNITS,
    NUMPY_AVAILABLE,
    resolve_kernel,
    validate_kernel,
)
from repro.enumeration.path_enum import PathEnum
from repro.enumeration.paths import sort_paths
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries
from repro.queries.query import HCSTQuery

needs_numpy = pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")

ALL_ALGORITHMS = ("pathenum", "basic", "basic+", "batch", "batch+", "dksp", "onepass")
#: Algorithms whose output is the complete HC-s-t path set (comparable to
#: brute force; dksp/onepass return baseline-specific subsets).
COMPLETE_ALGORITHMS = ("pathenum", "basic", "basic+", "batch", "batch+")

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _workload(seed, num_vertices=30, num_edges=110, count=8):
    graph = random_directed_gnm(num_vertices, num_edges, seed=seed)
    queries = generate_random_queries(graph, count, min_k=2, max_k=4, seed=seed)
    return graph, queries


# --------------------------------------------------------------------- #
# Selection policy
# --------------------------------------------------------------------- #
def test_validate_kernel_rejects_unknown():
    with pytest.raises(ValueError):
        validate_kernel("cuda")


def test_resolve_kernel_policy():
    assert resolve_kernel("python") == "python"
    assert resolve_kernel("python", 1e9) == "python"
    # Cost-blind "auto" (unplanned paths) always stays pure-Python.
    assert resolve_kernel("auto") == "python"
    assert resolve_kernel("auto", None) == "python"
    # Below the threshold "auto" stays python even with numpy available.
    assert resolve_kernel("auto", AUTO_MIN_COST_UNITS - 1) == "python"
    expected = "numpy" if NUMPY_AVAILABLE else "python"
    assert resolve_kernel("auto", AUTO_MIN_COST_UNITS) == expected
    assert resolve_kernel("auto", AUTO_MIN_COST_UNITS * 10) == expected


@needs_numpy
def test_planner_resolves_kernel_per_shard():
    graph, queries = _workload(3, num_vertices=60, num_edges=300, count=10)
    planner = QueryPlanner(graph, algorithm="batch+", kernel="auto")
    plan = planner.plan(queries)
    for shard in plan.shards:
        expected = "numpy" if shard.estimated_cost >= AUTO_MIN_COST_UNITS else "python"
        assert shard.kernel == expected
    assert "kernel:" in plan.describe()


def test_planner_kernel_python_pins_all_shards():
    graph, queries = _workload(3)
    plan = QueryPlanner(graph, algorithm="batch+", kernel="python").plan(queries)
    assert all(shard.kernel == "python" for shard in plan.shards)
    assert plan.kernel == "python"


# --------------------------------------------------------------------- #
# Differential: hypothesis-randomized graphs, sequential
# --------------------------------------------------------------------- #
@st.composite
def graph_and_query(draw):
    num_vertices = draw(st.integers(min_value=4, max_value=12))
    possible = [
        (u, v) for u in range(num_vertices) for v in range(num_vertices) if u != v
    ]
    edges = draw(
        st.lists(
            st.sampled_from(possible),
            min_size=num_vertices,
            max_size=4 * num_vertices,
        )
    )
    graph = DiGraph.from_edges(set(edges), num_vertices=num_vertices)
    s = draw(st.integers(min_value=0, max_value=num_vertices - 1))
    t = draw(
        st.integers(min_value=0, max_value=num_vertices - 1).filter(lambda v: v != s)
    )
    k = draw(st.integers(min_value=1, max_value=5))
    return graph, HCSTQuery(s=s, t=t, k=k)


@needs_numpy
@SETTINGS
@given(graph_and_query())
def test_pathenum_numpy_kernel_byte_identical(data):
    graph, query = data
    python_paths = PathEnum(graph, kernel="python").enumerate(query)
    numpy_paths = PathEnum(graph, kernel="numpy").enumerate(query)
    assert numpy_paths == python_paths  # identical order, not just set
    assert sort_paths(python_paths) == sort_paths(
        enumerate_paths_brute_force(graph, query.s, query.t, query.k)
    )


@needs_numpy
@SETTINGS
@given(graph_and_query(), st.sampled_from(["batch+", "batch", "basic+"]))
def test_engine_numpy_kernel_byte_identical(data, algorithm):
    graph, query = data
    queries = [query]
    python_result = BatchQueryEngine(
        graph, algorithm=algorithm, kernel="python", num_workers=1
    ).run(queries)
    numpy_result = BatchQueryEngine(
        graph, algorithm=algorithm, kernel="numpy", num_workers=1
    ).run(queries)
    assert numpy_result.paths_by_position == python_result.paths_by_position


# --------------------------------------------------------------------- #
# Differential: all algorithms x worker counts
# --------------------------------------------------------------------- #
@needs_numpy
@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_all_algorithms_numpy_equals_python_sequential(algorithm):
    graph, queries = _workload(7)
    python_result = BatchQueryEngine(
        graph, algorithm=algorithm, kernel="python", num_workers=1
    ).run(queries)
    numpy_result = BatchQueryEngine(
        graph, algorithm=algorithm, kernel="numpy", num_workers=1
    ).run(queries)
    assert numpy_result.paths_by_position == python_result.paths_by_position
    if algorithm in COMPLETE_ALGORITHMS:
        for position, query in enumerate(queries):
            assert sort_paths(python_result.paths_at(position)) == sort_paths(
                enumerate_paths_brute_force(graph, query.s, query.t, query.k)
            )


@needs_numpy
@pytest.mark.parametrize("num_workers", [2, "auto"])
@pytest.mark.parametrize("algorithm", COMPLETE_ALGORITHMS)
def test_kernelized_algorithms_across_worker_counts(algorithm, num_workers):
    graph, queries = _workload(5)
    reference = BatchQueryEngine(
        graph, algorithm=algorithm, kernel="python", num_workers=1
    ).run(queries)
    result = BatchQueryEngine(
        graph, algorithm=algorithm, kernel="numpy", num_workers=num_workers
    ).run(queries)
    assert result.paths_by_position == reference.paths_by_position


# --------------------------------------------------------------------- #
# No-numpy degradation
# --------------------------------------------------------------------- #
def test_numpy_kernel_rejected_when_unavailable(monkeypatch):
    monkeypatch.setattr(kernels, "NUMPY_AVAILABLE", False)
    with pytest.raises(ValueError):
        validate_kernel("numpy")
    assert resolve_kernel("auto", 1e9) == "python"


def test_fallback_with_numpy_import_blocked():
    """End-to-end degradation with the numpy import genuinely blocked.

    A fresh interpreter poisons ``sys.modules["numpy"]`` *before* any
    repro import, so the kernels module sees a failing import — exactly
    the situation on a numpy-less deployment.  ``"auto"`` must degrade to
    pure Python with correct results; ``"numpy"`` must raise eagerly.
    """
    code = """
import sys
sys.modules["numpy"] = None  # blocks `import numpy` with ImportError
from repro.batch.engine import BatchQueryEngine
from repro.enumeration.brute_force import enumerate_paths_brute_force
from repro.enumeration.kernels import NUMPY_AVAILABLE
from repro.enumeration.paths import sort_paths
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries

assert not NUMPY_AVAILABLE
graph = random_directed_gnm(30, 110, seed=7)
queries = generate_random_queries(graph, 6, min_k=2, max_k=4, seed=7)
engine = BatchQueryEngine(graph, algorithm="batch+", kernel="auto", num_workers=1)
result = engine.run(queries)
for position, query in enumerate(queries):
    expected = enumerate_paths_brute_force(graph, query.s, query.t, query.k)
    assert sort_paths(result.paths_at(position)) == sort_paths(expected)
try:
    BatchQueryEngine(graph, algorithm="batch+", kernel="numpy")
except ValueError:
    print("OK")
else:
    raise AssertionError("kernel='numpy' must raise without numpy")
"""
    completed = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "OK" in completed.stdout
