"""Live-graph differential suite (PR 7).

Two oracles anchor everything here:

* **Index repair**: ``CSRDistanceIndex.apply_delta`` after any coverable
  mutation window must be *byte-identical* (``to_bytes()``) to a fresh
  ``build_index`` on the mutated graph.
* **Multi-version serving**: a stream (or service micro-batch) admitted
  at version ``v`` must return exactly what a closed batch on a frozen
  copy of version ``v`` returns, no matter how many mutations land while
  it is in flight — and never a ``RuntimeError``.
"""

import random

import pytest

from repro.batch.engine import ALGORITHMS, BatchQueryEngine
from repro.batch.planner import QueryPlanner
from repro.batch.service import serve
from repro.bfs.distance_index import build_index
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries


def _mutate_randomly(graph, rng, steps):
    """Apply ``steps`` random single-edge mutations (~50/50 add/remove)."""
    for _ in range(steps):
        if rng.random() < 0.5 and graph.num_edges > 0:
            graph.remove_edge(*rng.choice(sorted(graph.edges())))
        else:
            while True:
                u = rng.randrange(graph.num_vertices)
                v = rng.randrange(graph.num_vertices)
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    break


def _first_missing_edge(graph):
    for u in graph.vertices():
        for v in graph.vertices():
            if u != v and not graph.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")


# --------------------------------------------------------------------- #
# apply_delta differential suite: repair ≡ rebuild, byte for byte
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(8))
def test_apply_delta_equals_fresh_rebuild(seed):
    rng = random.Random(seed)
    graph = random_directed_gnm(24, 90, seed=seed)
    sources = sorted(rng.sample(range(24), 4))
    targets = sorted(rng.sample(range(24), 4))
    max_hops = 5
    index = build_index(graph, sources, targets, max_hops)
    baseline = index.to_bytes()
    start = graph.version
    _mutate_randomly(graph, rng, 12)
    added, removed = graph.snapshots.delta(start, graph.version)
    repaired = index.copy().apply_delta(graph, added, removed)
    fresh = build_index(graph, sources, targets, max_hops)
    assert repaired.to_bytes() == fresh.to_bytes()
    # copy() isolated the original: the stale index is untouched.
    assert index.to_bytes() == baseline


@pytest.mark.parametrize("op", ["add", "remove"])
def test_apply_delta_single_edge(op):
    graph = random_directed_gnm(20, 70, seed=17)
    index = build_index(graph, [0, 1], [18, 19], 4)
    if op == "add":
        edge = _first_missing_edge(graph)
        graph.add_edge(*edge)
        repaired = index.copy().apply_delta(graph, [edge], [])
    else:
        edge = sorted(graph.edges())[0]
        graph.remove_edge(*edge)
        repaired = index.copy().apply_delta(graph, [], [edge])
    fresh = build_index(graph, [0, 1], [18, 19], 4)
    assert repaired.to_bytes() == fresh.to_bytes()


def test_apply_delta_empty_delta_is_identity():
    graph = random_directed_gnm(15, 50, seed=3)
    index = build_index(graph, [0], [14], 4)
    before = index.to_bytes()
    assert index.apply_delta(graph, [], []) is index
    assert index.to_bytes() == before


def test_apply_delta_validation():
    graph = random_directed_gnm(15, 50, seed=4)
    index = build_index(graph, [0], [14], 4)
    bigger = random_directed_gnm(16, 50, seed=4)
    with pytest.raises(ValueError, match="rebuild the index"):
        index.copy().apply_delta(bigger, [(0, 1)], [])
    with pytest.raises(ValueError, match="net the delta"):
        index.copy().apply_delta(graph, [(0, 1)], [(0, 1)])


# --------------------------------------------------------------------- #
# Planner strategies: built → cached → delta across a mutation
# --------------------------------------------------------------------- #
def test_planner_index_strategies_built_cached_delta():
    # Large enough that the cost model prefers repair: a single-edge
    # repair costs ~rows x seconds_per_delta_edge while a rebuild costs
    # ~rows x V x seconds_per_index_entry, crossing over near V ~ 50.
    graph = random_directed_gnm(120, 480, seed=21)
    queries = generate_random_queries(graph, 6, min_k=2, max_k=4, seed=21)
    planner = QueryPlanner(graph, algorithm="batch+")
    first = planner.plan(queries)
    assert first.index_strategy == "built"
    second = planner.plan(queries)
    assert second.index_strategy == "cached"
    graph.add_edge(*_first_missing_edge(graph))
    third = planner.plan(queries)
    assert third.index_strategy == "delta"
    assert "[delta]" in third.describe()
    # The delta-repaired index is byte-identical to a fresh build on the
    # mutated graph (same endpoints, same hop cap).
    sources = sorted({q.s for q in queries})
    targets = sorted({q.t for q in queries})
    max_k = max(q.k for q in queries)
    fresh = build_index(graph, sources, targets, max_k)
    assert third.workload.index.to_bytes() == fresh.to_bytes()
    # And the plan executes to exactly the closed-batch answer.
    engine = BatchQueryEngine(graph, algorithm="batch+")
    streamed = dict(engine.stream_planned(queries, third, ordered=True))
    oracle = BatchQueryEngine(graph.copy(), algorithm="batch+").run(queries)
    assert streamed == oracle.paths_by_position


def test_planner_rebuilds_after_barrier_or_changed_endpoints():
    graph = random_directed_gnm(40, 160, seed=22)
    queries = generate_random_queries(graph, 5, min_k=2, max_k=4, seed=22)
    planner = QueryPlanner(graph, algorithm="batch+")
    planner.plan(queries)
    graph.add_vertex()  # barrier: no coverable delta window
    assert planner.plan(queries).index_strategy == "built"
    other = generate_random_queries(graph, 5, min_k=2, max_k=4, seed=99)
    assert planner.plan(other).index_strategy == "built"


# --------------------------------------------------------------------- #
# Streams under mutation: every algorithm, sequential and auto workers
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("num_workers", [1, "auto"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_stream_under_mutation_matches_pinned_oracle(algorithm, num_workers):
    graph = random_directed_gnm(20, 70, seed=13)
    queries = generate_random_queries(graph, 5, min_k=2, max_k=4, seed=13)
    oracle = (
        BatchQueryEngine(graph.copy(), algorithm=algorithm)
        .run(queries)
        .paths_by_position
    )
    engine = BatchQueryEngine(
        graph, algorithm=algorithm, num_workers=num_workers
    )
    stream = engine.stream(queries, ordered=True)
    streamed = dict([next(stream)])
    # >= 10 interleaved mutations while the stream is in flight.
    _mutate_randomly(graph, random.Random(13), 10)
    streamed.update(stream)
    assert streamed == oracle


# --------------------------------------------------------------------- #
# Ingestion service under mutation: the PR's acceptance scenario
# --------------------------------------------------------------------- #
def test_service_round_trip_oracle_across_mutations():
    """Each round: freeze the graph, compute the closed-batch oracle,
    serve the same queries through the service, then mutate.  Twelve
    mutations interleave with twelve micro-batch rounds; every ticket
    must match its round's oracle and none may fail."""
    graph = random_directed_gnm(20, 70, seed=31)
    rng = random.Random(31)
    with serve(
        graph,
        algorithm="batch+",
        num_workers=1,
        max_batch_size=4,
        max_delay_s=0.005,
    ) as service:
        for round_no in range(12):
            frozen = graph.copy()
            queries = generate_random_queries(
                frozen, 3, min_k=2, max_k=3, seed=round_no
            )
            oracle = BatchQueryEngine(frozen, algorithm="batch+").run(queries)
            tickets = service.submit_many(queries)
            for position, ticket in enumerate(tickets):
                assert ticket.result(timeout=30.0) == oracle.paths_at(position)
            _mutate_randomly(graph, rng, 1)
        stats = service.stats()
    assert stats.failed == 0
    assert stats.completed == 12 * 3


def test_service_zero_errors_under_concurrent_mutation():
    """Mutations land *while* micro-batches are being planned and
    executed — the admitted-version pin means no ticket ever resolves
    with a RuntimeError."""
    graph = random_directed_gnm(20, 70, seed=33)
    rng = random.Random(33)
    queries = generate_random_queries(graph, 24, min_k=2, max_k=3, seed=33)
    with serve(
        graph,
        algorithm="batch+",
        num_workers=1,
        max_batch_size=4,
        max_delay_s=0.001,
    ) as service:
        tickets = []
        for position, query in enumerate(queries):
            tickets.append(service.submit(query))
            if position % 2 == 0:
                _mutate_randomly(graph, rng, 1)  # 12 interleaved mutations
        results = [ticket.result(timeout=60.0) for ticket in tickets]
    assert all(isinstance(paths, list) for paths in results)
    assert service.stats().failed == 0


def test_service_parallel_pool_recycles_across_mutations():
    """A parallel service recycles its persistent worker pool when a new
    micro-batch pins a newer version than the pool was spawned with —
    still zero failures, still oracle-exact per round."""
    graph = random_directed_gnm(18, 60, seed=35)
    rng = random.Random(35)
    with serve(
        graph,
        algorithm="basic",
        num_workers=2,
        max_batch_size=4,
        max_delay_s=0.005,
    ) as service:
        for round_no in range(4):
            frozen = graph.copy()
            queries = generate_random_queries(
                frozen, 4, min_k=2, max_k=3, seed=round_no
            )
            oracle = BatchQueryEngine(frozen, algorithm="basic").run(queries)
            tickets = service.submit_many(queries)
            for position, ticket in enumerate(tickets):
                assert ticket.result(timeout=60.0) == oracle.paths_at(position)
            _mutate_randomly(graph, rng, 3)
        stats = service.stats()
    assert stats.failed == 0
    assert stats.completed == 4 * 4
