"""Unit tests for query types and the workload container."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_directed_gnm
from repro.queries.query import Direction, HCSTQuery, HCsPathQuery
from repro.queries.workload import QueryWorkload


def test_hcst_query_budgets():
    query = HCSTQuery(0, 5, 5)
    assert query.forward_budget == 3
    assert query.backward_budget == 2
    even = HCSTQuery(0, 5, 4)
    assert even.forward_budget == 2
    assert even.backward_budget == 2


def test_hcst_query_validation():
    with pytest.raises(ValueError):
        HCSTQuery(0, 0, 3)          # s == t
    with pytest.raises(ValueError):
        HCSTQuery(0, 1, 0)          # k must be >= 1
    with pytest.raises(ValueError):
        HCSTQuery(-1, 1, 3)         # negative vertex


def test_hcst_query_subqueries():
    query = HCSTQuery(2, 7, 5)
    forward = query.forward_subquery()
    backward = query.backward_subquery()
    assert forward == HCsPathQuery(2, 3, Direction.FORWARD)
    assert backward == HCsPathQuery(7, 2, Direction.BACKWARD)


def test_hcst_query_split_budget_sums_to_k():
    query = HCSTQuery(2, 7, 5)
    forward, backward = query.split(4)
    assert forward.budget + backward.budget == 5
    with pytest.raises(ValueError):
        query.split(6)


def test_hcs_path_query_domination():
    """Definition 4.3: q_{v',k'} ≺ q_{v,k} iff k' <= k - dist(v, v')."""
    big = HCsPathQuery(0, 4, Direction.FORWARD)
    small = HCsPathQuery(3, 2, Direction.FORWARD)
    assert small.dominates(big, distance=2)
    assert not small.dominates(big, distance=3)
    backward = HCsPathQuery(3, 2, Direction.BACKWARD)
    assert not backward.dominates(big, distance=0)  # directions differ


def test_query_str_representations():
    assert "s=1" in str(HCSTQuery(1, 2, 3))
    assert "Gr" in str(HCsPathQuery(1, 2, Direction.BACKWARD))


def test_workload_requires_queries_and_valid_vertices():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    with pytest.raises(ValueError):
        QueryWorkload(graph, [])
    with pytest.raises(ValueError):
        QueryWorkload(graph, [HCSTQuery(0, 99, 3)])


def test_workload_shared_index_built_once():
    graph = random_directed_gnm(40, 160, seed=1)
    workload = QueryWorkload(graph, [HCSTQuery(0, 5, 3), HCSTQuery(1, 6, 4)])
    index_a = workload.index
    index_b = workload.index
    assert index_a is index_b
    assert workload.max_hop_constraint == 4
    assert workload.sources == [0, 1]
    assert workload.targets == [5, 6]
    assert workload.stage_timer.total("BuildIndex") >= 0.0


def test_workload_index_survives_graph_mutation():
    # Multi-version serving (RA002 via SnapshotStore): the workload pins
    # the sealed snapshot of the version it was admitted under, so a later
    # mutation never invalidates its index — it keeps answering for the
    # pinned version while fresh workloads see the new head.
    graph = random_directed_gnm(40, 160, seed=3)
    workload = QueryWorkload(graph, [HCSTQuery(0, 5, 3)])
    pinned = workload.index
    assert workload.index is pinned  # built and cached
    graph.add_edge(0, 39)
    assert workload.index is pinned  # mutation did not disturb the pin
    assert workload.graph_version == graph.version - 1
    # A workload built after the mutation pins the new version and sees
    # the new edge: 0 -> 39 makes 39 reachable from source 0 in one hop.
    fresh = QueryWorkload(graph, [HCSTQuery(0, 5, 3)])
    assert fresh.graph_version == graph.version
    assert fresh.index.dist_from(0, 39) == 1


def test_workload_snapshot_pinned_before_first_build():
    # The snapshot is sealed at construction time, so an index first
    # built *after* a mutation still reflects the admitted version.
    graph = random_directed_gnm(40, 160, seed=4)
    workload = QueryWorkload(graph, [HCSTQuery(0, 5, 3)])
    admitted_version = graph.version
    assert not graph.has_edge(1, 38)
    graph.add_edge(1, 38)
    assert workload.graph_version == admitted_version
    assert not workload.csr.has_edge(1, 38)
    assert workload.index.has_source(0)


def test_workload_similarity_in_unit_interval():
    graph = random_directed_gnm(40, 200, seed=2)
    workload = QueryWorkload(graph, [HCSTQuery(0, 5, 3), HCSTQuery(0, 6, 3)])
    mu = workload.average_similarity()
    assert 0.0 <= mu <= 1.0


def test_workload_iteration_and_len():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    queries = [HCSTQuery(0, 2, 2), HCSTQuery(0, 1, 1)]
    workload = QueryWorkload(graph, queries)
    assert len(workload) == 2
    assert list(workload) == queries
