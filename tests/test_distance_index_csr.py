"""Differential suite: array-backed CSRDistanceIndex ≡ legacy dict index.

The array-backed index replaced the dict-of-dicts structure in every
production path, so this suite pins the two representations to each other
on random graphs and workloads — lookups, neighbourhoods, level sizes and
the mapping-view protocol — plus the serialization round-trip the parallel
executor relies on when shipping a parent-built index to workers, and the
range checking that distinguishes "unreachable" from "not a vertex of this
snapshot".
"""

from __future__ import annotations

import math

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bfs.distance_index import (
    CSRDistanceIndex,
    UNREACHABLE,
    build_dict_index,
    build_index,
    densify_distances,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_directed_gnm

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@st.composite
def graph_and_endpoints(draw):
    num_vertices = draw(st.integers(min_value=3, max_value=14))
    possible_edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(num_vertices)
        if u != v
    ]
    edges = draw(
        st.lists(
            st.sampled_from(possible_edges),
            min_size=num_vertices,
            max_size=4 * num_vertices,
        )
    )
    graph = DiGraph.from_edges(set(edges), num_vertices=num_vertices)
    vertex = st.integers(min_value=0, max_value=num_vertices - 1)
    sources = draw(st.lists(vertex, min_size=1, max_size=4))
    targets = draw(st.lists(vertex, min_size=1, max_size=4))
    max_hops = draw(st.integers(min_value=1, max_value=6))
    return graph, sources, targets, max_hops


@given(case=graph_and_endpoints())
@SETTINGS
def test_csr_index_equivalent_to_dict_index(case):
    graph, sources, targets, max_hops = case
    csr = build_index(graph, sources, targets, max_hops)
    legacy = build_dict_index(graph, sources, targets, max_hops)

    assert csr.max_hops == legacy.max_hops
    assert csr.size_in_entries == legacy.size_in_entries
    assert set(csr.from_source) == set(legacy.from_source)
    assert set(csr.to_target) == set(legacy.to_target)

    for source in set(sources):
        assert csr.has_source(source) and legacy.has_source(source)
        # Mapping-view protocol: identical sparse contents.
        assert dict(csr.from_source[source].items()) == legacy.from_source[source]
        assert len(csr.from_source[source]) == len(legacy.from_source[source])
        for vertex in range(graph.num_vertices):
            assert csr.dist_from(source, vertex) == legacy.dist_from(
                source, vertex
            )
        for hops in range(max_hops + 1):
            assert csr.forward_neighborhood(source, hops) == (
                legacy.forward_neighborhood(source, hops)
            )
            assert csr.forward_level_sizes(source, hops) == (
                legacy.forward_level_sizes(source, hops)
            )
    for target in set(targets):
        assert csr.has_target(target) and legacy.has_target(target)
        assert dict(csr.to_target[target].items()) == legacy.to_target[target]
        for vertex in range(graph.num_vertices):
            assert csr.dist_to(target, vertex) == legacy.dist_to(target, vertex)
        for hops in range(max_hops + 1):
            assert csr.backward_neighborhood(target, hops) == (
                legacy.backward_neighborhood(target, hops)
            )
            assert csr.backward_level_sizes(target, hops) == (
                legacy.backward_level_sizes(target, hops)
            )


@given(case=graph_and_endpoints())
@SETTINGS
def test_to_bytes_round_trip(case):
    graph, sources, targets, max_hops = case
    index = build_index(graph, sources, targets, max_hops)
    clone = CSRDistanceIndex.from_bytes(index.to_bytes())

    assert clone.num_vertices == index.num_vertices
    assert clone.max_hops == index.max_hops
    assert set(clone.from_source) == set(index.from_source)
    assert set(clone.to_target) == set(index.to_target)
    for source in index.from_source:
        assert clone.dense_from(source) == index.dense_from(source)
    for target in index.to_target:
        assert clone.dense_to(target) == index.dense_to(target)
    # Serialization is deterministic.
    assert clone.to_bytes() == index.to_bytes()


def test_from_bytes_rejects_garbage():
    with pytest.raises(ValueError):
        CSRDistanceIndex.from_bytes(b"not an index payload" + b"\x00" * 64)


def test_unreachable_is_infinity():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (3, 0)])
    index = build_index(graph, sources=[0], targets=[2], max_hops=3)
    assert index.dist_from(0, 2) == 2
    assert index.dist_to(2, 0) == 2
    assert math.isinf(index.dist_from(0, 3))  # 3 is not reachable from 0
    assert index.dense_from(0)[3] == UNREACHABLE


def test_out_of_range_vertex_ids_raise():
    """Unknown-but-in-range ids are "unreachable"; ids outside the CSR
    snapshot's vertex range are a caller bug and must raise (mirroring the
    CSR packing range assert), not silently report infinity."""
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    index = build_index(graph, sources=[0], targets=[2], max_hops=2)

    with pytest.raises(ValueError):
        index.dist_from(0, 3)
    with pytest.raises(ValueError):
        index.dist_from(0, -1)
    with pytest.raises(ValueError):
        index.dist_to(2, 99)
    row = index.from_source[0]
    with pytest.raises(ValueError):
        row.get(3)
    with pytest.raises(ValueError):
        row[3]
    # Unindexed endpoints keep raising KeyError, like the legacy dicts.
    with pytest.raises(KeyError):
        index.dist_from(1, 0)
    with pytest.raises(KeyError):
        index.dense_from(1)
    with pytest.raises(KeyError):
        index.to_target[0]


def test_row_view_mapping_protocol():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    index = build_index(graph, sources=[0], targets=[3], max_hops=2)
    row = index.from_source[0]
    assert row[0] == 0 and row[1] == 1 and row[2] == 2
    assert 3 not in row  # beyond max_hops truncation
    assert sorted(row) == [0, 1, 2]
    assert sorted(row.values()) == [0, 1, 2]
    assert len(row) == 3
    with pytest.raises(KeyError):
        row[3]  # in range, unreachable
    assert row.get(3) is None
    assert row.get(3, "fallback") == "fallback"


def test_densify_distances_matches_sparse_map():
    dense = densify_distances({0: 0, 2: 5}, 4)
    assert dense == [0, UNREACHABLE, 5, UNREACHABLE]


def test_ship_payload_survives_larger_graph():
    graph = random_directed_gnm(120, 600, seed=3)
    index = build_index(graph, sources=[0, 5, 7], targets=[10, 11], max_hops=4)
    clone = CSRDistanceIndex.from_bytes(index.to_bytes())
    for source in (0, 5, 7):
        for vertex in range(graph.num_vertices):
            assert clone.dist_from(source, vertex) == index.dist_from(
                source, vertex
            )
    assert clone.size_in_entries == index.size_in_entries
    assert index.nbytes == 5 * graph.num_vertices * index.dense_from(0).itemsize
