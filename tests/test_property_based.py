"""Property-based tests (hypothesis) for the core invariants.

The single most important property of the whole library: every algorithm —
single-query or batch, sharing or not — returns exactly the set of simple
paths the brute-force enumerator returns, on arbitrary graphs and queries.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.batch.batch_enum import BatchEnum
from repro.batch.basic_enum import BasicEnum
from repro.batch.clustering import cluster_queries
from repro.batch.engine import BatchQueryEngine
from repro.enumeration.brute_force import enumerate_paths_brute_force
from repro.enumeration.join import PathJoinPolicy, join_path_sets
from repro.enumeration.path_enum import enumerate_paths
from repro.enumeration.paths import is_simple, sort_paths, validate_path
from repro.graph.digraph import DiGraph
from repro.queries.query import HCSTQuery
from repro.queries.workload import QueryWorkload

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@st.composite
def graphs(draw, max_vertices: int = 14):
    """Random small directed graphs (dense enough to contain paths)."""
    num_vertices = draw(st.integers(min_value=4, max_value=max_vertices))
    possible_edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(num_vertices)
        if u != v
    ]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), min_size=num_vertices, max_size=4 * num_vertices)
    )
    return DiGraph.from_edges(set(edges), num_vertices=num_vertices)


@st.composite
def graph_and_queries(draw, max_queries: int = 5):
    graph = draw(graphs())
    count = draw(st.integers(min_value=1, max_value=max_queries))
    queries = []
    for _ in range(count):
        s = draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
        t = draw(
            st.integers(min_value=0, max_value=graph.num_vertices - 1).filter(
                lambda v: v != s
            )
        )
        k = draw(st.integers(min_value=1, max_value=5))
        queries.append(HCSTQuery(s, t, k))
    return graph, queries


@given(graph_and_queries(max_queries=1))
@SETTINGS
def test_pathenum_equals_brute_force(data):
    graph, queries = data
    query = queries[0]
    expected = sort_paths(enumerate_paths_brute_force(graph, query.s, query.t, query.k))
    actual = sort_paths(enumerate_paths(graph, query.s, query.t, query.k))
    assert actual == expected


@given(graph_and_queries(), st.sampled_from([0.0, 0.3, 0.7, 1.0]))
@SETTINGS
def test_batch_enum_equals_brute_force(data, gamma):
    graph, queries = data
    result = BatchEnum(graph, gamma=gamma).run(queries)
    for position, query in enumerate(queries):
        expected = sort_paths(
            enumerate_paths_brute_force(graph, query.s, query.t, query.k)
        )
        assert result.sorted_paths_at(position) == expected


@given(graph_and_queries())
@SETTINGS
def test_batch_enum_plus_equals_basic_enum(data):
    graph, queries = data
    batch = BatchEnum(graph, gamma=0.5, optimize_search_order=True).run(queries)
    basic = BasicEnum(graph, optimize_search_order=True).run(queries)
    for position in range(len(queries)):
        assert batch.sorted_paths_at(position) == basic.sorted_paths_at(position)


@given(graph_and_queries(max_queries=3))
@SETTINGS
def test_results_are_simple_hop_bounded_paths(data):
    graph, queries = data
    result = BatchEnum(graph, gamma=0.5).run(queries)
    for position, query in enumerate(queries):
        for path in result.paths_at(position):
            validate_path(graph, path, s=query.s, t=query.t, k=query.k)
            assert is_simple(path)


@given(graph_and_queries(max_queries=4))
@SETTINGS
def test_clustering_is_a_partition(data):
    graph, queries = data
    workload = QueryWorkload(graph, queries)
    clusters = cluster_queries(workload, gamma=0.5)
    flattened = sorted(position for cluster in clusters for position in cluster)
    assert flattened == list(range(len(queries)))


@given(graphs(), st.integers(min_value=0, max_value=13), st.integers(min_value=0, max_value=13),
       st.integers(min_value=1, max_value=4))
@SETTINGS
def test_join_never_emits_duplicates_or_invalid_paths(graph, s, t, k):
    if s >= graph.num_vertices or t >= graph.num_vertices or s == t:
        return
    # Build forward prefixes and backward suffixes by brute force and join.
    forward_budget = (k + 1) // 2
    backward_budget = k // 2
    forward = _all_paths_from(graph, s, forward_budget, forward=True)
    backward = _all_paths_from(graph, t, backward_budget, forward=False)
    policy = PathJoinPolicy(forward_budget, backward_budget)
    joined = join_path_sets(forward, backward, target=t, policy=policy)
    assert len(joined) == len(set(joined))
    expected = sort_paths(enumerate_paths_brute_force(graph, s, t, k))
    assert sort_paths(joined) == expected


@given(
    graph_and_queries(),
    st.sampled_from(["pathenum", "basic+", "batch", "batch+"]),
)
@SETTINGS
def test_stream_ordered_yields_each_position_exactly_once_in_order(data, algorithm):
    """``ordered=True`` flushes strictly increasing batch positions, every
    position exactly once — i.e. the position sequence IS ``0..n-1``."""
    graph, queries = data
    engine = BatchQueryEngine(graph, algorithm=algorithm)
    positions = [position for position, _ in engine.stream(queries, ordered=True)]
    assert positions == list(range(len(queries)))


@given(graph_and_queries(), st.sampled_from([0.0, 0.5, 1.0]))
@SETTINGS
def test_stream_unordered_is_a_permutation_matching_run(data, gamma):
    """``ordered=False`` still delivers every position exactly once, and the
    collected results equal the blocking ``run()`` exactly."""
    graph, queries = data
    engine = BatchQueryEngine(graph, algorithm="batch+", gamma=gamma)
    flushed = list(engine.stream(queries, ordered=False))
    positions = [position for position, _ in flushed]
    assert sorted(positions) == list(range(len(queries)))
    assert dict(flushed) == engine.run(queries).paths_by_position


def test_stream_empty_batch_yields_nothing_without_raising():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    for algorithm in ("pathenum", "basic", "batch+", "onepass"):
        for ordered in (True, False):
            engine = BatchQueryEngine(graph, algorithm=algorithm)
            assert list(engine.stream([], ordered=ordered)) == []


def _all_paths_from(graph, start, budget, forward):
    neighbors = graph.out_neighbors if forward else graph.in_neighbors
    results = []
    prefix = [start]

    def extend(vertex, used):
        results.append(tuple(prefix))
        if used == budget:
            return
        for neighbor in neighbors(vertex):
            if neighbor in prefix:
                continue
            prefix.append(neighbor)
            extend(neighbor, used + 1)
            prefix.pop()

    extend(start, 0)
    return results
