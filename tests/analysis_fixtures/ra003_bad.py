"""Bad fixture: unpicklable callables handed to a worker pool."""

from concurrent.futures import ProcessPoolExecutor


class Runner:
    def _work(self, item):
        return item + 1

    def run(self, items):
        with ProcessPoolExecutor() as pool:
            return [pool.submit(self._work, item) for item in items]  # expect: RA003


def run_inline(pool, items):
    return [pool.submit(lambda item: item + 1, item) for item in items]  # expect: RA003


def spawn():
    return ProcessPoolExecutor(initializer=lambda: None)  # expect: RA003


def init_worker(handle):
    return handle


def spawn_with_local_handle_class():
    class Handle:  # function-local: pickle cannot resolve it by name
        pass

    handle = Handle()
    return ProcessPoolExecutor(
        initializer=init_worker, initargs=(handle,)  # expect: RA003
    )
