"""Good fixture: version pinned at build time and re-checked on access."""

from repro.bfs.distance_index import build_index


class PinnedIndexHolder:
    def __init__(self, graph, sources, targets, max_hops):
        self.graph = graph
        self.graph_version = graph.version
        self._index = build_index(graph, sources, targets, max_hops)

    def lookup(self):
        if self.graph.version != self.graph_version:
            raise RuntimeError("graph mutated under the index")
        return self._index


def peek_adjacency(graph, v):
    return list(graph.out_neighbors(v))
