"""Good fixture: version pinned at build time and re-checked on access,
or the artefact resolved through the multi-version ``SnapshotStore``."""

from repro.bfs.distance_index import build_index


class PinnedIndexHolder:
    def __init__(self, graph, sources, targets, max_hops):
        self.graph = graph
        self.graph_version = graph.version
        self._index = build_index(graph, sources, targets, max_hops)

    def lookup(self):
        if self.graph.version != self.graph_version:
            raise RuntimeError("graph mutated under the index")
        return self._index


class StoreResolvedHolder:
    """No explicit pin, but the sealed snapshot comes from the store —
    it is immutable, so no ``*version*`` identifier is needed."""

    def __init__(self, graph):
        self._snapshot = graph.csr_snapshot()
        self._lease = graph.snapshots.pin()

    def close(self):
        self._lease.release()


def peek_adjacency(graph, v):
    return list(graph.out_neighbors(v))
