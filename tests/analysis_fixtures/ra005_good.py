"""Good fixture: resources released in try/finally or scoped by ``with``."""

from concurrent.futures import ProcessPoolExecutor


def stream_futures(tasks):
    executor = ProcessPoolExecutor()
    try:
        for task in tasks:
            yield executor.submit(task)
    finally:
        executor.shutdown()


def stream_scoped(tasks):
    with ProcessPoolExecutor() as executor:
        for task in tasks:
            yield executor.submit(task)
