"""Good fixture: every acquire is released, managed, or handed off."""

import atexit
from concurrent.futures import ProcessPoolExecutor


def noop(item):
    return item


def pin_with_finally(store):
    pinned = store.pin()
    try:
        return pinned.version
    finally:
        pinned.release()


def pin_with_with(store):
    with store.pin() as pinned:
        return pinned.version


def handed_off(store):
    pinned = store.pin()
    return pinned  # ownership moves to the caller


def deferred_close(payload):
    blob = payload.attach()
    atexit.register(blob.close)  # release responsibility handed to atexit
    return blob.view


def refcounted_export(store, graph):
    shared = store.export_shm()
    try:
        return shared.handle
    finally:
        graph.snapshots.release_shm(1)


def pool_context(tasks):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return [pool.submit(noop, task) for task in tasks]


def stored_in_container(registry, snapshot):
    executor = ProcessPoolExecutor(max_workers=1)
    registry.append(executor)  # escaped to an owner we cannot see
    return registry
