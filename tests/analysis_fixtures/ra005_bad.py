"""Bad fixture: generators yield while holding an unreleased resource."""

from concurrent.futures import ProcessPoolExecutor


def stream_futures(tasks):
    executor = ProcessPoolExecutor()
    for task in tasks:
        yield executor.submit(task)  # expect: RA005
    executor.shutdown()


def stream_locked(lock, items):
    lock.acquire()
    for item in items:
        yield item  # expect: RA005
    lock.release()
