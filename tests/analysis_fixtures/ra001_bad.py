"""Bad fixture: a _GUARDED_BY_LOCK attribute touched without the lock."""

import threading


class Counter:
    _GUARDED_BY_LOCK = frozenset({"_count"})

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        self._count += 1  # expect: RA001

    def read_locked(self):
        with self._lock:
            return self._count
