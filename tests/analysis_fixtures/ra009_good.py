"""Good fixture: picklable payloads, conservative silence on unknowns."""

from concurrent.futures import ProcessPoolExecutor


def consume(item):
    return item


def build_rows(count):
    return list(range(count))


def ship_data(pool, items):
    rows = [item * 2 for item in items]
    return pool.submit(consume, rows)


def ship_call_result(pool):
    return pool.submit(consume, build_rows(4))  # plain call result: fine


def ship_param(pool, payload):
    return pool.submit(consume, payload)  # unknown type: stay silent


def ship_initargs(snapshot):
    return ProcessPoolExecutor(initializer=consume, initargs=(snapshot, 3))


def ship_unknown_attr(pool, task):
    return pool.submit(consume, task.payload)  # non-self attr: stay silent
