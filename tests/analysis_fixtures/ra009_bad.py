"""Bad fixture: unpicklable payloads crossing the pool boundary."""

import threading
from concurrent.futures import ProcessPoolExecutor


class Tracer:
    def __init__(self):
        self.spans = []


class AttachedThing:
    def __reduce__(self):
        raise TypeError("process-local mapping")


def consume(item):
    return item


def numbers():
    yield 1


def ship_generator_call(pool):
    return pool.submit(consume, numbers())  # expect: RA009


def ship_genexp(pool, items):
    return pool.submit(consume, (item + 1 for item in items))  # expect: RA009


def ship_lambda(pool):
    return pool.submit(consume, lambda: 1)  # expect: RA009


def ship_lock(pool):
    lock = threading.Lock()
    return pool.submit(consume, lock)  # expect: RA009


def ship_tracer(pool):
    tracer = Tracer()
    return pool.submit(consume, tracer)  # expect: RA009


def ship_attached_inline(pool):
    return pool.submit(consume, AttachedThing())  # expect: RA009


def ship_attachment(pool, handle):
    return pool.submit(consume, handle.attach())  # expect: RA009


def ship_initargs_lock():
    lock = threading.Lock()
    return ProcessPoolExecutor(
        initializer=consume, initargs=(lock,)  # expect: RA009
    )


class Shipper:
    def __init__(self):
        self._lock = threading.Lock()

    def ship(self, pool):
        return pool.submit(consume, self._lock)  # expect: RA009
