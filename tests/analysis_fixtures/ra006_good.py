"""Good fixture: telemetry handles are injected — constructor arguments
resolved through the null-object default, parameters, and locals.  A
parameter shadowing a module-level name is also fine: the receiver binds
in the function scope, not at module level."""

from repro.obs import MetricsRegistry, resolve_registry, resolve_tracer

#: Not a registry — just a module global whose *name* a parameter reuses.
METRICS = None


class InstrumentedService:
    def __init__(self, metrics=None, tracer=None):
        self._metrics = resolve_registry(metrics)
        self._tracer = resolve_tracer(tracer)
        self._m_batches = self._metrics.counter("repro_batches_total")

    def dispatch(self, batch):
        with self._tracer.span("batch", tags={"queries": len(batch)}):
            self._m_batches.inc()
            self._metrics.gauge("repro_queue_depth").set(0)


def observe_latency(metrics, value):
    registry = resolve_registry(metrics)
    registry.histogram("repro_latency_seconds").observe(value)


def shadowed_receiver(METRICS, value):
    METRICS.counter("repro_shadowed_total").inc(value)


def fresh_local_registry():
    registry = MetricsRegistry()
    registry.counter("repro_local_total").inc()
    return registry.snapshot()
