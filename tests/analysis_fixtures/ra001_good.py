"""Good fixture: every guarded access sits inside ``with self._lock:``."""

import threading


class Counter:
    _GUARDED_BY_LOCK = frozenset({"_count"})

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def read(self):
        with self._lock:
            return self._count
