"""Bad fixture: process-global telemetry — a module-level registry/tracer
singleton, and counter/gauge/histogram/span calls routed through
module-level globals instead of injected handles."""

from repro.obs import NULL_REGISTRY, MetricsRegistry, Tracer

METRICS = MetricsRegistry()  # expect: RA006
TRACER = Tracer()  # expect: RA006


def record_batch(n):
    METRICS.counter("repro_batches_total").inc()  # expect: RA006
    with TRACER.span("batch"):  # expect: RA006
        return n


class GlobalDepthReporter:
    def report(self, depth):
        METRICS.gauge("repro_queue_depth").set(depth)  # expect: RA006


def observe_noop(value):
    NULL_REGISTRY.histogram("repro_latency_seconds").observe(value)  # expect: RA006
