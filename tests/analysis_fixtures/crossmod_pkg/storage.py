"""Storage half: locks ordered against metrics, shm holders, a shipper."""

import threading

from .metrics import Registry, iter_samples, log_failure, release_export


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._registry = Registry(self)

    def seal(self):
        with self._lock:
            self._registry.bump()  # opposite order to Registry.flush


def consume(item):
    return item


class SafeHolder:
    def __init__(self, store, graph, registry):
        shared = store.export_shm()
        self._shared = shared
        self._graph = graph
        try:
            registry.observe(shared.nbytes)
        except BaseException:
            release_export(graph)  # helper (other module) releases: fine
            raise


class LeakyHolder:
    def __init__(self, store, registry):
        shared = store.export_shm()  # expect: RA008
        self._shared = shared
        try:
            registry.observe(shared.nbytes)
        except BaseException:
            log_failure("boom")  # resolves, but releases nothing
            raise


def ship_remote_generator(pool):
    return pool.submit(consume, iter_samples())  # expect: RA009
