"""Cross-module fixture package: findings that need the project index.

The modules here import each other (including a deliberate circular
import) — the package is only ever *parsed* by the analyzer, never
imported.
"""
