"""Metrics half: the other side of the lock cycle, helpers, a generator."""

import threading

from .storage import Store


class Registry:
    def __init__(self, store):
        self._lock = threading.Lock()
        self._store: Store = store

    def bump(self):
        with self._lock:
            pass

    def flush(self):
        with self._lock:
            self._store.seal()  # expect: RA007


def iter_samples():
    yield 1


def release_export(graph):
    graph.snapshots.release_shm(1)


def log_failure(note):
    return note
