"""Bad fixture: snapshot artefact stored without a version pin; private
DiGraph adjacency poked from outside ``repro/graph/``."""

from repro.bfs.distance_index import build_index


class StaleIndexHolder:
    def __init__(self, graph, sources, targets, max_hops):
        self._index = build_index(graph, sources, targets, max_hops)  # expect: RA002

    def lookup(self):
        return self._index


def peek_adjacency(graph, v):
    return graph._out[v]  # expect: RA002


def peek_store(graph):
    return graph._snapshots  # expect: RA002
