"""Good fixture: module-level callables cross the pool boundary."""

from concurrent.futures import ProcessPoolExecutor


def work(item):
    return item + 1


def run(items):
    with ProcessPoolExecutor(initializer=work) as pool:
        worker = work
        return [pool.submit(worker, item) for item in items]


class Exporter:
    """Module-level handle sources: initargs are data, not callables."""

    def open_pool(self, shared, config):
        # A handle pulled off an attribute pickles fine — its class is
        # module-level; RA003 must not confuse data args with callables.
        init_graph = shared.handle
        return ProcessPoolExecutor(
            initializer=work, initargs=(init_graph, config)
        )
