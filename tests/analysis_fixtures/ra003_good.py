"""Good fixture: module-level callables cross the pool boundary."""

from concurrent.futures import ProcessPoolExecutor


def work(item):
    return item + 1


def run(items):
    with ProcessPoolExecutor(initializer=work) as pool:
        worker = work
        return [pool.submit(worker, item) for item in items]
