"""Bad fixture: a public method leaks an internal mutable container."""


class PathStore:
    def __init__(self):
        self._paths = []

    def add(self, path):
        self._paths.append(path)

    def paths(self):
        return self._paths  # expect: RA004
