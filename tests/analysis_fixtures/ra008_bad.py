"""Bad fixture: resource acquires that leak on some path."""

from concurrent.futures import ProcessPoolExecutor


class SharedCSR:
    @classmethod
    def create(cls, snapshot):
        return cls()

    def unlink(self):
        pass


def noop(item):
    return item


def forget_pin(store):
    pinned = store.pin()  # expect: RA008
    return pinned.version


def leak_window(store, registry):
    segment = store.export_shm()  # expect: RA008
    registry.observe(segment.nbytes)
    try:
        return segment.handle
    finally:
        store.release_shm(1)


def forget_pool(tasks):
    executor = ProcessPoolExecutor(max_workers=2)  # expect: RA008
    return [executor.submit(noop, task) for task in tasks]


class Holder:
    def __init__(self, snapshot, registry):
        segment = SharedCSR.create(snapshot)  # expect: RA008
        self._segment = segment
        registry.observe(snapshot)

    def close(self):
        segment = self._segment
        self._segment = None
        if segment is not None:
            segment.unlink()
