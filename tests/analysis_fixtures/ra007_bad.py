"""Bad fixture: lock-order cycle between classes and lock re-entry."""

import threading


class Gauge:
    def __init__(self, store):
        self._lock = threading.RLock()
        self._store: Store = store

    def record(self):
        with self._lock:
            pass

    def drain(self):
        with self._lock:
            self._store.seal()  # expect: RA007


class Store:
    def __init__(self):
        self._lock = threading.RLock()
        self._gauge = Gauge(self)

    def seal(self):
        with self._lock:
            self._gauge.record()


class Counter:
    def __init__(self):
        self._lock = threading.Lock()

    def inc(self):
        with self._lock:
            pass

    def inc_twice(self):
        with self._lock:
            with self._lock:  # expect: RA007
                pass

    def double(self):
        with self._lock:
            self.inc()  # expect: RA007
