"""Good fixture: one global lock order, re-entry only through RLocks."""

import threading


class Gauge:
    def __init__(self):
        self._lock = threading.Lock()

    def record(self):
        with self._lock:
            pass


class Store:
    def __init__(self):
        self._lock = threading.RLock()
        self._gauge = Gauge()

    def seal(self):
        with self._lock:
            self._gauge.record()  # every path takes Store before Gauge

    def resolve(self):
        with self._lock:
            self.seal()  # RLock re-entry through a call is fine

    def audit(self, other):
        with self._lock:
            other.refresh()  # unresolvable receiver: conservative silence
