"""Good fixture: public accessors copy; private plumbing may share."""


class PathStore:
    def __init__(self):
        self._paths = []

    def add(self, path):
        self._paths.append(path)

    def paths(self):
        return list(self._paths)

    def _raw_paths(self):
        return self._paths
