"""Unit tests for the DiGraph container."""

import pytest

from repro.graph.digraph import DiGraph


def test_empty_graph():
    graph = DiGraph()
    assert graph.num_vertices == 0
    assert graph.num_edges == 0
    assert list(graph.edges()) == []


def test_add_edge_and_neighbors():
    graph = DiGraph(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    assert graph.num_edges == 2
    assert list(graph.out_neighbors(0)) == [1]
    assert list(graph.in_neighbors(2)) == [1]
    assert graph.has_edge(0, 1)
    assert not graph.has_edge(1, 0)


def test_add_vertex_returns_new_id():
    graph = DiGraph(2)
    new_id = graph.add_vertex()
    assert new_id == 2
    assert graph.num_vertices == 3


def test_self_loop_rejected():
    graph = DiGraph(2)
    with pytest.raises(ValueError):
        graph.add_edge(1, 1)


def test_duplicate_edge_rejected():
    graph = DiGraph(2)
    graph.add_edge(0, 1)
    with pytest.raises(ValueError):
        graph.add_edge(0, 1)


def test_out_of_range_vertex_rejected():
    graph = DiGraph(2)
    with pytest.raises(ValueError):
        graph.add_edge(0, 5)
    with pytest.raises(ValueError):
        graph.add_edge(-1, 0)


def test_from_edges_infers_vertex_count():
    graph = DiGraph.from_edges([(0, 3), (3, 1)])
    assert graph.num_vertices == 4
    assert graph.num_edges == 2


def test_from_edges_ignores_duplicates():
    graph = DiGraph.from_edges([(0, 1), (0, 1), (1, 2)])
    assert graph.num_edges == 2


def test_degrees():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (2, 0)])
    assert graph.out_degree(0) == 2
    assert graph.in_degree(0) == 1
    assert graph.degree(0) == 3


def test_reverse_graph():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    reversed_graph = graph.reverse()
    assert reversed_graph.has_edge(1, 0)
    assert reversed_graph.has_edge(2, 1)
    assert reversed_graph.num_edges == graph.num_edges
    # Reversing twice gives back the original edge set.
    assert reversed_graph.reverse() == graph


def test_copy_is_independent():
    graph = DiGraph.from_edges([(0, 1)])
    clone = graph.copy()
    clone.add_edge(1, 0)
    assert not graph.has_edge(1, 0)
    assert clone.has_edge(1, 0)


def test_equality_by_structure():
    a = DiGraph.from_edges([(0, 1), (1, 2)])
    b = DiGraph.from_edges([(1, 2), (0, 1)])
    assert a == b
    b.add_edge(2, 0)
    assert a != b


def test_edges_iteration_matches_edge_count():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    assert len(list(graph.edges())) == graph.num_edges


def test_to_dict():
    graph = DiGraph.from_edges([(0, 1), (0, 2)])
    adjacency = graph.to_dict()
    assert adjacency[0] == [1, 2]
    assert adjacency[1] == []
