"""Tests for the experiment harness and per-figure drivers (reduced scales)."""

import math

import pytest

from repro.experiments import datasets
from repro.experiments.harness import AlgorithmRun, compare_algorithms, run_algorithm
from repro.experiments.reporting import format_series, format_table
from repro.experiments import (
    exp_decomposition,
    exp_gamma,
    exp_ksp,
    exp_materialization,
    exp_num_paths,
    exp_query_set_size,
    exp_scalability,
    exp_similarity,
)
from repro.queries.generation import generate_random_queries

SMALL_SCALE = 0.25  # shrink every dataset for the test suite


# --------------------------------------------------------------------- #
# Dataset suite (Table I)
# --------------------------------------------------------------------- #
def test_dataset_registry_has_twelve_named_datasets():
    names = datasets.dataset_names()
    assert names == ["EP", "SL", "BK", "WT", "BS", "SK", "UK", "DA", "PO", "LJ", "TW", "FS"]


def test_dataset_sizes_preserve_paper_ordering():
    """The synthetic stand-ins keep the relative |V| ordering of Table I for
    the extreme datasets."""
    ep = datasets.load_dataset("EP", scale=SMALL_SCALE)
    fs = datasets.load_dataset("FS", scale=SMALL_SCALE)
    assert ep.num_vertices < fs.num_vertices


def test_dataset_loading_is_cached_and_deterministic():
    a = datasets.load_dataset("EP", scale=SMALL_SCALE)
    b = datasets.load_dataset("EP", scale=SMALL_SCALE)
    assert a is b


def test_dataset_table_rows():
    rows = datasets.dataset_table(scale=SMALL_SCALE, quick=True)
    assert len(rows) == len(datasets.QUICK_DATASETS)
    for row in rows:
        assert row["|V|"] > 0
        assert row["|E|"] > 0
        assert row["davg"] > 0
    assert "EP" in format_table(rows)


def test_unknown_dataset_rejected():
    with pytest.raises(ValueError):
        datasets.load_dataset("NOPE")


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #
def test_run_algorithm_records_time_and_paths():
    graph = datasets.load_dataset("EP", scale=SMALL_SCALE)
    queries = generate_random_queries(graph, 5, min_k=3, max_k=3, seed=1)
    run = run_algorithm(graph, queries, "basic")
    assert isinstance(run, AlgorithmRun)
    assert run.seconds > 0.0
    assert run.total_paths >= 0
    assert run.display_name == "BasicEnum"


def test_compare_algorithms_agree_on_path_counts():
    graph = datasets.load_dataset("EP", scale=SMALL_SCALE)
    queries = generate_random_queries(graph, 5, min_k=3, max_k=3, seed=2)
    runs = compare_algorithms(graph, queries, ("basic", "batch", "batch+"))
    counts = {run.total_paths for run in runs.values()}
    assert len(counts) == 1


def test_reporting_formats():
    table = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T")
    assert "T" in table and "22" in table
    series = format_series({"algo": {1: 0.5, 2: 0.25}}, x_label="n")
    assert "algo" in series and "0.2500" in series
    assert "(no rows)" in format_table([])


# --------------------------------------------------------------------- #
# Per-figure drivers (smoke level, reduced scale)
# --------------------------------------------------------------------- #
def test_fig7_similarity_experiment_shape():
    outcome = exp_similarity.run_similarity_experiment(
        "EP", similarities=(0.0, 0.8), num_queries=8, scale=SMALL_SCALE
    )
    assert set(outcome["times"]) >= {"BasicEnum", "BatchEnum", "BatchEnum+"}
    for curve in outcome["times"].values():
        assert set(curve) == {0.0, 0.8}
        assert all(value > 0 for value in curve.values())
    limits = outcome["speedups"]["Speedup Limit"]
    assert limits[0.8] >= 1.0


def test_fig8_query_set_size_experiment_shape():
    outcome = exp_query_set_size.run_query_set_size_experiment(
        "EP", sizes=(4, 8), scale=SMALL_SCALE
    )
    for curve in outcome["times"].values():
        assert set(curve) == {4, 8}


def test_fig9_decomposition_covers_all_stages():
    row = exp_decomposition.run_decomposition_experiment(
        "EP", num_queries=8, scale=SMALL_SCALE
    )
    for stage in exp_decomposition.STAGES:
        assert stage in row
        assert row[stage] >= 0.0
    assert row["total"] >= sum(row[stage] for stage in exp_decomposition.STAGES) * 0.99


def test_fig10_gamma_experiment_shape():
    outcome = exp_gamma.run_gamma_experiment(
        "EP", gammas=(0.2, 0.8), num_queries=8, scale=SMALL_SCALE
    )
    assert set(outcome["times"]) == {0.2, 0.8}
    # Lower γ merges more aggressively, so it cannot produce more clusters.
    assert outcome["clusters"][0.2] <= outcome["clusters"][0.8]


def test_fig11_scalability_experiment_shape():
    outcome = exp_scalability.run_scalability_experiment(
        "TW", fractions=(0.5, 1.0), num_queries=6, scale=0.1
    )
    assert outcome["graph_edges"][1.0] >= outcome["graph_edges"][0.5]
    for curve in outcome["times"].values():
        assert all(value > 0 for value in curve.values())


def test_fig12_ksp_experiment_orders_of_magnitude():
    row = exp_ksp.run_ksp_experiment("EP", num_queries=3, scale=SMALL_SCALE)
    assert row["DkSP"] > 0 and row["OnePass"] > 0 and row["BatchEnum+"] > 0
    # The adapted KSP algorithms must be slower than the batch algorithm.
    assert row["DkSP / BatchEnum+"] > 1.0
    assert row["OnePass / BatchEnum+"] > 1.0


def test_fig13_path_counts_grow_with_k():
    outcome = exp_num_paths.run_num_paths_experiment(
        "EP", hop_constraints=(3, 4), num_queries=8, scale=SMALL_SCALE
    )
    averages = outcome["average_paths"]
    assert averages[4] >= averages[3]


def test_fig3c_materialization_gap():
    row = exp_materialization.run_materialization_experiment(
        "EP", num_queries=8, scale=SMALL_SCALE
    )
    assert row["enumerate (s/query)"] > 0
    assert row["materialized scan (s/query)"] >= 0
    assert math.isfinite(row["ratio"])
    # Scanning materialised results must be much cheaper than enumerating.
    assert row["ratio"] > 5.0
