"""Unit tests for the utility helpers."""

import time

import pytest

from repro.utils.timer import StageTimer, Timer
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_vertex,
)


def test_timer_accumulates():
    timer = Timer()
    with timer:
        time.sleep(0.001)
    first = timer.elapsed
    with timer:
        time.sleep(0.001)
    assert timer.elapsed > first


def test_timer_stop_without_start():
    timer = Timer()
    with pytest.raises(RuntimeError):
        timer.stop()


def test_timer_reset():
    timer = Timer()
    with timer:
        pass
    timer.reset()
    assert timer.elapsed == 0.0


def test_stage_timer_accumulates_per_stage():
    stages = StageTimer()
    with stages.stage("a"):
        time.sleep(0.001)
    with stages.stage("a"):
        pass
    with stages.stage("b"):
        pass
    assert stages.total("a") > 0.0
    assert set(stages.totals) == {"a", "b"}
    assert stages.overall == pytest.approx(stages.total("a") + stages.total("b"))


def test_stage_timer_add_and_merge():
    a = StageTimer()
    a.add("x", 1.0)
    b = StageTimer()
    b.add("x", 0.5)
    b.add("y", 2.0)
    a.merge(b)
    assert a.total("x") == pytest.approx(1.5)
    assert a.total("y") == pytest.approx(2.0)
    assert a.total("missing") == 0.0


def test_require():
    require(True, "fine")
    with pytest.raises(ValueError, match="broken"):
        require(False, "broken")


def test_require_non_negative():
    assert require_non_negative(0, "x") == 0
    with pytest.raises(ValueError):
        require_non_negative(-1, "x")
    with pytest.raises(ValueError):
        require_non_negative(1.5, "x")
    with pytest.raises(ValueError):
        require_non_negative(True, "x")


def test_require_positive():
    assert require_positive(3, "x") == 3
    with pytest.raises(ValueError):
        require_positive(0, "x")


def test_require_vertex():
    assert require_vertex(2, 5) == 2
    with pytest.raises(ValueError):
        require_vertex(5, 5)
    with pytest.raises(ValueError):
        require_vertex("a", 5)
