"""Tests for the plan/execute split: QueryPlanner, ExecutionPlan, CostModel,
eager ``num_workers`` validation and the ship-vs-rebuild differential.

The load-bearing contract: whatever the planner decides — worker count,
shard assignments, shipping the parent-built index versus rebuilding per
worker — the paths delivered per batch position are bit-identical to the
sequential ``num_workers=1`` run (which itself bypasses planning entirely).
"""

from __future__ import annotations

import json

import pytest

from repro.batch.engine import (
    ALGORITHMS,
    BatchQueryEngine,
    batch_enumerate,
    validate_num_workers,
)
from repro.batch.planner import (
    CLUSTERED_ALGORITHMS,
    CostModel,
    ExecutionPlan,
    QueryPlanner,
    estimate_query_cost,
)
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries

#: A cost model that makes parallelism look free (forces sharding) …
EAGER_MODEL = CostModel(
    spawn_overhead_base=0.0,
    spawn_overhead_per_worker=0.0,
    seconds_per_cost_unit=1.0,
    parallel_benefit_margin=1.0,
)
#: … and one that makes shipping look terrible (forces per-worker rebuild).
REBUILD_MODEL = CostModel(seconds_per_shipped_byte=1e6)


def _workload(seed, num_queries=8):
    graph = random_directed_gnm(30, 110, seed=seed)
    queries = generate_random_queries(graph, num_queries, min_k=2, max_k=4, seed=seed)
    return graph, queries


# --------------------------------------------------------------------- #
# Eager num_workers validation (engine __init__, not executor depths)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("bad", [0, -1, -7, 2.5, "turbo", "", True, False, None])
def test_engine_rejects_bad_num_workers_eagerly(bad):
    graph, _ = _workload(0)
    with pytest.raises((ValueError, TypeError)):
        BatchQueryEngine(graph, num_workers=bad)


@pytest.mark.parametrize("good", [1, 2, 16, "auto"])
def test_engine_accepts_valid_num_workers(good):
    graph, _ = _workload(0)
    engine = BatchQueryEngine(graph, num_workers=good)
    assert engine.num_workers == good


def test_validate_num_workers_is_exported_and_strict():
    assert validate_num_workers("auto") == "auto"
    assert validate_num_workers(3) == 3
    with pytest.raises(ValueError):
        validate_num_workers("AUTO")
    with pytest.raises(ValueError):
        validate_num_workers(True)


def test_planner_validates_num_workers_and_max_workers_itself():
    """The invariant holds at the planner layer too, not just the engine
    facade — QueryPlanner is public API."""
    graph, queries = _workload(0)
    planner = QueryPlanner(graph)
    for bad in (0, -3, True, "turbo"):
        with pytest.raises(ValueError):
            planner.plan(queries, num_workers=bad)
    with pytest.raises(ValueError):
        QueryPlanner(graph, max_workers=0)


# --------------------------------------------------------------------- #
# Plans: structure and explain()
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_explain_shards_cover_every_position_exactly_once(algorithm):
    graph, queries = _workload(1)
    plan = BatchQueryEngine(graph, algorithm=algorithm).explain(queries)
    assert isinstance(plan, ExecutionPlan)
    covered = sorted(p for shard in plan.shards for p in shard.positions)
    assert covered == list(range(len(queries)))
    expected_kind = "cluster" if algorithm in CLUSTERED_ALGORITHMS else "slice"
    assert {shard.kind for shard in plan.shards} == {expected_kind}
    assert plan.num_workers >= 1
    assert plan.total_estimated_cost > 0
    assert "ExecutionPlan" in plan.describe()


def test_explain_empty_batch_is_trivial():
    graph, _ = _workload(2)
    plan = BatchQueryEngine(graph).explain([])
    assert plan.num_workers == 1
    assert plan.shards == [] and not plan.ship_index


def test_explain_does_not_execute():
    graph, queries = _workload(3)
    engine = BatchQueryEngine(graph, algorithm="batch+")
    plan = engine.explain(queries)
    # Planning built the index and clusters but enumerated nothing.
    assert plan.workload is not None
    assert plan.stage_timer.total("Enumeration") == 0.0


def test_auto_resolves_to_one_on_tiny_workloads():
    graph, queries = _workload(4)
    plan = BatchQueryEngine(graph, algorithm="batch+").explain(queries)
    # Spawn overhead dwarfs any pure-Python win on an 8-query toy batch.
    assert plan.num_workers == 1


def test_auto_can_choose_parallel_when_cost_model_favours_it():
    graph, queries = _workload(5)
    plan = BatchQueryEngine(
        graph,
        algorithm="basic+",
        cost_model=EAGER_MODEL,
        max_workers=4,
    ).explain(queries)
    assert plan.num_workers > 1
    assert len(plan.shards) == min(plan.num_workers, len(queries))


def test_fixed_worker_request_is_honoured():
    graph, queries = _workload(6)
    plan = BatchQueryEngine(graph, algorithm="batch+", num_workers=3).explain(
        queries
    )
    assert plan.requested_workers == 3
    assert plan.num_workers == 3


def test_ship_decision_serializes_index_for_clustered_parallel_plans():
    graph, queries = _workload(7)
    plan = BatchQueryEngine(graph, algorithm="batch+", num_workers=2).explain(
        queries
    )
    assert plan.ship_index
    assert plan.index_bytes is not None
    assert plan.index_payload_bytes == len(plan.index_bytes)
    assert plan.estimated_index_ship_seconds < plan.estimated_index_rebuild_seconds


def test_rebuild_decision_when_shipping_is_expensive():
    graph, queries = _workload(7)
    plan = BatchQueryEngine(
        graph, algorithm="batch+", num_workers=2, cost_model=REBUILD_MODEL
    ).explain(queries)
    assert not plan.ship_index
    assert plan.index_bytes is None


# --------------------------------------------------------------------- #
# Ship-vs-rebuild differential: all 7 algorithms, both plans, same paths
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_ship_and_rebuild_plans_match_sequential(algorithm):
    graph, queries = _workload(8)
    sequential = BatchQueryEngine(
        graph, algorithm=algorithm, num_workers=1
    ).run(queries)
    shipped = BatchQueryEngine(graph, algorithm=algorithm, num_workers=2).run(
        queries
    )
    rebuilt = BatchQueryEngine(
        graph, algorithm=algorithm, num_workers=2, cost_model=REBUILD_MODEL
    ).run(queries)
    for position in range(len(queries)):
        assert shipped.paths_at(position) == sequential.paths_at(position)
        assert rebuilt.paths_at(position) == sequential.paths_at(position)


def test_auto_engine_matches_sequential_results():
    graph, queries = _workload(9)
    for algorithm in ("batch+", "basic"):
        sequential = BatchQueryEngine(
            graph, algorithm=algorithm, num_workers=1
        ).run(queries)
        auto = BatchQueryEngine(graph, algorithm=algorithm).run(queries)
        assert auto.counts() == sequential.counts()
        for position in range(len(queries)):
            assert auto.paths_at(position) == sequential.paths_at(position)


def test_forced_parallel_auto_still_matches_sequential():
    graph, queries = _workload(10)
    sequential = BatchQueryEngine(
        graph, algorithm="basic+", num_workers=1
    ).run(queries)
    forced = BatchQueryEngine(
        graph, algorithm="basic+", cost_model=EAGER_MODEL, max_workers=3
    ).run(queries)
    for position in range(len(queries)):
        assert forced.paths_at(position) == sequential.paths_at(position)


def test_batch_enumerate_accepts_auto():
    graph, queries = _workload(11)
    sequential = batch_enumerate(graph, queries, num_workers=1)
    auto = batch_enumerate(graph, queries)  # default "auto"
    assert auto.counts() == sequential.counts()


# --------------------------------------------------------------------- #
# Cost model calibration
# --------------------------------------------------------------------- #
def test_cost_model_from_benchmark(tmp_path):
    payload = {
        "benchmark": "bench_workers",
        "records": [
            {
                "dataset": "TW", "fraction": 1.0, "algorithm": "batch+",
                "num_workers": 1, "wall_seconds": 0.10,
                "estimated_cost_units": 20000.0,
            },
            {
                "dataset": "TW", "fraction": 1.0, "algorithm": "batch+",
                "num_workers": 2, "wall_seconds": 0.20,
            },
            {
                "dataset": "TW", "fraction": 1.0, "algorithm": "batch+",
                "num_workers": 4, "wall_seconds": 0.30,
            },
        ],
    }
    path = tmp_path / "BENCH_workers.json"
    path.write_text(json.dumps(payload))
    model = CostModel.from_benchmark(path)
    # extra(2)=0.10, extra(4)=0.20 -> slope 0.05/worker, base 0.0
    assert model.spawn_overhead_per_worker == pytest.approx(0.05)
    assert model.spawn_overhead_base == pytest.approx(0.0, abs=1e-12)
    assert model.seconds_per_cost_unit == pytest.approx(0.10 / 20000.0)
    # Overhead must make tiny workloads resolve sequential.
    assert model.spawn_seconds(1) == 0.0
    assert model.spawn_seconds(2) > 0.0


def test_cost_model_from_missing_benchmark_falls_back_to_defaults():
    model = CostModel.from_benchmark("/nonexistent/BENCH_workers.json")
    assert model == CostModel()


def test_cost_model_from_malformed_benchmark_falls_back_to_defaults(tmp_path):
    path = tmp_path / "BENCH_workers.json"
    path.write_text(json.dumps({"records": [{"dataset": "TW"}]}))  # no num_workers
    assert CostModel.from_benchmark(path) == CostModel()
    path.write_text(json.dumps({"records": "not-a-list"}))
    assert CostModel.from_benchmark(path) == CostModel()


def test_estimate_query_cost_positive_with_and_without_index():
    graph, queries = _workload(12)
    planner = QueryPlanner(graph, algorithm="batch+")
    plan = planner.plan(queries)
    index = plan.workload.index
    for query in queries:
        assert estimate_query_cost(query, index, graph, "batch+") > 0
        assert estimate_query_cost(query, None, graph, "dksp") > 0
    # dksp's per-deviation recomputation is modelled as strictly costlier.
    assert estimate_query_cost(queries[0], None, graph, "dksp") > (
        estimate_query_cost(queries[0], None, graph, "onepass")
    )


def test_planner_reuses_artifacts_in_sequential_auto_run():
    graph, queries = _workload(13)
    engine = BatchQueryEngine(graph, algorithm="batch+")  # auto -> 1 here
    result = engine.run(queries)
    # BuildIndex ran exactly once (during planning) and was reused; a
    # duplicated build would show up as a second timing entry of the same
    # magnitude, so we simply require the stage to be present and the
    # result complete.
    assert result.stage_timer.total("BuildIndex") > 0.0
    assert len(result.paths_by_position) == len(queries)
