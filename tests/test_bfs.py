"""Unit tests for BFS primitives and the distance index."""

import math

import pytest

from repro.bfs.distance_index import build_index, build_index_for_queries
from repro.bfs.multi_source import multi_source_bfs
from repro.bfs.single_source import bfs_distances, bfs_levels
from repro.graph.digraph import DiGraph
from repro.graph.generators import paper_example_graph, random_directed_gnm


def test_bfs_distances_simple_chain():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    distances = bfs_distances(graph, 0)
    assert distances == {0: 0, 1: 1, 2: 2, 3: 3}


def test_bfs_distances_hop_bound():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    distances = bfs_distances(graph, 0, max_hops=2)
    assert 3 not in distances
    assert distances[2] == 2


def test_bfs_backward_direction():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    distances = bfs_distances(graph, 2, forward=False)
    assert distances == {2: 0, 1: 1, 0: 2}


def test_bfs_levels_grouping():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    levels = bfs_levels(graph, 0)
    assert levels[0] == [0]
    assert levels[1] == [1, 2]
    assert levels[2] == [3]


def test_paper_index_distances_to_v14():
    """Fig. 2(b): dist(v, v14) entries for query q3."""
    graph = paper_example_graph()
    distances = bfs_distances(graph, 14, max_hops=4, forward=False)
    assert distances[6] == 1
    assert distances[3] == 2
    assert distances[15] == 2
    assert distances[9] == 3
    assert distances[4] == 4
    assert 8 not in distances  # dist(v8, v14) = ∞ in Example 3.1


def test_multi_source_matches_single_source():
    graph = random_directed_gnm(80, 320, seed=9)
    sources = [0, 3, 7, 7, 15]
    combined = multi_source_bfs(graph, sources, max_hops=4)
    for source in set(sources):
        assert combined[source] == bfs_distances(graph, source, max_hops=4)


def test_multi_source_backward_matches_single_source():
    graph = random_directed_gnm(60, 240, seed=2)
    targets = [1, 5, 9]
    combined = multi_source_bfs(graph, targets, max_hops=3, forward=False)
    for target in targets:
        assert combined[target] == bfs_distances(
            graph, target, max_hops=3, forward=False
        )


def test_multi_source_empty_sources():
    graph = DiGraph.from_edges([(0, 1)])
    assert multi_source_bfs(graph, []) == {}


def test_build_index_lookup_and_infinity():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (3, 0)])
    index = build_index(graph, sources=[0], targets=[2], max_hops=3)
    assert index.dist_from(0, 2) == 2
    assert index.dist_to(2, 0) == 2
    assert math.isinf(index.dist_from(0, 3))  # 3 is not reachable from 0
    assert index.has_source(0)
    assert not index.has_source(1)
    with pytest.raises(KeyError):
        index.dist_from(1, 0)


def test_build_index_for_queries_bounds():
    graph = random_directed_gnm(50, 250, seed=4)
    triples = [(0, 10, 3), (5, 20, 4)]
    index = build_index_for_queries(graph, triples)
    assert index.max_hops == 4
    assert index.has_source(0) and index.has_source(5)
    assert index.has_target(10) and index.has_target(20)


def test_neighborhood_extraction():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    index = build_index(graph, sources=[0], targets=[3], max_hops=3)
    assert index.forward_neighborhood(0, 2) == frozenset({0, 1, 2})
    assert index.backward_neighborhood(3, 1) == frozenset({2, 3})


def test_level_sizes():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    index = build_index(graph, sources=[0], targets=[3], max_hops=2)
    assert index.forward_level_sizes(0, 2) == [1, 2, 1]
    assert index.backward_level_sizes(3, 2) == [1, 2, 1]


def test_index_size_in_entries_positive():
    graph = random_directed_gnm(30, 120, seed=8)
    index = build_index(graph, sources=[0, 1], targets=[2], max_hops=3)
    assert index.size_in_entries > 0
