"""Unit tests for the multi-version :class:`SnapshotStore` (PR 7).

Covers the copy-on-write seal/pin/release lifecycle, the bounded mutation
log behind ``delta()`` (netting, barriers, trim floor), the new
``DiGraph.remove_edge`` mutator, the bulk ``reverse()`` path and
pickling (the store holds an RLock, so it must be rebuilt on unpickle).
"""

import pickle
import threading
from bisect import insort as real_insort

import pytest

from repro.graph import digraph as digraph_module
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_directed_gnm
from repro.graph.snapshots import DEFAULT_MAX_LOG, SnapshotStore


# --------------------------------------------------------------------- #
# Seal / pin / release lifecycle
# --------------------------------------------------------------------- #
def test_seal_caches_per_head_version_and_forgets_unpinned():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    first = graph.csr_snapshot()
    assert graph.csr_snapshot() is first  # cached per head version
    assert first.version == graph.version
    old_version = graph.version
    graph.add_edge(0, 2)
    fresh = graph.csr_snapshot()
    assert fresh is not first
    assert fresh.version == graph.version == old_version + 1
    # The unpinned old head was dropped by the mutation.
    assert graph.snapshots.live_versions() == [graph.version]
    with pytest.raises(KeyError, match="not live"):
        graph.snapshots.resolve(old_version)


def test_pin_refcounts_keep_old_versions_alive():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    store = graph.snapshots
    pin_a = store.pin()
    pin_b = store.pin()
    assert pin_a.csr is pin_b.csr
    assert store.pin_count(pin_a.version) == 2
    pinned_version = pin_a.version

    graph.add_edge(0, 2)  # mutation: pinned version must survive
    assert store.resolve(pinned_version) is pin_a.csr
    assert sorted(store.live_versions()) == [pinned_version]

    pin_a.release()
    assert store.pin_count(pinned_version) == 1
    assert store.resolve(pinned_version) is pin_b.csr
    pin_a.release()  # idempotent: counts at most once
    assert store.pin_count(pinned_version) == 1

    pin_b.release()
    assert store.pin_count(pinned_version) == 0
    with pytest.raises(KeyError):
        store.resolve(pinned_version)


def test_released_head_survives_as_snapshot_cache():
    graph = DiGraph.from_edges([(0, 1)])
    with graph.snapshots.pin() as pin:
        head = pin.version
        assert graph.snapshots.pin_count(head) == 1
    # Context exit released the pin, but the head CSR stays cached.
    assert graph.snapshots.pin_count(head) == 0
    assert graph.snapshots.resolve(head) is graph.csr_snapshot()


def test_pin_is_atomic_under_concurrent_mutation():
    graph = random_directed_gnm(30, 120, seed=5)
    stop = threading.Event()

    def churn():
        while not stop.is_set():
            if graph.has_edge(0, 1):
                graph.remove_edge(0, 1)
            else:
                graph.add_edge(0, 1)

    thread = threading.Thread(target=churn, daemon=True)
    thread.start()
    try:
        for _ in range(100):
            with graph.snapshots.pin() as pin:
                csr = pin.csr
                # No torn packing: row structure internally consistent.
                total = sum(
                    len(csr.out_neighbors(v)) for v in csr.vertices()
                )
                assert total == csr.num_edges
                for v in csr.vertices():
                    row = csr.out_neighbors(v)
                    assert all(
                        row[i] < row[i + 1] for i in range(len(row) - 1)
                    )
    finally:
        stop.set()
        thread.join(timeout=5.0)


def test_store_rejects_negative_log_bound():
    graph = DiGraph.from_edges([(0, 1)])
    with pytest.raises(ValueError):
        SnapshotStore(graph, max_log=-1)


# --------------------------------------------------------------------- #
# Mutation log and delta()
# --------------------------------------------------------------------- #
def test_delta_nets_adds_removes_and_cancellations():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
    start = graph.version
    assert graph.snapshots.delta(start, start) == ([], [])
    graph.add_edge(0, 2)       # net add
    graph.remove_edge(1, 2)    # net remove
    graph.add_edge(3, 0)       # add then remove: cancels out
    graph.remove_edge(3, 0)
    graph.remove_edge(2, 3)    # remove then re-add: cancels out
    graph.add_edge(2, 3)
    assert graph.snapshots.delta(start, graph.version) == (
        [(0, 2)],
        [(1, 2)],
    )


def test_delta_none_on_backwards_window_and_barrier():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    start = graph.version
    graph.add_edge(0, 2)
    assert graph.snapshots.delta(graph.version, start) is None  # backwards
    graph.add_vertex()  # vertex-count change: delta cannot express it
    assert graph.snapshots.delta(start, graph.version) is None
    # A window opened after the barrier is coverable again.
    after_barrier = graph.version
    graph.add_edge(3, 0)
    assert graph.snapshots.delta(after_barrier, graph.version) == (
        [(3, 0)],
        [],
    )


def test_delta_none_once_log_trims_past_from_version():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    start = graph.version
    # Overflow the bounded log: the floor advances past `start`.
    for _ in range(DEFAULT_MAX_LOG // 2 + 2):
        graph.remove_edge(0, 1)
        graph.add_edge(0, 1)
    assert graph.snapshots.delta(start, graph.version) is None
    # Recent windows inside the retained log still resolve.
    recent = graph.version
    graph.add_edge(0, 2)
    assert graph.snapshots.delta(recent, graph.version) == ([(0, 2)], [])


# --------------------------------------------------------------------- #
# remove_edge
# --------------------------------------------------------------------- #
def test_remove_edge_updates_adjacency_version_and_counts():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
    before = graph.version
    graph.remove_edge(0, 2)
    assert graph.version == before + 1
    assert not graph.has_edge(0, 2)
    assert graph.num_edges == 2
    assert list(graph.out_neighbors(0)) == [1]
    assert list(graph.in_neighbors(2)) == [1]
    # Sealed snapshot of the new head reflects the removal.
    assert not graph.csr_snapshot().has_edge(0, 2)


def test_remove_edge_validates_edge_exists():
    graph = DiGraph.from_edges([(0, 1)])
    with pytest.raises(ValueError, match="no such edge"):
        graph.remove_edge(1, 0)
    with pytest.raises(ValueError):
        graph.remove_edge(0, 99)


# --------------------------------------------------------------------- #
# Bulk reverse(): the hub-graph quadratic regression
# --------------------------------------------------------------------- #
def test_reverse_bulk_path_never_calls_insort(monkeypatch):
    # A hub: 199 edges all pointing at vertex 0.  The old implementation
    # routed each reversed edge through add_edge's insort — O(deg) per
    # edge, O(E * deg) total, quadratic on hubs.  The bulk path copies
    # the already-sorted adjacency wholesale: zero insort calls, an
    # edge-count-independent invariant (no wall-clock flakiness).
    graph = DiGraph.from_edges([(i, 0) for i in range(1, 200)])
    calls = []

    def counting_insort(seq, item):
        calls.append(item)
        real_insort(seq, item)

    monkeypatch.setattr(digraph_module, "insort", counting_insort)
    reversed_graph = graph.reverse()
    assert calls == []
    assert reversed_graph.num_edges == graph.num_edges
    assert all(reversed_graph.has_edge(0, i) for i in range(1, 200))
    assert reversed_graph.reverse() == graph


def test_reverse_is_a_snapshot_barrier_on_the_new_graph():
    graph = random_directed_gnm(12, 40, seed=2)
    reversed_graph = graph.reverse()
    # The bulk rebuild is a barrier: no delta window reaches behind it.
    assert (
        reversed_graph.snapshots.delta(
            reversed_graph.version - 1, reversed_graph.version
        )
        is None
    )
    # Windows opened after it are coverable as usual.
    start = reversed_graph.version
    reversed_graph.add_edge(*_first_missing_edge(reversed_graph))
    added, removed = reversed_graph.snapshots.delta(
        start, reversed_graph.version
    )
    assert len(added) == 1 and removed == []


def _first_missing_edge(graph):
    for u in graph.vertices():
        for v in graph.vertices():
            if u != v and not graph.has_edge(u, v):
                return u, v
    raise AssertionError("graph is complete")


# --------------------------------------------------------------------- #
# Pickling: the store (RLock) is dropped and rebuilt
# --------------------------------------------------------------------- #
def test_digraph_pickle_roundtrip_rebuilds_store():
    graph = random_directed_gnm(15, 50, seed=7)
    graph.add_edge(*_first_missing_edge(graph))
    clone = pickle.loads(pickle.dumps(graph))
    assert clone == graph
    assert clone.version == graph.version
    assert clone.snapshots is not graph.snapshots
    # The rebuilt store works: seal, pin, mutate, delta.
    start = clone.version
    with clone.snapshots.pin() as pin:
        assert pin.version == start
        clone.add_edge(*_first_missing_edge(clone))
        assert clone.snapshots.resolve(start) is pin.csr
    delta = clone.snapshots.delta(start, clone.version)
    assert delta is not None and len(delta[0]) == 1
