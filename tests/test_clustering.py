"""Unit tests for Algorithm 2 (ClusterQuery)."""

import pytest

from repro.batch.clustering import cluster_by_similarity, cluster_queries
from repro.graph.generators import paper_example_graph, random_directed_gnm
from repro.queries.generation import generate_random_queries
from repro.queries.query import HCSTQuery
from repro.queries.similarity import QuerySimilarityMatrix
from repro.queries.workload import QueryWorkload


def _matrix(values):
    return QuerySimilarityMatrix(values=values)


def test_paper_example_clusters_into_two_groups():
    """Fig. 4: with γ = 0.8 the batch splits into {q0, q1, q2} and {q3, q4}."""
    graph = paper_example_graph()
    queries = [
        HCSTQuery(0, 11, 5),
        HCSTQuery(2, 13, 5),
        HCSTQuery(5, 12, 5),
        HCSTQuery(4, 14, 4),
        HCSTQuery(9, 14, 3),
    ]
    workload = QueryWorkload(graph, queries)
    clusters = cluster_queries(workload, gamma=0.8)
    assert sorted(sorted(cluster) for cluster in clusters) == [[0, 1, 2], [3, 4]]


def test_gamma_one_keeps_singletons():
    graph = paper_example_graph()
    queries = [HCSTQuery(0, 11, 5), HCSTQuery(2, 13, 5)]
    workload = QueryWorkload(graph, queries)
    clusters = cluster_queries(workload, gamma=1.0)
    assert sorted(clusters) == [[0], [1]]


def test_gamma_zero_merges_everything_with_positive_similarity():
    matrix = _matrix([
        [1.0, 0.4, 0.4],
        [0.4, 1.0, 0.4],
        [0.4, 0.4, 1.0],
    ])
    clusters = cluster_by_similarity(matrix, gamma=0.0)
    assert clusters == [[0, 1, 2]]


def test_disjoint_queries_never_merge():
    matrix = _matrix([
        [1.0, 0.0],
        [0.0, 1.0],
    ])
    assert cluster_by_similarity(matrix, gamma=0.0) == [[0], [1]]


def test_merge_order_follows_highest_similarity_first():
    # 0-1 are near identical; 2 is moderately similar to both; 3 is isolated.
    matrix = _matrix([
        [1.0, 0.95, 0.60, 0.0],
        [0.95, 1.0, 0.60, 0.0],
        [0.60, 0.60, 1.0, 0.0],
        [0.0, 0.0, 0.0, 1.0],
    ])
    clusters = cluster_by_similarity(matrix, gamma=0.5)
    assert sorted(sorted(c) for c in clusters) == [[0, 1, 2], [3]]


def test_group_average_linkage_prevents_chaining():
    # 1 is similar to 0 and to 2, but 0 and 2 are dissimilar: with a high
    # threshold the three never collapse into one group.
    matrix = _matrix([
        [1.0, 0.9, 0.0],
        [0.9, 1.0, 0.9],
        [0.0, 0.9, 1.0],
    ])
    clusters = cluster_by_similarity(matrix, gamma=0.6)
    assert len(clusters) == 2


def test_every_query_appears_exactly_once():
    graph = random_directed_gnm(100, 600, seed=4)
    queries = generate_random_queries(graph, 25, min_k=3, max_k=4, seed=2)
    workload = QueryWorkload(graph, queries)
    clusters = cluster_queries(workload, gamma=0.5)
    flattened = sorted(position for cluster in clusters for position in cluster)
    assert flattened == list(range(25))


def test_invalid_gamma_rejected():
    matrix = _matrix([[1.0]])
    with pytest.raises(ValueError):
        cluster_by_similarity(matrix, gamma=1.5)


def test_single_query_single_cluster():
    matrix = _matrix([[1.0]])
    assert cluster_by_similarity(matrix, gamma=0.5) == [[0]]
