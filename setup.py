"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so the
PEP 660 editable-install path (which builds a wheel) is unavailable.  This
``setup.py`` lets ``pip install -e . --no-build-isolation --no-use-pep517``
(or plain ``python setup.py develop``) fall back to the classic editable
install.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
