"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so the
PEP 660 editable-install path (which builds a wheel) is unavailable.  This
``setup.py`` lets ``pip install -e . --no-build-isolation --no-use-pep517``
(or plain ``python setup.py develop``) fall back to the classic editable
install.

The core package is deliberately stdlib-only.  numpy is an *optional*
extra (``pip install -e .[kernels]``) that unlocks the vectorized
enumeration kernels in :mod:`repro.enumeration.kernels`; without it the
pure-Python loops remain the (byte-identical) substrate.
"""

from setuptools import find_packages, setup

setup(
    name="repro-hcst",
    package_dir={"": "src"},
    packages=find_packages("src"),
    extras_require={
        "kernels": ["numpy>=1.24"],
    },
)
