"""Fraud detection in an e-commerce transaction network.

The paper's first motivating application: when a transaction from account
``t`` to account ``s`` is submitted, every hop-constrained simple path from
``s`` to ``t`` that already exists in the network closes a cycle through
the new transaction — a strong fraud signal.  Transactions arrive in
bursts, so the cycle queries are processed as one batch.

This example synthesises a transaction network with an injected fraud ring
(a community that moves money in circles), draws a burst of incoming
transactions, and uses the batch engine to report the cycles each new
transaction would close.

Run with::

    python examples/fraud_detection.py
"""

from __future__ import annotations

import random

from repro import BatchQueryEngine, HCSTQuery
from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_directed

HOP_CONSTRAINT = 4
RING_SIZE = 8
BURST_SIZE = 12
SEED = 7


def build_transaction_network(seed: int = SEED) -> tuple[DiGraph, list[int]]:
    """A scale-free transaction network plus an injected fraud ring."""
    rng = random.Random(seed)
    graph = powerlaw_directed(1200, 3, seed=seed, reciprocal_probability=0.15)
    # Inject a ring: accounts that shuffle funds among themselves densely.
    ring = rng.sample(range(graph.num_vertices), RING_SIZE)
    for i, account in enumerate(ring):
        for offset in (1, 2):
            target = ring[(i + offset) % RING_SIZE]
            if account != target and not graph.has_edge(account, target):
                graph.add_edge(account, target)
    return graph, ring


def incoming_transaction_burst(
    graph: DiGraph, ring: list[int], seed: int = SEED
) -> list[tuple[int, int]]:
    """A burst of new transactions (payer, payee); several involve the ring."""
    rng = random.Random(seed + 1)
    burst: list[tuple[int, int]] = []
    while len(burst) < BURST_SIZE:
        if len(burst) % 2 == 0:
            payer, payee = rng.sample(ring, 2)
        else:
            payer = rng.randrange(graph.num_vertices)
            payee = rng.randrange(graph.num_vertices)
        if payer != payee:
            burst.append((payer, payee))
    return burst


def main() -> None:
    graph, ring = build_transaction_network()
    burst = incoming_transaction_burst(graph, ring)
    print(f"Transaction network: {graph}")
    print(f"Incoming burst: {len(burst)} transactions, hop constraint {HOP_CONSTRAINT}\n")

    # A new transaction payer -> payee closes a cycle for every existing
    # simple path payee -> payer with at most k hops.
    queries = [HCSTQuery(s=payee, t=payer, k=HOP_CONSTRAINT) for payer, payee in burst]
    engine = BatchQueryEngine(graph, algorithm="batch+", gamma=0.5)
    result = engine.run(queries)

    flagged = 0
    for position, (payer, payee) in enumerate(burst):
        cycles = result.paths_at(position)
        if not cycles:
            continue
        flagged += 1
        print(f"ALERT: transaction {payer} -> {payee} closes {len(cycles)} cycle(s)")
        shortest = min(cycles, key=len)
        cycle = (payer,) + shortest
        print("   example cycle: " + " -> ".join(str(v) for v in cycle))

    print(
        f"\n{flagged}/{len(burst)} transactions flagged; "
        f"batch processed in {result.total_time:.4f}s "
        f"({result.sharing.num_shared_nodes} shared HC-s path queries)"
    )


if __name__ == "__main__":
    main()
