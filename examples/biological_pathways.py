"""Pathway queries in a biological interaction network.

The paper's second motivating application: pathway queries ask for the
chains of interactions (bounded-length simple paths) between pairs of
substances in a biological network.  Analysts typically ask about several
substance pairs around the same pathway at once, which makes the queries a
natural batch with heavy overlap.

The example synthesises a layered metabolic-style network (metabolites ->
enzymes -> intermediate compounds -> products, with feedback edges), asks
for the interaction chains between several upstream/downstream pairs, and
prints a per-pair pathway summary.

Run with::

    python examples/biological_pathways.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import BatchQueryEngine, HCSTQuery
from repro.graph.digraph import DiGraph
from repro.graph.generators import layered_dag

LAYERS = 6
LAYER_WIDTH = 40
HOP_CONSTRAINT = 5
SEED = 3


def build_interaction_network(seed: int = SEED) -> DiGraph:
    """A layered reaction network with a few feedback (reverse) edges."""
    rng = random.Random(seed)
    base = layered_dag(num_layers=LAYERS, layer_width=LAYER_WIDTH,
                       edges_per_vertex=3, seed=seed)
    graph = base.copy()
    # Feedback loops: some products regulate upstream reactions.
    for _ in range(LAYER_WIDTH):
        downstream = rng.randrange((LAYERS - 1) * LAYER_WIDTH, LAYERS * LAYER_WIDTH)
        upstream = rng.randrange(0, 2 * LAYER_WIDTH)
        if not graph.has_edge(downstream, upstream) and downstream != upstream:
            graph.add_edge(downstream, upstream)
    return graph


def substance_pairs(seed: int = SEED) -> list[tuple[int, int]]:
    """Pairs of upstream metabolites and downstream products under study.

    Several pairs share the same source metabolite — the typical shape of a
    pathway study — so the batch has substantial common computation.
    """
    rng = random.Random(seed + 1)
    sources = rng.sample(range(LAYER_WIDTH), 3)
    products = rng.sample(
        range((LAYERS - 1) * LAYER_WIDTH, LAYERS * LAYER_WIDTH), 4
    )
    return [(source, product) for source in sources for product in products]


def main() -> None:
    graph = build_interaction_network()
    pairs = substance_pairs()
    print(f"Interaction network: {graph}")
    print(f"Pathway queries: {len(pairs)} substance pairs (k = {HOP_CONSTRAINT})\n")

    queries = [HCSTQuery(s=source, t=product, k=HOP_CONSTRAINT) for source, product in pairs]
    engine = BatchQueryEngine(graph, algorithm="batch+", gamma=0.5)
    result = engine.run(queries)

    for position, (source, product) in enumerate(pairs):
        chains = result.paths_at(position)
        if not chains:
            print(f"metabolite {source} -> product {product}: no pathway within "
                  f"{HOP_CONSTRAINT} steps")
            continue
        lengths = Counter(len(chain) - 1 for chain in chains)
        length_summary = ", ".join(
            f"{count}x length {length}" for length, count in sorted(lengths.items())
        )
        print(f"metabolite {source} -> product {product}: {len(chains)} chain(s) "
              f"({length_summary})")
        example = min(chains, key=len)
        print("   shortest chain: " + " -> ".join(str(v) for v in example))

    print(
        f"\nBatch processed in {result.total_time:.4f}s; "
        f"{result.sharing.num_shared_nodes} shared HC-s path queries, "
        f"{result.sharing.cache_reuse_count} cache reuses"
    )


if __name__ == "__main__":
    main()
