"""Telemetry demo: the ingestion service under load, fully observed.

Stands up :func:`repro.serve` with a live
:class:`~repro.obs.MetricsRegistry` and :class:`~repro.obs.Tracer`
injected (the default is the no-op null objects — telemetry is strictly
opt-in), replays a burst of queries, and then prints what the
instrumentation saw:

* the span tree of one dispatched micro-batch — ``batch`` at the root,
  the planner's ``plan``/``shard`` phases, the executor's ``ship`` and
  ``merge``, and (for sharded plans) worker-side ``enumerate`` spans
  recorded in another process and reparented on merge;
* the cost model recalibrated from the observed predicted-vs-actual
  counters (:meth:`~repro.batch.planner.CostModel.from_observed`);
* the full registry in Prometheus text exposition format — exactly what
  a ``/metrics`` endpoint would serve.

Run with::

    PYTHONPATH=src python examples/metrics_demo.py
"""

from __future__ import annotations

import time

from repro import DiGraph, HCSTQuery, serve
from repro.batch.planner import CostModel
from repro.graph.generators import random_directed_gnm
from repro.obs import MetricsRegistry, Tracer
from repro.queries.generation import generate_random_queries

COMMUNITIES = ((60, 280, 4), (40, 150, 4), (30, 90, 3))
QUERIES_PER_COMMUNITY = 5


def build_workload():
    edges, queries, offset = [], [], 0
    for index, (num_vertices, num_edges, k) in enumerate(COMMUNITIES):
        community = random_directed_gnm(num_vertices, num_edges, seed=index)
        edges.extend((offset + u, offset + v) for u, v in community.edges())
        for query in generate_random_queries(
            community, QUERIES_PER_COMMUNITY, min_k=k, max_k=k, seed=index
        ):
            queries.append(HCSTQuery(offset + query.s, offset + query.t, query.k))
        offset += num_vertices
    return DiGraph.from_edges(edges, num_vertices=offset), queries


def main() -> None:
    graph, queries = build_workload()
    registry, tracer = MetricsRegistry(), Tracer()
    print(f"Graph: {graph}; {len(queries)} queries, telemetry ON\n")

    with serve(
        graph,
        algorithm="batch+",
        max_batch_size=5,
        max_delay_s=0.01,
        metrics=registry,
        tracer=tracer,
    ) as service:
        tickets = []
        for query in queries:
            tickets.append(service.submit(query))
            time.sleep(0.002)
        for ticket in tickets:
            ticket.result(timeout=60.0)
        stats = service.stats()

    print("=== span tree of one micro-batch ===")
    print(tracer.render_tree(tracer.find_trace("batch")))

    print("\n=== cost model recalibrated from observed traffic ===")
    defaults, observed = CostModel(), CostModel.from_observed(registry)
    for field in ("seconds_per_cost_unit", "seconds_per_index_entry"):
        print(
            f"  {field}: default {getattr(defaults, field):.3e} -> "
            f"observed {getattr(observed, field):.3e}"
        )

    print(
        f"\n=== Prometheus snapshot "
        f"({stats.batches_dispatched} micro-batches dispatched) ==="
    )
    print(registry.render_prometheus())


if __name__ == "__main__":
    main()
