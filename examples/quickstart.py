"""Quickstart: batch hop-constrained s-t simple path queries.

Builds the paper's running example graph (Fig. 1), submits the five example
queries as one batch, and prints every result path, the per-stage timing
decomposition and the sharing statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BatchQueryEngine, HCSTQuery
from repro.graph.generators import PAPER_EXAMPLE_QUERIES, paper_example_graph


def main() -> None:
    graph = paper_example_graph()
    queries = [HCSTQuery(s, t, k) for s, t, k in PAPER_EXAMPLE_QUERIES]

    print(f"Graph: {graph}")
    print(f"Batch: {len(queries)} HC-s-t path queries\n")

    # "batch+" is BatchEnum+ — the paper's best algorithm.  Other choices:
    # "pathenum", "basic", "basic+", "batch", "dksp", "onepass".
    engine = BatchQueryEngine(graph, algorithm="batch+", gamma=0.8)
    result = engine.run(queries)

    for position, query in enumerate(queries):
        paths = result.sorted_paths_at(position)
        print(f"{query}: {len(paths)} path(s)")
        for path in paths:
            print("   " + " -> ".join(f"v{vertex}" for vertex in path))

    print("\nStage decomposition (seconds):")
    for stage, seconds in sorted(result.stage_timer.totals.items()):
        print(f"   {stage:<18s} {seconds:.6f}")

    sharing = result.sharing
    print(
        f"\nSharing: {sharing.num_clusters} cluster(s), "
        f"{sharing.num_shared_nodes} shared HC-s path queries, "
        f"{sharing.cache_reuse_count} cache reuses"
    )


if __name__ == "__main__":
    main()
