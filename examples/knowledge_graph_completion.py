"""Knowledge-graph completion: path features for candidate relations.

The paper's third motivating application: knowledge-graph completion models
score a candidate relation between two entities using the short paths that
connect them — entity pairs linked by many short paths are more likely to
be related.  Predictions are needed for many entity pairs at once, so the
HC-s-t path queries naturally form a batch, and pairs around the same
entities share most of their computation.

This example builds a synthetic knowledge graph with communities
("topics"), picks candidate entity pairs inside and across topics, and
derives a simple path-count score per pair from the batch results.

Run with::

    python examples/knowledge_graph_completion.py
"""

from __future__ import annotations

import random

from repro import BatchQueryEngine, HCSTQuery
from repro.graph.digraph import DiGraph

NUM_TOPICS = 6
ENTITIES_PER_TOPIC = 80
HOP_CONSTRAINT = 4
CANDIDATE_PAIRS = 24
SEED = 13


def build_knowledge_graph(seed: int = SEED) -> DiGraph:
    """Entities grouped into topics: dense links inside a topic, sparse
    cross-topic links (the usual community structure of real KGs)."""
    rng = random.Random(seed)
    num_entities = NUM_TOPICS * ENTITIES_PER_TOPIC
    edges: set[tuple[int, int]] = set()
    for entity in range(num_entities):
        topic = entity // ENTITIES_PER_TOPIC
        topic_base = topic * ENTITIES_PER_TOPIC
        for _ in range(4):
            neighbor = topic_base + rng.randrange(ENTITIES_PER_TOPIC)
            if neighbor != entity:
                edges.add((entity, neighbor))
        if rng.random() < 0.25:
            other = rng.randrange(num_entities)
            if other != entity:
                edges.add((entity, other))
    return DiGraph.from_edges(edges, num_vertices=num_entities)


def candidate_pairs(graph: DiGraph, seed: int = SEED) -> list[tuple[int, int]]:
    """Half of the candidates are same-topic pairs, half cross-topic."""
    rng = random.Random(seed + 1)
    pairs: list[tuple[int, int]] = []
    while len(pairs) < CANDIDATE_PAIRS:
        topic = rng.randrange(NUM_TOPICS)
        base = topic * ENTITIES_PER_TOPIC
        head = base + rng.randrange(ENTITIES_PER_TOPIC)
        if len(pairs) % 2 == 0:
            tail = base + rng.randrange(ENTITIES_PER_TOPIC)
        else:
            tail = rng.randrange(graph.num_vertices)
        if head != tail:
            pairs.append((head, tail))
    return pairs


def relation_score(paths: list[tuple[int, ...]]) -> float:
    """A PRA-style score: short connecting paths count more than long ones."""
    return sum(1.0 / (len(path) - 1) for path in paths)


def main() -> None:
    graph = build_knowledge_graph()
    pairs = candidate_pairs(graph)
    print(f"Knowledge graph: {graph}")
    print(f"Scoring {len(pairs)} candidate relations (k = {HOP_CONSTRAINT})\n")

    queries = [HCSTQuery(s=head, t=tail, k=HOP_CONSTRAINT) for head, tail in pairs]
    engine = BatchQueryEngine(graph, algorithm="batch+", gamma=0.5)
    result = engine.run(queries)

    scored = []
    for position, (head, tail) in enumerate(pairs):
        paths = result.paths_at(position)
        scored.append((relation_score(paths), len(paths), head, tail))
    scored.sort(reverse=True)

    print(f"{'score':>8s}  {'paths':>6s}  candidate relation")
    for score, count, head, tail in scored[:10]:
        same_topic = head // ENTITIES_PER_TOPIC == tail // ENTITIES_PER_TOPIC
        label = "same topic " if same_topic else "cross topic"
        print(f"{score:8.2f}  {count:6d}  ({head} -> {tail})  [{label}]")

    print(
        f"\nBatch processed in {result.total_time:.4f}s; "
        f"{result.sharing.num_shared_nodes} shared HC-s path queries across "
        f"{result.sharing.num_clusters} clusters"
    )


if __name__ == "__main__":
    main()
