"""Continuous-ingestion demo: serve queries while batches are in flight.

Simulates a trickle of arrivals against a multi-community graph through
:func:`repro.serve`:

* each ``submit`` returns immediately with a :class:`QueryTicket`;
* the background scheduler groups arrivals into micro-batches
  (``max_batch_size`` / ``max_delay_s``), and the similarity fast path
  merges a late-arriving look-alike query into the batch it resembles;
* tickets resolve as their shard/cluster completes — the demo prints each
  resolution with its submit→result latency, then the service stats.

Run with::

    PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import random
import time

from repro import DiGraph, HCSTQuery, serve
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries

COMMUNITIES = ((60, 280, 4), (40, 150, 4), (30, 90, 3))


def build_workload():
    edges, queries, offset = [], [], 0
    for index, (num_vertices, num_edges, k) in enumerate(COMMUNITIES):
        community = random_directed_gnm(num_vertices, num_edges, seed=index)
        edges.extend((offset + u, offset + v) for u, v in community.edges())
        for query in generate_random_queries(
            community, 4, min_k=k, max_k=k, seed=index
        ):
            queries.append(HCSTQuery(offset + query.s, offset + query.t, query.k))
        offset += num_vertices
    rng = random.Random(0)
    rng.shuffle(queries)
    return DiGraph.from_edges(edges, num_vertices=offset), queries


def main() -> None:
    graph, queries = build_workload()
    print(f"Graph: {graph}; {len(queries)} queries arriving continuously\n")

    with serve(
        graph,
        algorithm="batch+",
        max_batch_size=4,      # dispatch at 4 waiting queries...
        max_delay_s=0.01,      # ...or 10ms after the first one arrived
        join_similarity=0.5,   # merge similar late arrivals into the batch
    ) as service:
        start = time.perf_counter()
        tickets = []
        for index, query in enumerate(queries):
            tickets.append(service.submit(query))
            time.sleep(0.003)  # ~333 arrivals/s
        for index, ticket in enumerate(tickets):
            paths = ticket.result(timeout=60.0)
            print(
                f"  query {index:2d} {str(ticket.query):<24} -> "
                f"{len(paths):3d} path(s) in {ticket.latency_s * 1000:7.2f}ms"
            )
        wall = time.perf_counter() - start
        stats = service.stats()

    print(f"\nall {len(queries)} tickets resolved in {wall:.3f}s")
    print(
        f"micro-batches: {stats.batches_dispatched} dispatched, "
        f"mean size {stats.mean_batch_size:.1f}, "
        f"{stats.joined_fast_path} joined via the similarity fast path"
    )
    print(
        f"latency: mean {stats.mean_ticket_latency_s * 1000:.2f}ms | "
        f"sharing: {stats.sharing.num_shared_nodes} shared HC-s nodes, "
        f"{stats.sharing.cache_reuse_count} cache reuses"
    )


if __name__ == "__main__":
    main()
