"""Streaming demo: consume batch results as clusters complete.

Builds a skewed workload — three disjoint communities of very different
sizes, one query cluster per community — and drains it twice through
``BatchQueryEngine.stream``:

* ``ordered=False`` delivers each cluster's queries the instant the
  cluster finishes, so the fast communities print long before the slow one
  is done;
* ``ordered=True`` shows the reorder buffer at work: the same completions
  are withheld until every earlier batch position has been flushed.

Run with::

    PYTHONPATH=src python examples/streaming_demo.py
"""

from __future__ import annotations

import time

from repro import BatchQueryEngine, DiGraph, HCSTQuery
from repro.graph.generators import random_directed_gnm
from repro.queries.generation import generate_random_queries

#: (vertices, edges, hop constraint) per community, smallest (fastest) last
#: in batch order so ordered=True visibly has to wait for position 0.
COMMUNITIES = ((120, 960, 6), (60, 260, 4), (30, 90, 3))


def build_workload():
    edges, queries, offset = [], [], 0
    for index, (num_vertices, num_edges, k) in enumerate(COMMUNITIES):
        community = random_directed_gnm(num_vertices, num_edges, seed=index)
        edges.extend((offset + u, offset + v) for u, v in community.edges())
        for query in generate_random_queries(
            community, 2, min_k=k, max_k=k, seed=index
        ):
            queries.append(HCSTQuery(offset + query.s, offset + query.t, query.k))
        offset += num_vertices
    return DiGraph.from_edges(edges, num_vertices=offset), queries


def drain(engine, queries, ordered):
    print(f"\n--- stream(ordered={ordered}) ---")
    start = time.perf_counter()
    for position, paths in engine.stream(queries, ordered=ordered):
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        print(
            f"  +{elapsed_ms:8.2f}ms  position {position}: "
            f"{len(paths)} path(s)"
        )


def main() -> None:
    graph, queries = build_workload()
    print(f"Graph: {graph}")
    print(f"Batch: {len(queries)} queries across {len(COMMUNITIES)} communities")
    print("Batch positions 0-1 live in the *slowest* community.")

    # Two workers run the clusters concurrently, so completion order is
    # genuinely different from batch order (sequentially, clusters complete
    # in submission order and the two policies coincide).
    engine = BatchQueryEngine(graph, algorithm="batch+", num_workers=2)

    # Completion order: the small communities' clusters flush first.
    drain(engine, queries, ordered=False)
    # Batch order: everything waits for the slow cluster owning position 0.
    drain(engine, queries, ordered=True)

    result = engine.run(queries)  # the blocking API collects the same stream
    print(f"\nrun() summary: {result.summary()}")


if __name__ == "__main__":
    main()
